//===- VM.cpp - Register bytecode execution engine ------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The dispatch loop lives in Impl::execute. With ADE_VM_COMPUTED_GOTO
// (probed by src/vm/CMakeLists.txt) every handler ends in its own
// load-charge-indirect-jump sequence — direct threading, which gives the
// branch predictor one history slot per opcode pair instead of a single
// shared dispatch branch. The portable fallback is a for(;;)+switch with
// identical handler bodies; the VM_CASE/VM_NEXT/VM_JUMP macros are the
// only difference between the two builds.
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "collections/MemoryTracker.h"
#include "interp/EvalOps.h"
#include "interp/InterpError.h"
#include "interp/Profiler.h"
#include "runtime/RtConcrete.h"
#include "runtime/Telemetry.h"
#include "support/Casting.h"
#include "support/CrashHandler.h"
#include "support/ErrorHandling.h"
#include "support/Trace.h"
#include "vm/Compiler.h"

#include <cassert>
#include <type_traits>

using namespace ade;
using namespace ade::interp;
using namespace ade::ir;
using namespace ade::runtime;
using namespace ade::vm;

namespace {

RtSet *asSet(uint64_t Bits) {
  auto *C = VM::bitsToColl(Bits);
  if (!C || C->kind() != RtKind::Set)
    reportFatalError("expected a runtime set");
  return static_cast<RtSet *>(C);
}

RtMap *asMap(uint64_t Bits) {
  auto *C = VM::bitsToColl(Bits);
  if (!C || C->kind() != RtKind::Map)
    reportFatalError("expected a runtime map");
  return static_cast<RtMap *>(C);
}

RtSeq *asSeq(uint64_t Bits) {
  auto *C = VM::bitsToColl(Bits);
  if (!C || C->kind() != RtKind::Seq)
    reportFatalError("expected a runtime sequence");
  return static_cast<RtSeq *>(C);
}

RtEnum *asEnum(uint64_t Bits) {
  if (!Bits)
    reportFatalError("null enumeration value");
  return reinterpret_cast<RtEnum *>(Bits);
}

/// Classifies \p C's concrete adapter for the inline-cache fast paths.
InlineCache::Fast classifyColl(const RtCollection *C) {
  switch (C->impl()) {
  case Selection::HashSet:
    return InlineCache::Fast::HashSet;
  case Selection::SwissSet:
    return InlineCache::Fast::SwissSet;
  case Selection::FlatSet:
    return InlineCache::Fast::FlatSet;
  case Selection::BitSet:
    return InlineCache::Fast::BitSet;
  case Selection::SparseBitSet:
    return InlineCache::Fast::RoaringSet;
  case Selection::HashMap:
    return InlineCache::Fast::HashMap;
  case Selection::SwissMap:
    return InlineCache::Fast::SwissMap;
  case Selection::BitMap:
    return InlineCache::Fast::BitMap;
  case Selection::Array:
  case Selection::Empty:
    return InlineCache::Fast::None;
  }
  return InlineCache::Fast::None;
}

bool icValid(const InlineCache &IC, const RtCollection *C) {
  // A matching pointer plus an unchanged destruction epoch proves the
  // object was never destroyed since the fill, so the classification is
  // still the dynamic type (no recycled-address confusion).
  return IC.Coll == C && IC.Epoch == RtCollection::destructionEpoch();
}

void icFill(InlineCache &IC, const RtCollection *C) {
  IC.Coll = C;
  IC.Epoch = RtCollection::destructionEpoch();
  IC.Kind = classifyColl(C);
}

/// Membership test through the cache: a hit devirtualizes to the concrete
/// container's contains(); the fallback is the tree-walker's virtual-call
/// kind dispatch (including its fatal on sequences). Probe counters
/// advance identically on both paths — same container methods.
bool icHas(InlineCache &IC, RtCollection *C, uint64_t Key) {
  if (!icValid(IC, C))
    icFill(IC, C);
  switch (IC.Kind) {
  case InlineCache::Fast::HashSet:
    return static_cast<RtHashSet *>(C)->Impl.contains(Key);
  case InlineCache::Fast::SwissSet:
    return static_cast<RtSwissSet *>(C)->Impl.contains(Key);
  case InlineCache::Fast::FlatSet:
    return static_cast<RtFlatSet *>(C)->Impl.contains(Key);
  case InlineCache::Fast::BitSet:
    return static_cast<RtBitSet *>(C)->Impl.contains(Key);
  case InlineCache::Fast::RoaringSet:
    return static_cast<RtRoaringSet *>(C)->Impl.contains(Key);
  case InlineCache::Fast::HashMap:
    return static_cast<RtHashMap *>(C)->Impl.contains(Key);
  case InlineCache::Fast::SwissMap:
    return static_cast<RtSwissMap *>(C)->Impl.contains(Key);
  case InlineCache::Fast::BitMap:
    return static_cast<RtBitMap *>(C)->Impl.contains(Key);
  case InlineCache::Fast::None:
    break;
  }
  if (C->kind() == RtKind::Set)
    return static_cast<RtSet *>(C)->has(Key);
  if (C->kind() == RtKind::Map)
    return static_cast<RtMap *>(C)->has(Key);
  reportFatalError("has on a sequence");
}

void icInsert(InlineCache &IC, RtCollection *C, uint64_t Key) {
  if (!icValid(IC, C))
    icFill(IC, C);
  switch (IC.Kind) {
  case InlineCache::Fast::HashSet:
    static_cast<RtHashSet *>(C)->Impl.insert(Key);
    return;
  case InlineCache::Fast::SwissSet:
    static_cast<RtSwissSet *>(C)->Impl.insert(Key);
    return;
  case InlineCache::Fast::FlatSet:
    static_cast<RtFlatSet *>(C)->Impl.insert(Key);
    return;
  case InlineCache::Fast::BitSet:
    static_cast<RtBitSet *>(C)->Impl.insert(Key);
    return;
  case InlineCache::Fast::RoaringSet:
    static_cast<RtRoaringSet *>(C)->Impl.insert(Key);
    return;
  case InlineCache::Fast::HashMap:
    static_cast<RtHashMap *>(C)->Impl.tryInsert(Key, 0);
    return;
  case InlineCache::Fast::SwissMap:
    static_cast<RtSwissMap *>(C)->Impl.tryInsert(Key, 0);
    return;
  case InlineCache::Fast::BitMap:
    static_cast<RtBitMap *>(C)->Impl.tryInsert(Key, 0);
    return;
  case InlineCache::Fast::None:
    break;
  }
  if (C->kind() == RtKind::Set)
    static_cast<RtSet *>(C)->insert(Key);
  else if (C->kind() == RtKind::Map)
    static_cast<RtMap *>(C)->insertDefault(Key, 0);
  else
    reportFatalError("insert on a sequence");
}

uint64_t icMapGet(InlineCache &IC, RtMap *Map, uint64_t Key, bool &Found) {
  if (!icValid(IC, Map))
    icFill(IC, Map);
  switch (IC.Kind) {
  case InlineCache::Fast::HashMap: {
    const uint64_t *V = static_cast<RtHashMap *>(Map)->Impl.lookup(Key);
    Found = V != nullptr;
    return Found ? *V : 0;
  }
  case InlineCache::Fast::SwissMap: {
    const uint64_t *V = static_cast<RtSwissMap *>(Map)->Impl.lookup(Key);
    Found = V != nullptr;
    return Found ? *V : 0;
  }
  case InlineCache::Fast::BitMap: {
    const uint64_t *V = static_cast<RtBitMap *>(Map)->Impl.lookup(Key);
    Found = V != nullptr;
    return Found ? *V : 0;
  }
  default:
    return Map->get(Key, Found);
  }
}

void icMapSet(InlineCache &IC, RtMap *Map, uint64_t Key, uint64_t Value) {
  if (!icValid(IC, Map))
    icFill(IC, Map);
  switch (IC.Kind) {
  case InlineCache::Fast::HashMap:
    static_cast<RtHashMap *>(Map)->Impl.insertOrAssign(Key, Value);
    return;
  case InlineCache::Fast::SwissMap:
    static_cast<RtSwissMap *>(Map)->Impl.insertOrAssign(Key, Value);
    return;
  case InlineCache::Fast::BitMap:
    static_cast<RtBitMap *>(Map)->Impl.insertOrAssign(Key, Value);
    return;
  default:
    Map->set(Key, Value);
  }
}

} // namespace

struct VM::Impl {
  const Module &M;
  InterpOptions Opts;
  InterpStats *Stats = nullptr;
  Profiler *Prof = nullptr;
  TraceRecorder *Trace = nullptr;
  Telemetry *Tel = nullptr;
  /// 1-in-N op sampling state, identical to the tree-walker's: sample
  /// when (++TelTick & TelMask) == 0.
  uint64_t TelTick = 0;
  uint64_t TelMask = 0;

  std::vector<std::unique_ptr<RtCollection>> CollArena;
  std::vector<std::unique_ptr<RtEnum>> EnumArena;
  std::unordered_map<std::string, uint64_t> Globals;
  /// Node-based map: CompiledFn references stay valid while nested calls
  /// compile further functions.
  std::unordered_map<const Function *, CompiledFn> Compiled;

  uint64_t Steps = 0;
  uint64_t Depth = 0;

  /// Wall-clock/cancellation state, mirroring the tree-walker's: when
  /// enabled, the VM runs the Counted dispatch loop (with an infinite
  /// step budget if none was requested) and polls the cancellation point
  /// every 1024 charged steps.
  bool WallChecks = false;
  uint64_t OwnDeadlineNs = 0;

  Impl(const Module &M, InterpOptions Opts)
      : M(M), Opts(Opts), Prof(Opts.Prof), Trace(TraceRecorder::active()),
        Tel(Opts.Tel), TelMask(Opts.Tel ? Opts.Tel->sampleMask() : 0),
        WallChecks(Opts.MaxWallMs != 0 || Opts.Cancel != nullptr) {}

  template <typename FnT>
  auto collOp(const RtCollection *C, OpCategory Cat, FnT Fn)
      -> decltype(Fn()) {
    if (!Tel || ((++TelTick) & TelMask)) [[likely]]
      return Fn();
    return collOpSampled(C, Cat, Fn);
  }

  template <typename FnT>
  __attribute__((noinline)) auto
  collOpSampled(const RtCollection *C, OpCategory Cat, FnT &Fn)
      -> decltype(Fn()) {
    uint64_t ProbesBefore = C->probeCounters().Probes;
    uint64_t T0 = Telemetry::nowNanos();
    if constexpr (std::is_void_v<decltype(Fn())>) {
      Fn();
      uint64_t LatNs = Telemetry::nowNanos() - T0;
      Tel->recordSampledOp(C, Cat, LatNs,
                           C->probeCounters().Probes - ProbesBefore);
    } else {
      auto Result = Fn();
      uint64_t LatNs = Telemetry::nowNanos() - T0;
      Tel->recordSampledOp(C, Cat, LatNs,
                           C->probeCounters().Probes - ProbesBefore);
      return Result;
    }
  }

  /// Throws the recoverable diagnostic attributed to the IR instruction
  /// the faulting bytecode lowered from.
  [[noreturn]] static void trapAt(InterpErrorKind Kind, const char *Msg,
                                  const Instruction *Src) {
    if (!Src)
      throw InterpError(Kind, Msg, SrcLoc{}, std::string());
    const Function *F = Src->parentFunction();
    throw InterpError(Kind, Msg, Src->loc(), F ? F->name() : std::string());
  }

  [[noreturn]] void stepTrap(const Instruction *Src) {
    if (Tel)
      Tel->recordGuardRail(GuardRailKind::Steps, Opts.MaxSteps);
    trapAt(InterpErrorKind::StepBudget,
           "instruction budget (--max-steps) exceeded", Src);
  }

  void armWallClock() {
    OwnDeadlineNs =
        Opts.MaxWallMs
            ? Telemetry::nowNanos() + Opts.MaxWallMs * 1000000ull
            : 0;
  }

  /// The cancellation point (see the tree-walker's checkWallClock): runs
  /// once per 1024 charged steps on the Counted dispatch path.
  __attribute__((noinline)) void checkWallClock(const Instruction *Src) {
    if (Opts.Cancel)
      Opts.Cancel->Polls.fetch_add(1, std::memory_order_relaxed);
    if (Opts.Cancel && Opts.Cancel->Cancel.load(std::memory_order_relaxed)) {
      if (Tel)
        Tel->recordGuardRail(GuardRailKind::Wall, 0);
      trapAt(InterpErrorKind::Deadline, "request cancelled", Src);
    }
    uint64_t Deadline = OwnDeadlineNs;
    bool FromBudget = Deadline != 0;
    if (Opts.Cancel) {
      uint64_t CellNs = Opts.Cancel->DeadlineNs.load(std::memory_order_relaxed);
      if (CellNs && (!Deadline || CellNs < Deadline)) {
        Deadline = CellNs;
        FromBudget = false;
      }
    }
    if (Deadline && Telemetry::nowNanos() > Deadline) {
      if (Tel)
        Tel->recordGuardRail(GuardRailKind::Wall, Opts.MaxWallMs);
      trapAt(InterpErrorKind::Deadline,
             FromBudget ? "wall-clock budget (--max-wall-ms) exceeded"
                        : "request deadline exceeded",
             Src);
    }
  }

  void checkMemBudget(const Instruction &I) {
    if (Opts.MaxBytes &&
        MemoryTracker::instance().currentBytes() > Opts.MaxBytes) {
      if (Tel)
        Tel->recordGuardRail(GuardRailKind::Bytes, Opts.MaxBytes);
      trapAt(InterpErrorKind::MemoryBudget,
             "collection memory budget (--max-bytes) exceeded", &I);
    }
  }

  RtCollection *makeCollection(const Type *Ty,
                               const Instruction *Site = nullptr,
                               std::string Label = {}) {
    CollArena.push_back(createCollection(Ty, Opts.Defaults));
    RtCollection *C = CollArena.back().get();
    if (Prof)
      Prof->registerCollection(C, Site, Label);
    if (Tel)
      Tel->registerCollection(C, Site, std::move(Label));
    return C;
  }

  RtEnum *makeEnum() {
    EnumArena.push_back(std::make_unique<RtEnum>());
    return EnumArena.back().get();
  }

  uint64_t globalSlot(const std::string &Name) {
    auto It = Globals.find(Name);
    if (It != Globals.end() && It->second != 0)
      return It->second;
    const GlobalVariable *G = M.getGlobal(Name);
    if (!G)
      reportFatalError("access to unknown global");
    uint64_t V = 0;
    if (isa<EnumType>(G->Ty))
      V = reinterpret_cast<uint64_t>(makeEnum());
    else if (G->Ty->isCollection())
      V = VM::collToBits(makeCollection(G->Ty, /*Site=*/nullptr, "@" + Name));
    Globals[Name] = V;
    return V;
  }

  CompiledFn &compile(const Function *F) {
    auto It = Compiled.find(F);
    if (It != Compiled.end())
      return It->second;
    CompileOptions CO;
    // Fused pairs charge their 2 steps atomically, which would move the
    // point where a step-budget trap fires; keep the budget exact.
    CO.Fuse = Opts.MaxSteps == 0;
    return Compiled.emplace(F, compileFunction(*F, CO)).first->second;
  }

  struct DepthGuard {
    Impl &I;
    explicit DepthGuard(Impl &I, const Function *F) : I(I) {
      if (I.Opts.MaxDepth && I.Depth >= I.Opts.MaxDepth) {
        if (I.Tel)
          I.Tel->recordGuardRail(GuardRailKind::Depth, I.Opts.MaxDepth);
        throw InterpError(InterpErrorKind::DepthBudget,
                          "call depth budget (--max-depth) exceeded",
                          ir::SrcLoc{}, F->name());
      }
      ++I.Depth;
    }
    ~DepthGuard() { --I.Depth; }
  };

  uint64_t callFunction(const Function *F, const std::vector<uint64_t> &Args) {
    // External declarations are inert at runtime, like the tree-walker's.
    if (F->isExternal())
      return 0;
    assert(Args.size() == F->numArgs() && "argument count mismatch");
    if (WallChecks && Depth == 0)
      armWallClock();
    DepthGuard Guard(*this, F);
    CrashContext CC("vm", F->name());
    CompiledFn &CF = compile(F);
    uint64_t TraceStart = Trace ? Trace->nowMicros() : 0;
    // The step budget is checked per dispatch; specializing the loop on
    // its presence keeps the unbudgeted hot path two ops shorter. Wall
    // checks ride the same Counted loop (with an infinite step budget if
    // none was requested).
    uint64_t Result = (Opts.MaxSteps || WallChecks) ? execute<true>(CF, Args)
                                                    : execute<false>(CF, Args);
    if (Trace)
      Trace->addComplete(F->name(), "vm", TraceStart,
                         Trace->nowMicros() - TraceStart);
    return Result;
  }

  /// \tparam Counted compiled-in step-budget accounting (--max-steps).
  template <bool Counted>
  uint64_t execute(CompiledFn &CF, const std::vector<uint64_t> &Args);
};

bool ade::vm::usesComputedGoto() {
#if defined(ADE_VM_COMPUTED_GOTO)
  return true;
#else
  return false;
#endif
}

template <bool Counted>
uint64_t VM::Impl::execute(CompiledFn &CF, const std::vector<uint64_t> &Args) {
  std::vector<uint64_t> Frame(CF.NumRegs, 0);
  uint64_t *R = Frame.data();
  for (size_t I = 0; I != Args.size(); ++I)
    R[CF.ArgRegs[I]] = Args[I];

  /// Snapshot stack of active for-each loops in this frame.
  struct IterState {
    std::vector<std::pair<uint64_t, uint64_t>> Items;
    size_t Pos = 0;
  };
  std::vector<IterState> Iters;

  const Inst *Code = CF.Code.data();
  const uint64_t *Consts = CF.ConstPool.data();
  const std::string *Syms = CF.SymPool.data();
  InlineCache *Caches = CF.Caches.data();
  InterpStats *St = Stats;
  // Wall-only runs reuse the Counted loop with an infinite step budget.
  [[maybe_unused]] const uint64_t MaxSteps =
      Opts.MaxSteps ? Opts.MaxSteps : ~uint64_t(0);
  // Next charged-step count at which to poll the cancellation point;
  // never reached when wall checks are off.
  [[maybe_unused]] uint64_t NextWall =
      WallChecks ? Steps + 1024 : ~uint64_t(0);
  const Inst *In = Code;
  // Charges accumulate in a frame-local counter (a register in the hot
  // loop) and flush into Stats at every exit — return, RtError
  // translation, or a propagating InterpError — so totals match the
  // tree-walker's per-instruction accounting to the instruction.
  uint64_t Done = 0;

  try {

#if defined(ADE_VM_COMPUTED_GOTO)

    static const void *JumpTab[] = {
#define ADE_VM_LABEL_ADDR(Name) &&VmL_##Name,
        ADE_VM_OPCODES(ADE_VM_LABEL_ADDR)
#undef ADE_VM_LABEL_ADDR
    };

#define VM_DISPATCH(Target)                                                    \
  do {                                                                         \
    In = (Target);                                                             \
    Done += In->Charge;                                                        \
    if constexpr (Counted) {                                                   \
      Steps += In->Charge;                                                     \
      if (Steps > MaxSteps)                                                    \
        stepTrap(In->Src);                                                     \
      if (Steps >= NextWall) {                                                 \
        NextWall = Steps + 1024;                                               \
        checkWallClock(In->Src);                                               \
      }                                                                        \
    }                                                                          \
    goto *JumpTab[size_t(In->Op)];                                             \
  } while (0)
#define VM_CASE(Name) VmL_##Name:
#define VM_NEXT() VM_DISPATCH(In + 1)
#define VM_JUMP(Target) VM_DISPATCH(Code + (Target))

    VM_DISPATCH(In);

#else // !ADE_VM_COMPUTED_GOTO

#define VM_CASE(Name) case VmOp::Name:
#define VM_NEXT()                                                              \
  {                                                                            \
    ++In;                                                                      \
    continue;                                                                  \
  }
#define VM_JUMP(Target)                                                        \
  {                                                                            \
    In = Code + (Target);                                                      \
    continue;                                                                  \
  }

    for (;;) {
      Done += In->Charge;
      if constexpr (Counted) {
        Steps += In->Charge;
        if (Steps > MaxSteps)
          stepTrap(In->Src);
        if (Steps >= NextWall) {
          NextWall = Steps + 1024;
          checkWallClock(In->Src);
        }
      }
      switch (In->Op) {

#endif // ADE_VM_COMPUTED_GOTO

        VM_CASE(Nop) { VM_NEXT(); }
        VM_CASE(LoadImm) {
          R[In->A] = Consts[In->B];
          VM_NEXT();
        }
        VM_CASE(Move) {
          R[In->A] = R[In->B];
          VM_NEXT();
        }
        VM_CASE(AddU64) {
          R[In->A] = R[In->B] + R[In->C];
          VM_NEXT();
        }
        VM_CASE(SubU64) {
          R[In->A] = R[In->B] - R[In->C];
          VM_NEXT();
        }
        VM_CASE(MulU64) {
          R[In->A] = R[In->B] * R[In->C];
          VM_NEXT();
        }
        VM_CASE(DivU64) {
          if (R[In->C] == 0)
            trapAt(InterpErrorKind::Undefined, "integer division by zero",
                   In->Src);
          R[In->A] = R[In->B] / R[In->C];
          VM_NEXT();
        }
        VM_CASE(RemU64) {
          if (R[In->C] == 0)
            trapAt(InterpErrorKind::Undefined, "integer remainder by zero",
                   In->Src);
          R[In->A] = R[In->B] % R[In->C];
          VM_NEXT();
        }
        VM_CASE(AndU64) {
          R[In->A] = R[In->B] & R[In->C];
          VM_NEXT();
        }
        VM_CASE(OrU64) {
          R[In->A] = R[In->B] | R[In->C];
          VM_NEXT();
        }
        VM_CASE(XorU64) {
          R[In->A] = R[In->B] ^ R[In->C];
          VM_NEXT();
        }
        VM_CASE(ShlU64) {
          R[In->A] = R[In->B] << (R[In->C] & 63);
          VM_NEXT();
        }
        VM_CASE(ShrU64) {
          R[In->A] = R[In->B] >> (R[In->C] & 63);
          VM_NEXT();
        }
        VM_CASE(MinU64) {
          R[In->A] = R[In->B] < R[In->C] ? R[In->B] : R[In->C];
          VM_NEXT();
        }
        VM_CASE(MaxU64) {
          R[In->A] = R[In->B] > R[In->C] ? R[In->B] : R[In->C];
          VM_NEXT();
        }
        VM_CASE(CmpEqU64) {
          R[In->A] = R[In->B] == R[In->C];
          VM_NEXT();
        }
        VM_CASE(CmpNeU64) {
          R[In->A] = R[In->B] != R[In->C];
          VM_NEXT();
        }
        VM_CASE(CmpLtU64) {
          R[In->A] = R[In->B] < R[In->C];
          VM_NEXT();
        }
        VM_CASE(CmpLeU64) {
          R[In->A] = R[In->B] <= R[In->C];
          VM_NEXT();
        }
        VM_CASE(CmpGtU64) {
          R[In->A] = R[In->B] > R[In->C];
          VM_NEXT();
        }
        VM_CASE(CmpGeU64) {
          R[In->A] = R[In->B] >= R[In->C];
          VM_NEXT();
        }
        VM_CASE(BinaryGen) {
          R[In->A] = eval::evalBinary(
              In->Src->op(), In->Src->operand(0)->type(), R[In->B], R[In->C],
              [&](const char *Msg) {
                trapAt(InterpErrorKind::Undefined, Msg, In->Src);
              });
          VM_NEXT();
        }
        // Fused binop pairs: one straight-line handler per combination
        // (see ADE_VM_BINPAIR_OPCODES). `Fst` is the first op applied to
        // R[B], R[C]; the commutative second op folds in R[D].
#define VM_PAIR(Suffix, Fst, Snd)                                              \
  VM_CASE(BinPair##Suffix) {                                                   \
    uint64_t T = (Fst);                                                        \
    R[In->A] = (Snd);                                                          \
    VM_NEXT();                                                                 \
  }
#define VM_PAIR_ROW(O1, Fst)                                                   \
  VM_PAIR(O1##Add, Fst, T + R[In->D])                                          \
  VM_PAIR(O1##Xor, Fst, T ^ R[In->D])                                          \
  VM_PAIR(O1##And, Fst, T &R[In->D])                                           \
  VM_PAIR(O1##Or, Fst, T | R[In->D])
        VM_PAIR_ROW(Add, R[In->B] + R[In->C])
        VM_PAIR_ROW(Sub, R[In->B] - R[In->C])
        VM_PAIR_ROW(Mul, R[In->B] * R[In->C])
        VM_PAIR_ROW(And, R[In->B] & R[In->C])
        VM_PAIR_ROW(Or, R[In->B] | R[In->C])
        VM_PAIR_ROW(Xor, R[In->B] ^ R[In->C])
        VM_PAIR_ROW(Shl, R[In->B] << (R[In->C] & 63))
        VM_PAIR_ROW(Shr, R[In->B] >> (R[In->C] & 63))
#undef VM_PAIR_ROW
#undef VM_PAIR
        VM_CASE(NegGen) {
          const Type *Ty = In->Src->operand(0)->type();
          if (isa<FloatType>(Ty))
            R[In->A] = doubleToBits(-bitsToDouble(R[In->B]));
          else
            R[In->A] =
                eval::maskToWidth(0 - R[In->B], cast<IntType>(Ty)->bits());
          VM_NEXT();
        }
        VM_CASE(NotGen) {
          const Type *Ty = In->Src->operand(0)->type();
          if (Ty->isBool())
            R[In->A] = R[In->B] ? 0 : 1;
          else
            R[In->A] =
                eval::maskToWidth(~R[In->B], cast<IntType>(Ty)->bits());
          VM_NEXT();
        }
        VM_CASE(CastGen) {
          R[In->A] = eval::evalCast(In->Src->operand(0)->type(),
                                    In->Src->result()->type(), R[In->B]);
          VM_NEXT();
        }
        VM_CASE(SelectVal) {
          R[In->A] = R[In->B] ? R[In->C] : R[In->D];
          VM_NEXT();
        }
        VM_CASE(Jump) { VM_JUMP(In->A); }
        VM_CASE(JumpIfTrue) {
          if (R[In->B])
            VM_JUMP(In->A);
          VM_NEXT();
        }
        VM_CASE(JumpIfFalse) {
          if (!R[In->B])
            VM_JUMP(In->A);
          VM_NEXT();
        }
        VM_CASE(JumpIfGeU64) {
          if (R[In->B] >= R[In->C])
            VM_JUMP(In->A);
          VM_NEXT();
        }
        VM_CASE(IncJumpLt) {
          ++R[In->B];
          if (R[In->B] < R[In->C]) [[likely]]
            VM_JUMP(In->A);
          VM_JUMP(In->D);
        }
        VM_CASE(AddIncJumpLt) {
          R[In->A] = R[In->B] + R[In->C];
          ++R[In->D];
          if (R[In->D] < R[In->E]) [[likely]]
            VM_JUMP(In->Aux);
          VM_NEXT();
        }
        VM_CASE(NewColl) {
          R[In->A] = VM::collToBits(
              makeCollection(In->Src->result()->type(), In->Src));
          checkMemBudget(*In->Src);
          VM_NEXT();
        }
        VM_CASE(SeqRead) {
          R[In->A] = asSeq(R[In->B])->get(R[In->C]);
          VM_NEXT();
        }
        VM_CASE(SeqWrite) {
          asSeq(R[In->B])->set(R[In->C], R[In->D]);
          VM_NEXT();
        }
        VM_CASE(SeqAppend) {
          asSeq(R[In->B])->append(R[In->C]);
          checkMemBudget(*In->Src);
          VM_NEXT();
        }
        VM_CASE(SeqPop) {
          R[In->A] = asSeq(R[In->B])->pop();
          VM_NEXT();
        }
        VM_CASE(MapRead) {
          RtMap *Map = asMap(R[In->B]);
          bool Found = false;
          uint64_t V = collOp(Map, OpCategory::Read, [&] {
            return icMapGet(Caches[In->E], Map, R[In->C], Found);
          });
          if (St)
            St->record(OpCategory::Read, Map->isDense());
          if (Prof)
            Prof->recordOp(*In->Src, OpCategory::Read, Map->isDense(), 1, Map);
          if (!Found)
            trapAt(InterpErrorKind::Undefined, "map read of a missing key",
                   In->Src);
          R[In->A] = V;
          VM_NEXT();
        }
        VM_CASE(MapWrite) {
          RtMap *Map = asMap(R[In->B]);
          collOp(Map, OpCategory::Write,
                 [&] { icMapSet(Caches[In->E], Map, R[In->C], R[In->D]); });
          checkMemBudget(*In->Src);
          if (St)
            St->record(OpCategory::Write, Map->isDense());
          if (Prof)
            Prof->recordOp(*In->Src, OpCategory::Write, Map->isDense(), 1,
                           Map);
          VM_NEXT();
        }
        VM_CASE(InsertVal) {
          RtCollection *Coll = VM::bitsToColl(R[In->B]);
          collOp(Coll, OpCategory::Insert,
                 [&] { icInsert(Caches[In->E], Coll, R[In->C]); });
          checkMemBudget(*In->Src);
          if (St)
            St->record(OpCategory::Insert, Coll->isDense());
          if (Prof)
            Prof->recordOp(*In->Src, OpCategory::Insert, Coll->isDense(), 1,
                           Coll);
          VM_NEXT();
        }
        VM_CASE(RemoveVal) {
          RtCollection *Coll = VM::bitsToColl(R[In->B]);
          collOp(Coll, OpCategory::Remove, [&] {
            if (Coll->kind() == RtKind::Set)
              static_cast<RtSet *>(Coll)->remove(R[In->C]);
            else if (Coll->kind() == RtKind::Map)
              static_cast<RtMap *>(Coll)->remove(R[In->C]);
            else
              reportFatalError("remove on a sequence");
          });
          if (St)
            St->record(OpCategory::Remove, Coll->isDense());
          if (Prof)
            Prof->recordOp(*In->Src, OpCategory::Remove, Coll->isDense(), 1,
                           Coll);
          VM_NEXT();
        }
        VM_CASE(HasVal) {
          RtCollection *Coll = VM::bitsToColl(R[In->B]);
          bool Result = collOp(Coll, OpCategory::Has, [&]() -> bool {
            return icHas(Caches[In->E], Coll, R[In->C]);
          });
          if (St)
            St->record(OpCategory::Has, Coll->isDense());
          if (Prof)
            Prof->recordOp(*In->Src, OpCategory::Has, Coll->isDense(), 1,
                           Coll);
          R[In->A] = Result;
          VM_NEXT();
        }
        VM_CASE(SizeVal) {
          RtCollection *Coll = VM::bitsToColl(R[In->B]);
          if (Coll->kind() != RtKind::Seq) {
            if (St)
              St->record(OpCategory::Size, Coll->isDense());
            if (Prof)
              Prof->recordOp(*In->Src, OpCategory::Size, Coll->isDense(), 1,
                             Coll);
          }
          R[In->A] = Coll->size();
          VM_NEXT();
        }
        VM_CASE(ClearVal) {
          RtCollection *Coll = VM::bitsToColl(R[In->B]);
          if (Coll->kind() != RtKind::Seq) {
            if (St)
              St->record(OpCategory::Clear, Coll->isDense());
            if (Prof)
              Prof->recordOp(*In->Src, OpCategory::Clear, Coll->isDense(), 1,
                             Coll);
          }
          if (Tel)
            Tel->recordClear(Coll, Coll->size());
          Coll->clear();
          VM_NEXT();
        }
        VM_CASE(ReserveVal) {
          RtCollection *Coll = VM::bitsToColl(R[In->B]);
          if (Coll->kind() != RtKind::Seq) {
            if (St)
              St->record(OpCategory::Reserve, Coll->isDense());
            if (Prof)
              Prof->recordOp(*In->Src, OpCategory::Reserve, Coll->isDense(), 1,
                             Coll);
          }
          if (Tel)
            Tel->recordReserve(Coll, R[In->C]);
          Coll->reserve(R[In->C]);
          checkMemBudget(*In->Src);
          VM_NEXT();
        }
        VM_CASE(UnionVal) {
          RtSet *Dst = asSet(R[In->B]);
          const RtSet *SrcSet = asSet(R[In->C]);
          uint64_t Merged = std::max<uint64_t>(1, SrcSet->size());
          if (St)
            St->record(OpCategory::Union, Dst->isDense(), Merged);
          if (Prof)
            Prof->recordOp(*In->Src, OpCategory::Union, Dst->isDense(), Merged,
                           Dst);
          collOp(Dst, OpCategory::Union, [&] { Dst->unionWith(*SrcSet); });
          checkMemBudget(*In->Src);
          VM_NEXT();
        }
        VM_CASE(EncVal) {
          RtEnum *E = asEnum(R[In->B]);
          if (St)
            St->record(OpCategory::Enc, /*IsDense=*/false);
          if (Prof)
            Prof->recordOp(*In->Src, OpCategory::Enc, /*IsDense=*/false, 1,
                           nullptr);
          R[In->A] =
              E->contains(R[In->C]) ? E->encode(R[In->C]) : E->size();
          VM_NEXT();
        }
        VM_CASE(DecVal) {
          RtEnum *E = asEnum(R[In->B]);
          if (St)
            St->record(OpCategory::Dec, /*IsDense=*/true);
          if (Prof)
            Prof->recordOp(*In->Src, OpCategory::Dec, /*IsDense=*/true, 1,
                           nullptr);
          if (R[In->C] >= E->size())
            trapAt(InterpErrorKind::Undefined,
                   "dec of an out-of-range identifier", In->Src);
          R[In->A] = E->decode(R[In->C]);
          VM_NEXT();
        }
        VM_CASE(EnumAddVal) {
          RtEnum *E = asEnum(R[In->B]);
          if (St)
            St->record(OpCategory::EnumAdd, /*IsDense=*/false);
          if (Prof)
            Prof->recordOp(*In->Src, OpCategory::EnumAdd, /*IsDense=*/false, 1,
                           nullptr);
          R[In->A] = E->add(R[In->C]).first;
          checkMemBudget(*In->Src);
          VM_NEXT();
        }
        VM_CASE(GlobalGet) {
          R[In->A] = globalSlot(Syms[In->B]);
          VM_NEXT();
        }
        VM_CASE(GlobalSet) {
          Globals[Syms[In->B]] = R[In->A];
          VM_NEXT();
        }
        VM_CASE(ForEachInit) {
          RtCollection *Coll = VM::bitsToColl(R[In->B]);
          IterState IS;
          IS.Items.reserve(Coll->size());
          switch (Coll->kind()) {
          case RtKind::Seq:
            static_cast<RtSeq *>(Coll)->forEach(
                [&](uint64_t K, uint64_t V) { IS.Items.push_back({K, V}); });
            break;
          case RtKind::Set:
            static_cast<RtSet *>(Coll)->forEach(
                [&](uint64_t K) { IS.Items.push_back({K, 0}); });
            break;
          case RtKind::Map:
            static_cast<RtMap *>(Coll)->forEach(
                [&](uint64_t K, uint64_t V) { IS.Items.push_back({K, V}); });
            break;
          }
          if (Coll->kind() != RtKind::Seq) {
            if (St)
              St->record(OpCategory::Iterate, Coll->isDense(),
                         IS.Items.size());
            if (Prof)
              Prof->recordOp(*In->Src, OpCategory::Iterate, Coll->isDense(),
                             IS.Items.size(), Coll);
          }
          Iters.push_back(std::move(IS));
          VM_NEXT();
        }
        VM_CASE(ForEachNext) {
          IterState &IS = Iters.back();
          if (IS.Pos == IS.Items.size()) {
            Iters.pop_back();
            VM_JUMP(In->A);
          }
          R[In->B] = IS.Items[IS.Pos].first;
          if (In->C != NoReg)
            R[In->C] = IS.Items[IS.Pos].second;
          ++IS.Pos;
          VM_NEXT();
        }
        VM_CASE(HasBrFalse) {
          RtCollection *Coll = VM::bitsToColl(R[In->B]);
          bool Result = collOp(Coll, OpCategory::Has, [&]() -> bool {
            return icHas(Caches[In->E], Coll, R[In->C]);
          });
          if (St)
            St->record(OpCategory::Has, Coll->isDense());
          if (Prof)
            Prof->recordOp(*In->Src, OpCategory::Has, Coll->isDense(), 1,
                           Coll);
          if (!Result)
            VM_JUMP(In->A);
          VM_NEXT();
        }
        VM_CASE(MapReadAdd) {
          RtMap *Map = asMap(R[In->B]);
          bool Found = false;
          uint64_t V = collOp(Map, OpCategory::Read, [&] {
            return icMapGet(Caches[In->E], Map, R[In->C], Found);
          });
          if (St)
            St->record(OpCategory::Read, Map->isDense());
          if (Prof)
            Prof->recordOp(*In->Src, OpCategory::Read, Map->isDense(), 1, Map);
          if (!Found)
            trapAt(InterpErrorKind::Undefined, "map read of a missing key",
                   In->Src);
          R[In->A] = V + R[In->D];
          VM_NEXT();
        }
        VM_CASE(SeqReadAdd) {
          R[In->A] = asSeq(R[In->B])->get(R[In->C]) + R[In->D];
          VM_NEXT();
        }
        VM_CASE(EncInsert) {
          RtEnum *E = asEnum(R[In->B]);
          if (St)
            St->record(OpCategory::Enc, /*IsDense=*/false);
          if (Prof)
            Prof->recordOp(*In->Src, OpCategory::Enc, /*IsDense=*/false, 1,
                           nullptr);
          uint64_t Key =
              E->contains(R[In->C]) ? E->encode(R[In->C]) : E->size();
          const Instruction *InsSrc = CF.SrcPool[In->Aux];
          RtCollection *Coll = VM::bitsToColl(R[In->D]);
          collOp(Coll, OpCategory::Insert,
                 [&] { icInsert(Caches[In->E], Coll, Key); });
          checkMemBudget(*InsSrc);
          if (St)
            St->record(OpCategory::Insert, Coll->isDense());
          if (Prof)
            Prof->recordOp(*InsSrc, OpCategory::Insert, Coll->isDense(), 1,
                           Coll);
          VM_NEXT();
        }
        VM_CASE(CallFn) {
          const Function *Callee = CF.FuncPool[In->B];
          if (!Callee)
            reportFatalError("call to an unknown function");
          const std::vector<uint32_t> &ArgRegs = CF.ArgPool[In->C];
          std::vector<uint64_t> CallArgs(ArgRegs.size());
          for (size_t Idx = 0; Idx != ArgRegs.size(); ++Idx)
            CallArgs[Idx] = R[ArgRegs[Idx]];
          uint64_t Result = callFunction(Callee, CallArgs);
          if (In->A != NoReg)
            R[In->A] = Result;
          VM_NEXT();
        }
        VM_CASE(RetVal) {
          if (St)
            St->InstructionsExecuted += Done;
          return In->A == NoReg ? 0 : R[In->A];
        }

#if !defined(ADE_VM_COMPUTED_GOTO)
      }
      ade_unreachable("invalid vm opcode");
    }
#endif

#undef VM_CASE
#undef VM_NEXT
#undef VM_JUMP
#if defined(ADE_VM_COMPUTED_GOTO)
#undef VM_DISPATCH
#endif

  } catch (const RtError &E) {
    // Same translation as the tree-walker's per-instruction catch:
    // runtime-collection errors become source-located diagnostics
    // attributed to the instruction that was executing.
    if (St)
      St->InstructionsExecuted += Done;
    trapAt(InterpErrorKind::Undefined, E.Message, In->Src);
  } catch (...) {
    // An InterpError (trap, guard rail, or one from a nested call)
    // unwinding through this frame: flush this frame's charges first.
    if (St)
      St->InstructionsExecuted += Done;
    throw;
  }
  ade_unreachable("vm dispatch loop fell through");
}

VM::VM(const Module &M, InterpOptions Opts)
    : TheImpl(std::make_unique<Impl>(M, Opts)) {
  if (Opts.CollectStats)
    TheImpl->Stats = &Stats;
}

VM::~VM() = default;

uint64_t VM::call(const Function *F, const std::vector<uint64_t> &Args) {
  return TheImpl->callFunction(F, Args);
}

uint64_t VM::callByName(const std::string &Name,
                        const std::vector<uint64_t> &Args) {
  const Function *F = TheImpl->M.getFunction(Name);
  if (!F)
    reportFatalError("callByName: unknown function");
  return TheImpl->callFunction(F, Args);
}

void VM::resetCallBudget() { TheImpl->Steps = 0; }

RtCollection *VM::newCollection(const Type *Ty) {
  return TheImpl->makeCollection(Ty);
}

ProbeCounters VM::probeTotals() const {
  ProbeCounters Totals;
  for (const auto &C : TheImpl->CollArena) {
    ProbeCounters PC = C->probeCounters();
    Totals.Probes += PC.Probes;
    Totals.Rehashes += PC.Rehashes;
  }
  return Totals;
}

uint64_t VM::globalValue(const std::string &Name) {
  return TheImpl->globalSlot(Name);
}

void VM::setGlobalValue(const std::string &Name, uint64_t Value) {
  TheImpl->Globals[Name] = Value;
}

const CompiledFn &VM::compiled(const Function *F) {
  return TheImpl->compile(F);
}
