//===- Engine.cpp - Engine selection facade -------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Engine.h"

using namespace ade;
using namespace ade::vm;

const char *ade::vm::engineName(EngineKind K) {
  switch (K) {
  case EngineKind::Tree:
    return "tree";
  case EngineKind::Vm:
    return "vm";
  }
  return "<invalid>";
}

bool ade::vm::engineFromName(const std::string &Name, EngineKind &K) {
  if (Name == "tree") {
    K = EngineKind::Tree;
    return true;
  }
  if (Name == "vm") {
    K = EngineKind::Vm;
    return true;
  }
  return false;
}
