//===- Bytecode.h - Register bytecode for the VM ----------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat register bytecode the VM executes (see DESIGN.md "Bytecode
/// VM"). Each IR function compiles once into a linear instruction buffer:
/// structured control flow (if / for-range / do-while / for-each regions)
/// lowers to explicit jumps, SSA values and region arguments get one
/// 64-bit virtual register each, and hot instruction pairs fuse into
/// superinstructions.
///
/// The encoding is fixed-width (32 bytes): opcode, a step-charge count
/// that preserves the tree-walker's instruction accounting exactly, five
/// 32-bit operand fields (registers, jump targets, pool and inline-cache
/// indices) and the originating IR instruction for diagnostics, stats and
/// profiler attribution.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_VM_BYTECODE_H
#define ADE_VM_BYTECODE_H

#include "ir/IR.h"
#include "runtime/RtCollection.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ade {
namespace vm {

/// Every VM opcode. The X-macro keeps the enum, the name table and the
/// computed-goto dispatch table in one list so they can never go out of
/// sync.
///
/// Operand field conventions (see Inst):
///   A  destination register, or jump target (instruction index)
///   B  first source register, or pool index
///   C  second source register
///   D  third source register
///   E  inline-cache index (collection ops only)
/// Superinstructions for two fused adjacent u64 fast-path binary ops:
/// `R[A] = (R[B] <op1> R[C]) <op2> R[D]`. Each hot combination gets its
/// own opcode so the handler is straight-line ALU work — a shared
/// handler decoding the pair from an operand field costs as much in
/// switch machinery as the dispatch it saves. The second op is
/// restricted to commutative ones, which lets the compiler drop the
/// operand-order bit; the grid must stay contiguous and ordered
/// (op1-major), the compiler indexes into it.
#define ADE_VM_BINPAIR_OPCODES(X)                                              \
  X(BinPairAddAdd) X(BinPairAddXor) X(BinPairAddAnd) X(BinPairAddOr)           \
  X(BinPairSubAdd) X(BinPairSubXor) X(BinPairSubAnd) X(BinPairSubOr)           \
  X(BinPairMulAdd) X(BinPairMulXor) X(BinPairMulAnd) X(BinPairMulOr)           \
  X(BinPairAndAdd) X(BinPairAndXor) X(BinPairAndAnd) X(BinPairAndOr)           \
  X(BinPairOrAdd)  X(BinPairOrXor)  X(BinPairOrAnd)  X(BinPairOrOr)            \
  X(BinPairXorAdd) X(BinPairXorXor) X(BinPairXorAnd) X(BinPairXorOr)           \
  X(BinPairShlAdd) X(BinPairShlXor) X(BinPairShlAnd) X(BinPairShlOr)           \
  X(BinPairShrAdd) X(BinPairShrXor) X(BinPairShrAnd) X(BinPairShrOr)

#define ADE_VM_OPCODES(X)                                                      \
  X(Nop)         /* no effect (charge carrier) */                              \
  X(LoadImm)     /* R[A] = ConstPool[B] */                                     \
  X(Move)        /* R[A] = R[B] */                                             \
  X(AddU64)      /* R[A] = R[B] + R[C] (u64 fast path; likewise below) */      \
  X(SubU64)                                                                    \
  X(MulU64)                                                                    \
  X(DivU64)      /* traps on zero divisor */                                   \
  X(RemU64)      /* traps on zero divisor */                                   \
  X(AndU64)                                                                    \
  X(OrU64)                                                                     \
  X(XorU64)                                                                    \
  X(ShlU64)      /* shift amount masked to 63, like the tree-walker */         \
  X(ShrU64)                                                                    \
  X(MinU64)                                                                    \
  X(MaxU64)                                                                    \
  X(CmpEqU64)                                                                  \
  X(CmpNeU64)                                                                  \
  X(CmpLtU64)                                                                  \
  X(CmpLeU64)                                                                  \
  X(CmpGtU64)                                                                  \
  X(CmpGeU64)                                                                  \
  X(BinaryGen)   /* R[A] = evalBinary(Src->op(), ..., R[B], R[C]) */           \
  ADE_VM_BINPAIR_OPCODES(X) /* fused u64 binop pairs, see below */             \
  X(NegGen)      /* R[A] = -R[B], typed via Src */                             \
  X(NotGen)      /* R[A] = !/~R[B], typed via Src */                           \
  X(CastGen)     /* R[A] = evalCast(Src types, R[B]) */                        \
  X(SelectVal)   /* R[A] = R[B] ? R[C] : R[D] */                               \
  X(Jump)        /* ip = A */                                                  \
  X(JumpIfTrue)  /* if (R[B]) ip = A */                                        \
  X(JumpIfFalse) /* if (!R[B]) ip = A */                                       \
  X(JumpIfGeU64) /* if (R[B] >= R[C]) ip = A (for-range header) */             \
  X(IncJumpLt)   /* ++R[B]; ip = R[B] < R[C] ? A : D (rotated back edge) */                    \
  X(NewColl)     /* R[A] = new collection of Src->result()->type() */          \
  X(SeqRead)     /* R[A] = seq(R[B])[R[C]] */                                  \
  X(SeqWrite)    /* seq(R[B])[R[C]] = R[D] */                                  \
  X(SeqAppend)   /* seq(R[B]).append(R[C]) */                                  \
  X(SeqPop)      /* R[A] = seq(R[B]).pop() */                                  \
  X(MapRead)     /* R[A] = map(R[B])[R[C]]; traps on a missing key */          \
  X(MapWrite)    /* map(R[B])[R[C]] = R[D] */                                  \
  X(InsertVal)   /* insert(R[B], R[C]) */                                      \
  X(RemoveVal)   /* remove(R[B], R[C]) */                                      \
  X(HasVal)      /* R[A] = has(R[B], R[C]) */                                  \
  X(SizeVal)     /* R[A] = size(R[B]) */                                       \
  X(ClearVal)    /* clear(R[B]) */                                             \
  X(ReserveVal)  /* reserve(R[B], R[C]) */                                     \
  X(UnionVal)    /* union(R[B], R[C]) */                                       \
  X(EncVal)      /* R[A] = enc(R[B], R[C]) */                                  \
  X(DecVal)      /* R[A] = dec(R[B], R[C]); traps out of range */              \
  X(EnumAddVal)  /* R[A] = add(R[B], R[C]) */                                  \
  X(GlobalGet)   /* R[A] = global SymPool[B] */                                \
  X(GlobalSet)   /* global SymPool[B] = R[A] */                                \
  X(ForEachInit) /* snapshot R[B]'s items, push iteration state */             \
  X(ForEachNext) /* pop+jump A when done, else R[B]=key, R[C]=value */         \
  X(AddIncJumpLt) /* fused accumulate+back edge: R[A] = R[B] + R[C];           \
                     ++R[D]; ip = R[D] < R[E] ? Aux : fallthrough */           \
  X(HasBrFalse)  /* fused has+branch: if (!has(R[B], R[C])) ip = A */          \
  X(MapReadAdd)  /* fused read+add: R[A] = map(R[B])[R[C]] + R[D] */           \
  X(SeqReadAdd)  /* fused read+add: R[A] = seq(R[B])[R[C]] + R[D] */           \
  X(EncInsert)   /* fused enc+insert: insert(R[D], enc(R[B], R[C])) */         \
  X(CallFn)      /* R[A] = FuncPool[B](regs of ArgPool[C]) */                  \
  X(RetVal)      /* return R[A] (or 0 when A == NoReg) */

enum class VmOp : uint8_t {
#define ADE_VM_ENUM(Name) Name,
  ADE_VM_OPCODES(ADE_VM_ENUM)
#undef ADE_VM_ENUM
};

/// Mnemonic of \p Op, for the disassembler and tests.
const char *vmOpName(VmOp Op);

/// Sentinel for "no register" operand slots (void calls, ret without a
/// value, set-iteration value registers).
constexpr uint32_t NoReg = ~uint32_t(0);

/// One decoded instruction. Fixed 32-byte layout so the dispatch loop's
/// fetch is a single cache line for two instructions.
struct Inst {
  VmOp Op = VmOp::Nop;
  /// Steps to charge against InstructionsExecuted / --max-steps when this
  /// instruction executes: 0 for synthesized glue (jumps, copies beyond
  /// the first of a sequence), 1 for a lowered IR instruction, 2 for a
  /// fused pair. Preserves the tree-walker's accounting exactly.
  uint8_t Charge = 0;
  /// Secondary attribution: SrcPool index of the second IR instruction of
  /// a fused pair (EncInsert's insert).
  uint16_t Aux = 0;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t C = 0;
  uint32_t D = 0;
  /// Inline-cache index into CompiledFn::Caches (collection ops).
  uint32_t E = 0;
  /// The IR instruction this lowered from: diagnostics (source location),
  /// stats/profiler attribution and type queries for the Gen opcodes.
  /// Null only on the synthesized implicit return.
  const ir::Instruction *Src = nullptr;
};

static_assert(sizeof(Inst) == 32, "Inst packing changed; re-measure dispatch");

/// A monomorphic inline cache attached to one collection-op site. Valid
/// while the cached pointer still identifies the same never-destroyed
/// object: RtCollection::destructionEpoch() is snapshotted at fill time,
/// and any RtCollection destruction anywhere invalidates every cache
/// (conservative, but refills are one classification switch).
struct InlineCache {
  /// Concrete adapter classification, used to devirtualize the operation.
  enum class Fast : uint8_t {
    None, // Unclassified or no fast path (sequences).
    HashSet,
    SwissSet,
    FlatSet,
    BitSet,
    RoaringSet,
    HashMap,
    SwissMap,
    BitMap,
  };

  const runtime::RtCollection *Coll = nullptr;
  uint64_t Epoch = 0;
  Fast Kind = Fast::None;
};

/// One function compiled to bytecode.
struct CompiledFn {
  std::vector<Inst> Code;
  /// Immediate values (LoadImm), pre-masked to their IR type width.
  std::vector<uint64_t> ConstPool;
  /// Global symbol names (GlobalGet/GlobalSet).
  std::vector<std::string> SymPool;
  /// Resolved call targets; null entries fault at execution time like the
  /// tree-walker's unknown-function lookup.
  std::vector<const ir::Function *> FuncPool;
  /// Argument register lists for calls.
  std::vector<std::vector<uint32_t>> ArgPool;
  /// Secondary attribution targets for fused pairs (see Inst::Aux).
  std::vector<const ir::Instruction *> SrcPool;
  /// Inline caches, mutated during execution.
  std::vector<InlineCache> Caches;
  /// Virtual register count; the frame is NumRegs zero-initialized u64s.
  uint32_t NumRegs = 0;
  /// Registers holding the function arguments on entry.
  std::vector<uint32_t> ArgRegs;
};

/// Renders \p CF as text, one instruction per line ("12: addu64 r3, r1,
/// r2 #1" style), for tests and debugging.
std::string disassemble(const CompiledFn &CF);

} // namespace vm
} // namespace ade

#endif // ADE_VM_BYTECODE_H
