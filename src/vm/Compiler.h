//===- Compiler.h - IR to register bytecode -------------------- -*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flattens one IR function into the linear register bytecode of
/// Bytecode.h: SSA values and region arguments map to virtual registers
/// (a private map — never the IR's scratch ids, which the tree-walking
/// engine owns), structured regions lower to explicit jumps, loop yields
/// become parallel register copies, and adjacent hot pairs fuse into
/// superinstructions.
///
/// Step-charge placement reproduces the tree-walker's accounting: each IR
/// instruction's single charge lands on the first bytecode instruction
/// emitted for the point where the tree-walker's execInst would run it
/// (loop headers charge once at entry; yields charge once per iteration).
/// Fusion folds two charges into one instruction, which would shift where
/// a --max-steps trap fires, so callers disable it when a step budget is
/// armed.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_VM_COMPILER_H
#define ADE_VM_COMPILER_H

#include "vm/Bytecode.h"

namespace ade {
namespace vm {

struct CompileOptions {
  /// Fuse adjacent hot pairs (has+branch, read+add, enc+insert) into
  /// 2-charge superinstructions. Must be off when --max-steps is armed so
  /// the budget trap fires between the pair's halves exactly as the
  /// tree-walker's would.
  bool Fuse = true;
};

/// Compiles \p F to bytecode. \p F must be a defined (non-external)
/// verified function.
CompiledFn compileFunction(const ir::Function &F, CompileOptions Opts = {});

} // namespace vm
} // namespace ade

#endif // ADE_VM_COMPILER_H
