//===- Statistic.h - Pass statistics registry -------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LLVM `-stats`-style statistics registry. Passes define file-static
/// counters with \c ADE_STATISTIC and increment them as they transform; the
/// driver renders every non-zero counter as a \c stats::Table text report
/// (`adec --time-report`) or as JSON (embedded in `--profile` output).
///
/// Counters self-register on construction and live for the process; tests
/// call \c resetAllStatistics() between pipeline runs.
///
/// Counters are relaxed atomics so instrumented code — notably the
/// runtime collections, which the serving runtime executes from many
/// worker threads — can bump them concurrently without data races. The
/// registry itself is mutex-guarded only at registration; iteration
/// never mutates it.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_STATS_STATISTIC_H
#define ADE_STATS_STATISTIC_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string_view>

namespace ade {
class RawOstream;
namespace json {
class Writer;
}
namespace stats {

/// A named monotonic counter attributed to a component (pass).
class Statistic {
public:
  Statistic(const char *Component, const char *Name, const char *Description);
  Statistic(const Statistic &) = delete;
  Statistic &operator=(const Statistic &) = delete;

  const char *component() const { return Component; }
  const char *name() const { return Name; }
  const char *description() const { return Description; }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

  Statistic &operator++() {
    Value.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  Statistic &operator+=(uint64_t N) {
    Value.fetch_add(N, std::memory_order_relaxed);
    return *this;
  }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  const char *Component;
  const char *Name;
  const char *Description;
  std::atomic<uint64_t> Value{0};
};

/// Declares a file-static registered statistic named after the variable.
#define ADE_STATISTIC(VAR, COMPONENT, DESC)                                    \
  static ade::stats::Statistic VAR(COMPONENT, #VAR, DESC)

/// Zeroes every registered statistic (for tests and repeated pipeline runs).
void resetAllStatistics();

/// True if any registered statistic is non-zero.
bool hasNonZeroStatistics();

/// Visits every registered statistic sorted by (component, name).
void forEachStatistic(const std::function<void(const Statistic &)> &Fn);

/// Renders every non-zero statistic as an aligned text table.
void printStatistics(RawOstream &OS);

/// Appends {"component/name": value, ...} for every non-zero statistic.
void writeStatisticsJson(json::Writer &W);

} // namespace stats
} // namespace ade

#endif // ADE_STATS_STATISTIC_H
