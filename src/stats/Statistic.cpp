//===- Statistic.cpp - Pass statistics registry ---------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "stats/Statistic.h"

#include "stats/Stats.h"
#include "support/Json.h"
#include "support/RawOstream.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

using namespace ade;
using namespace ade::stats;

/// Function-local static so registration is safe during static init.
static std::vector<Statistic *> &registry() {
  static std::vector<Statistic *> Registry;
  return Registry;
}

/// Guards registration; counters are file-statics so most register during
/// static init, but dynamically loaded or lazily constructed ones may
/// race a concurrent report.
static std::mutex &registryMutex() {
  static std::mutex M;
  return M;
}

Statistic::Statistic(const char *Component, const char *Name,
                     const char *Description)
    : Component(Component), Name(Name), Description(Description) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  registry().push_back(this);
}

/// Snapshot of the registry taken under the lock, so iteration cannot
/// race a late registration growing the vector.
static std::vector<Statistic *> registrySnapshot() {
  std::lock_guard<std::mutex> Lock(registryMutex());
  return registry();
}

void stats::resetAllStatistics() {
  for (Statistic *S : registrySnapshot())
    S->reset();
}

bool stats::hasNonZeroStatistics() {
  for (const Statistic *S : registrySnapshot())
    if (S->value() != 0)
      return true;
  return false;
}

/// The registry in deterministic (component, name) order.
static std::vector<const Statistic *> sortedStatistics() {
  std::vector<Statistic *> Snap = registrySnapshot();
  std::vector<const Statistic *> Sorted(Snap.begin(), Snap.end());
  std::sort(Sorted.begin(), Sorted.end(),
            [](const Statistic *A, const Statistic *B) {
              int C = std::strcmp(A->component(), B->component());
              if (C != 0)
                return C < 0;
              return std::strcmp(A->name(), B->name()) < 0;
            });
  return Sorted;
}

void stats::forEachStatistic(const std::function<void(const Statistic &)> &Fn) {
  for (const Statistic *S : sortedStatistics())
    Fn(*S);
}

void stats::printStatistics(RawOstream &OS) {
  Table T({"component", "statistic", "value", "description"});
  for (const Statistic *S : sortedStatistics())
    if (S->value() != 0)
      T.addRow({S->component(), S->name(), std::to_string(S->value()),
                S->description()});
  T.print(OS);
}

void stats::writeStatisticsJson(json::Writer &W) {
  W.beginObject();
  for (const Statistic *S : sortedStatistics())
    if (S->value() != 0)
      W.key(std::string(S->component()) + "/" + S->name()).value(S->value());
  W.endObject();
}
