//===- Stats.cpp - Reporting statistics -----------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "stats/Stats.h"

#include "support/ErrorHandling.h"
#include "support/RawOstream.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace ade;
using namespace ade::stats;

double ade::stats::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double LogSum = 0;
  for (double V : Values) {
    assert(V > 0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

std::vector<ClusterMerge> ade::stats::clusterAverageLinkage(
    const std::vector<std::vector<double>> &Points) {
  size_t N = Points.size();
  std::vector<ClusterMerge> Merges;
  if (N < 2)
    return Merges;

  // Active clusters: id and member leaf indices.
  struct Cluster {
    size_t Id;
    std::vector<size_t> Members;
  };
  std::vector<Cluster> Active;
  for (size_t I = 0; I != N; ++I)
    Active.push_back({I, {I}});

  auto Dist = [&](size_t A, size_t B) {
    double Sum = 0;
    for (size_t D = 0; D != Points[A].size(); ++D) {
      double Diff = Points[A][D] - Points[B][D];
      Sum += Diff * Diff;
    }
    return std::sqrt(Sum);
  };

  size_t NextId = N;
  while (Active.size() > 1) {
    // Average linkage: mean pairwise distance between member leaves.
    double BestD = 0;
    size_t BestA = 0, BestB = 1;
    bool First = true;
    for (size_t A = 0; A != Active.size(); ++A) {
      for (size_t B = A + 1; B != Active.size(); ++B) {
        double Sum = 0;
        for (size_t I : Active[A].Members)
          for (size_t J : Active[B].Members)
            Sum += Dist(I, J);
        double D = Sum / static_cast<double>(Active[A].Members.size() *
                                             Active[B].Members.size());
        if (First || D < BestD) {
          BestD = D;
          BestA = A;
          BestB = B;
          First = false;
        }
      }
    }
    Merges.push_back({Active[BestA].Id, Active[BestB].Id, BestD});
    Cluster Merged;
    Merged.Id = NextId++;
    Merged.Members = Active[BestA].Members;
    Merged.Members.insert(Merged.Members.end(),
                          Active[BestB].Members.begin(),
                          Active[BestB].Members.end());
    // Erase higher index first.
    Active.erase(Active.begin() + BestB);
    Active.erase(Active.begin() + BestA);
    Active.push_back(std::move(Merged));
  }
  return Merges;
}

void ade::stats::printDendrogram(const std::vector<ClusterMerge> &Merges,
                                 const std::vector<std::string> &Labels,
                                 RawOstream &OS) {
  size_t N = Labels.size();
  // Render each merge bottom-up as a nested textual tree.
  std::vector<std::string> Names(N + Merges.size());
  for (size_t I = 0; I != N; ++I)
    Names[I] = Labels[I];
  for (size_t K = 0; K != Merges.size(); ++K) {
    const ClusterMerge &M = Merges[K];
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.3f", M.Distance);
    Names[N + K] =
        "(" + Names[M.Left] + " + " + Names[M.Right] + " @" + Buf + ")";
    OS << "  merge " << (K + 1) << ": " << Names[M.Left] << " + "
       << Names[M.Right] << "  [d=" << Buf << "]\n";
  }
  if (!Merges.empty())
    OS << "  tree: " << Names[N + Merges.size() - 1] << "\n";
}

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {}

void Table::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Header.size() && "row width mismatch");
  Rows.push_back(std::move(Cells));
}

void Table::print(RawOstream &OS) const {
  std::vector<size_t> Widths(Header.size());
  for (size_t C = 0; C != Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      OS << (C ? "  " : "");
      OS << Row[C];
      for (size_t Pad = Row[C].size(); Pad < Widths[C]; ++Pad)
        OS << ' ';
    }
    OS << '\n';
  };
  PrintRow(Header);
  std::string Rule;
  for (size_t C = 0; C != Header.size(); ++C)
    Rule += std::string(Widths[C], '-') + (C + 1 == Header.size() ? "" : "  ");
  OS << Rule << '\n';
  for (const auto &Row : Rows)
    PrintRow(Row);
}

std::string Table::fmt(double V, unsigned Decimals) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, V);
  return Buf;
}

std::string Table::pct(double Ratio, unsigned Decimals) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Decimals, Ratio * 100.0);
  return Buf;
}
