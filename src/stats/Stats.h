//===- Stats.h - Reporting statistics ---------------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reporting helpers for the benchmark harnesses: geometric means (the
/// GEO entries of Figures 5-9), average-linkage agglomerative clustering
/// (the benchmark dendrogram of Figure 4) and fixed-width table printing.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_STATS_STATS_H
#define ADE_STATS_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace ade {
class RawOstream;
namespace stats {

/// Geometric mean of \p Values (which must be positive); 0 if empty.
double geomean(const std::vector<double> &Values);

/// One step of the agglomerative merge sequence.
struct ClusterMerge {
  /// Indices of the merged clusters (cluster i < N is leaf i; cluster
  /// N + k is the result of merge k).
  size_t Left;
  size_t Right;
  /// Average-linkage distance at which the merge happened.
  double Distance;
};

/// Average-linkage agglomerative clustering over Euclidean distances of
/// the row vectors in \p Points. Returns N-1 merges.
std::vector<ClusterMerge>
clusterAverageLinkage(const std::vector<std::vector<double>> &Points);

/// Renders the merge sequence as an ASCII dendrogram with the given leaf
/// labels (Figure 4's clustering panel).
void printDendrogram(const std::vector<ClusterMerge> &Merges,
                     const std::vector<std::string> &Labels,
                     RawOstream &OS);

/// Fixed-width table printer.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  void addRow(std::vector<std::string> Cells);
  void print(RawOstream &OS) const;

  /// Formats a double with \p Decimals digits.
  static std::string fmt(double V, unsigned Decimals = 2);
  /// Formats a ratio as a percentage string like "95.1%".
  static std::string pct(double Ratio, unsigned Decimals = 1);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace stats
} // namespace ade

#endif // ADE_STATS_STATS_H
