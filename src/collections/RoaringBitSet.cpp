//===- RoaringBitSet.cpp - Compressed sparse bitset -----------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "collections/RoaringBitSet.h"

#include <algorithm>

using namespace ade;
using namespace ade::roaring;

//===----------------------------------------------------------------------===//
// ArrayContainer
//===----------------------------------------------------------------------===//

bool ArrayContainer::contains(uint16_t Low) const {
  auto It = std::lower_bound(Keys.begin(), Keys.end(), Low);
  return It != Keys.end() && *It == Low;
}

void ArrayContainer::forEach(const std::function<void(uint16_t)> &Fn) const {
  for (uint16_t Key : Keys)
    Fn(Key);
}

bool ArrayContainer::insert(uint16_t Low) {
  auto It = std::lower_bound(Keys.begin(), Keys.end(), Low);
  if (It != Keys.end() && *It == Low)
    return false;
  Keys.insert(It, Low);
  return true;
}

bool ArrayContainer::remove(uint16_t Low) {
  auto It = std::lower_bound(Keys.begin(), Keys.end(), Low);
  if (It == Keys.end() || *It != Low)
    return false;
  Keys.erase(It);
  return true;
}

//===----------------------------------------------------------------------===//
// BitmapContainer
//===----------------------------------------------------------------------===//

BitmapContainer::BitmapContainer() : Container(Kind::Bitmap) {
  Words.assign(1024, 0);
}

void BitmapContainer::forEach(const std::function<void(uint16_t)> &Fn) const {
  for (size_t W = 0; W != 1024; ++W) {
    uint64_t Bits = Words[W];
    while (Bits) {
      unsigned Tz = static_cast<unsigned>(__builtin_ctzll(Bits));
      Fn(static_cast<uint16_t>(W * 64 + Tz));
      Bits &= Bits - 1;
    }
  }
}

bool BitmapContainer::insert(uint16_t Low) {
  uint64_t &Word = Words[Low >> 6];
  uint64_t Mask = 1ULL << (Low & 63);
  if (Word & Mask)
    return false;
  Word |= Mask;
  ++Count;
  return true;
}

bool BitmapContainer::remove(uint16_t Low) {
  uint64_t &Word = Words[Low >> 6];
  uint64_t Mask = 1ULL << (Low & 63);
  if (!(Word & Mask))
    return false;
  Word &= ~Mask;
  --Count;
  return true;
}

//===----------------------------------------------------------------------===//
// RunContainer
//===----------------------------------------------------------------------===//

size_t RunContainer::cardinality() const {
  size_t N = 0;
  for (const Run &R : Runs)
    N += static_cast<size_t>(R.Length) + 1;
  return N;
}

bool RunContainer::contains(uint16_t Low) const {
  // Find the first run starting after Low, then check its predecessor.
  auto It = std::upper_bound(
      Runs.begin(), Runs.end(), Low,
      [](uint16_t Value, const Run &R) { return Value < R.Start; });
  if (It == Runs.begin())
    return false;
  const Run &R = *std::prev(It);
  return Low >= R.Start &&
         static_cast<uint32_t>(Low) <=
             static_cast<uint32_t>(R.Start) + R.Length;
}

void RunContainer::forEach(const std::function<void(uint16_t)> &Fn) const {
  for (const Run &R : Runs) {
    uint32_t End = static_cast<uint32_t>(R.Start) + R.Length;
    for (uint32_t Low = R.Start; Low <= End; ++Low)
      Fn(static_cast<uint16_t>(Low));
  }
}

//===----------------------------------------------------------------------===//
// RoaringBitSet
//===----------------------------------------------------------------------===//

RoaringBitSet &RoaringBitSet::operator=(const RoaringBitSet &Other) {
  if (this == &Other)
    return *this;
  clear();
  Other.forEach([&](uint64_t Key) { insert(Key); });
  return *this;
}

size_t RoaringBitSet::lowerBoundChunk(uint16_t High) const {
  size_t Lo = 0, Hi = Chunks.size();
  while (Lo != Hi) {
    ++Probes;
    size_t Mid = (Lo + Hi) / 2;
    if (Chunks[Mid].High < High)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo;
}

bool RoaringBitSet::contains(uint64_t Key) const {
  assert(Key < (1ULL << 32) && "RoaringBitSet keys are 32-bit");
  uint16_t High = static_cast<uint16_t>(Key >> 16);
  size_t Idx = lowerBoundChunk(High);
  if (Idx == Chunks.size() || Chunks[Idx].High != High)
    return false;
  ++Probes;
  return Chunks[Idx].Body->contains(static_cast<uint16_t>(Key));
}

std::unique_ptr<Container> RoaringBitSet::materialize(const Container &C) {
  if (C.cardinality() <= ArrayCutoff) {
    auto Arr = std::make_unique<ArrayContainer>();
    Arr->Keys.reserve(C.cardinality());
    C.forEach([&](uint16_t Low) { Arr->Keys.push_back(Low); });
    return Arr;
  }
  auto Bmp = std::make_unique<BitmapContainer>();
  C.forEach([&](uint16_t Low) { Bmp->insert(Low); });
  return Bmp;
}

void RoaringBitSet::normalize(std::unique_ptr<Container> &Body) {
  if (auto *Arr = dyn_cast<ArrayContainer>(Body.get())) {
    if (Arr->cardinality() > ArrayCutoff) {
      Body = materialize(*Arr);
      ++Reorgs;
    }
    return;
  }
  if (auto *Bmp = dyn_cast<BitmapContainer>(Body.get())) {
    if (Bmp->cardinality() <= ArrayCutoff) {
      Body = materialize(*Bmp);
      ++Reorgs;
    }
    return;
  }
}

bool RoaringBitSet::insert(uint64_t Key) {
  assert(Key < (1ULL << 32) && "RoaringBitSet keys are 32-bit");
  uint16_t High = static_cast<uint16_t>(Key >> 16);
  uint16_t Low = static_cast<uint16_t>(Key);
  size_t Idx = lowerBoundChunk(High);
  if (Idx == Chunks.size() || Chunks[Idx].High != High) {
    auto Arr = std::make_unique<ArrayContainer>();
    Arr->Keys.push_back(Low);
    Chunks.insert(Chunks.begin() + Idx, Chunk{High, std::move(Arr)});
    ++Count;
    return true;
  }
  std::unique_ptr<Container> &Body = Chunks[Idx].Body;
  if (isa<RunContainer>(Body.get())) {
    if (Body->contains(Low))
      return false;
    Body = materialize(*Body);
    ++Reorgs;
  }
  ++Probes;
  bool Inserted;
  if (auto *Arr = dyn_cast<ArrayContainer>(Body.get()))
    Inserted = Arr->insert(Low);
  else
    Inserted = cast<BitmapContainer>(Body.get())->insert(Low);
  if (Inserted) {
    ++Count;
    normalize(Body);
  }
  return Inserted;
}

bool RoaringBitSet::remove(uint64_t Key) {
  assert(Key < (1ULL << 32) && "RoaringBitSet keys are 32-bit");
  uint16_t High = static_cast<uint16_t>(Key >> 16);
  uint16_t Low = static_cast<uint16_t>(Key);
  size_t Idx = lowerBoundChunk(High);
  if (Idx == Chunks.size() || Chunks[Idx].High != High)
    return false;
  std::unique_ptr<Container> &Body = Chunks[Idx].Body;
  if (isa<RunContainer>(Body.get())) {
    if (!Body->contains(Low))
      return false;
    Body = materialize(*Body);
    ++Reorgs;
  }
  ++Probes;
  bool Removed;
  if (auto *Arr = dyn_cast<ArrayContainer>(Body.get()))
    Removed = Arr->remove(Low);
  else
    Removed = cast<BitmapContainer>(Body.get())->remove(Low);
  if (!Removed)
    return false;
  --Count;
  if (Body->cardinality() == 0)
    Chunks.erase(Chunks.begin() + Idx);
  else
    normalize(Body);
  return true;
}

void RoaringBitSet::forEach(const std::function<void(uint64_t)> &Fn) const {
  for (const Chunk &C : Chunks) {
    uint64_t Base = static_cast<uint64_t>(C.High) << 16;
    C.Body->forEach([&](uint16_t Low) { Fn(Base | Low); });
  }
}

void RoaringBitSet::unionWith(const RoaringBitSet &Other) {
  // Self-aliasing guard: the loop below inserts into Chunks while
  // iterating Other.Chunks, and s ∪ s is the identity anyway.
  if (&Other == this)
    return;
  for (const Chunk &Theirs : Other.Chunks) {
    size_t Idx = lowerBoundChunk(Theirs.High);
    if (Idx == Chunks.size() || Chunks[Idx].High != Theirs.High) {
      // Absent chunk: deep-copy theirs.
      Chunks.insert(Chunks.begin() + Idx,
                    Chunk{Theirs.High, materialize(*Theirs.Body)});
      Count += Theirs.Body->cardinality();
      continue;
    }
    std::unique_ptr<Container> &Body = Chunks[Idx].Body;
    Count -= Body->cardinality();
    auto *Mine = dyn_cast<BitmapContainer>(Body.get());
    auto *TheirBmp = dyn_cast<BitmapContainer>(Theirs.Body.get());
    if (Mine && TheirBmp) {
      // Fast path: word-wise OR of two bitmap containers.
      size_t NewCount = 0;
      for (size_t W = 0; W != 1024; ++W) {
        Mine->Words[W] |= TheirBmp->Words[W];
        NewCount += static_cast<size_t>(__builtin_popcountll(Mine->Words[W]));
      }
      Mine->Count = NewCount;
    } else if (Mine) {
      Theirs.Body->forEach([&](uint16_t Low) { Mine->insert(Low); });
    } else {
      // Array or run on our side: merge through insertion, materializing
      // runs first.
      if (isa<RunContainer>(Body.get())) {
        Body = materialize(*Body);
        ++Reorgs;
      }
      if (auto *Arr = dyn_cast<ArrayContainer>(Body.get())) {
        if (Arr->cardinality() + Theirs.Body->cardinality() > ArrayCutoff) {
          Body = materialize(*Arr); // May still be an array; force check.
          if (auto *StillArr = dyn_cast<ArrayContainer>(Body.get())) {
            auto Bmp = std::make_unique<BitmapContainer>();
            StillArr->forEach([&](uint16_t Low) { Bmp->insert(Low); });
            Body = std::move(Bmp);
          }
          ++Reorgs;
        }
      }
      if (auto *Arr = dyn_cast<ArrayContainer>(Body.get()))
        Theirs.Body->forEach([&](uint16_t Low) { Arr->insert(Low); });
      else
        Theirs.Body->forEach([&](uint16_t Low) {
          cast<BitmapContainer>(Body.get())->insert(Low);
        });
      normalize(Body);
    }
    Count += Body->cardinality();
  }
}

size_t RoaringBitSet::runOptimize() {
  size_t Converted = 0;
  for (Chunk &C : Chunks) {
    if (isa<RunContainer>(C.Body.get()))
      continue;
    // Collect runs from the (ordered) container iteration.
    auto Runs = std::make_unique<RunContainer>();
    bool Open = false;
    uint32_t Start = 0, Prev = 0;
    C.Body->forEach([&](uint16_t Low) {
      if (!Open) {
        Open = true;
        Start = Prev = Low;
        return;
      }
      if (Low == Prev + 1) {
        Prev = Low;
        return;
      }
      Runs->Runs.push_back({static_cast<uint16_t>(Start),
                            static_cast<uint16_t>(Prev - Start)});
      Start = Prev = Low;
    });
    if (Open)
      Runs->Runs.push_back({static_cast<uint16_t>(Start),
                            static_cast<uint16_t>(Prev - Start)});
    if (Runs->memoryBytes() < C.Body->memoryBytes()) {
      C.Body = std::move(Runs);
      ++Converted;
      ++Reorgs;
    }
  }
  return Converted;
}

size_t RoaringBitSet::memoryBytes() const {
  size_t Bytes = Chunks.capacity() * sizeof(Chunk);
  for (const Chunk &C : Chunks)
    Bytes += C.Body->memoryBytes();
  return Bytes;
}

RoaringBitSet::ContainerCounts RoaringBitSet::containerCounts() const {
  ContainerCounts Counts;
  for (const Chunk &C : Chunks) {
    switch (C.Body->kind()) {
    case Container::Kind::Array:
      ++Counts.Array;
      break;
    case Container::Kind::Bitmap:
      ++Counts.Bitmap;
      break;
    case Container::Kind::Run:
      ++Counts.Run;
      break;
    }
  }
  return Counts;
}
