//===- HashMap.h - Chained hash table map -----------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The HashMap of Table I and the MEMOIR baseline map implementation: a
/// separately chained hash table analogous to std::unordered_map. See
/// HashSet.h for the organization; this adds a mapped value per node.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_COLLECTIONS_HASHMAP_H
#define ADE_COLLECTIONS_HASHMAP_H

#include "collections/HashTraits.h"
#include "collections/MemoryTracker.h"

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace ade {

/// A separately chained hash map.
template <typename K, typename V, typename Hasher = DefaultHash<K>>
class HashMap {
  struct Node {
    K Key;
    V Value;
    Node *Next;
  };

public:
  using key_type = K;
  using mapped_type = V;

  HashMap() = default;
  HashMap(const HashMap &Other) { *this = Other; }
  HashMap(HashMap &&Other) noexcept { *this = std::move(Other); }

  HashMap &operator=(const HashMap &Other) {
    if (this == &Other)
      return *this;
    clear();
    Other.forEach(
        [&](const K &Key, const V &Value) { insertOrAssign(Key, Value); });
    return *this;
  }

  HashMap &operator=(HashMap &&Other) noexcept {
    if (this == &Other)
      return *this;
    clear();
    Buckets = std::move(Other.Buckets);
    Count = Other.Count;
    ProbeNodes = Other.ProbeNodes;
    RehashCount = Other.RehashCount;
    Other.Buckets.clear();
    Other.Count = 0;
    Other.ProbeNodes = 0;
    Other.RehashCount = 0;
    return *this;
  }

  ~HashMap() { clear(); }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  bool contains(const K &Key) const { return lookup(Key) != nullptr; }

  /// Returns a pointer to the value mapped by \p Key, or null.
  V *lookup(const K &Key) {
    if (Buckets.empty())
      return nullptr;
    for (Node *N = Buckets[bucketOf(Key)]; N; N = N->Next) {
      ++ProbeNodes;
      if (N->Key == Key)
        return &N->Value;
    }
    return nullptr;
  }

  const V *lookup(const K &Key) const {
    return const_cast<HashMap *>(this)->lookup(Key);
  }

  /// Returns the value for \p Key; the key must be present.
  V &at(const K &Key) {
    V *Value = lookup(Key);
    assert(Value && "HashMap::at on absent key");
    return *Value;
  }

  const V &at(const K &Key) const {
    return const_cast<HashMap *>(this)->at(Key);
  }

  /// Inserts or overwrites Key -> Value; true if newly inserted.
  bool insertOrAssign(const K &Key, V Value) {
    if (V *Existing = lookup(Key)) {
      *Existing = std::move(Value);
      return false;
    }
    insertNew(Key, std::move(Value));
    return true;
  }

  /// Inserts Key -> Value if absent; true if inserted.
  bool tryInsert(const K &Key, V Value) {
    if (lookup(Key))
      return false;
    insertNew(Key, std::move(Value));
    return true;
  }

  /// Returns the value for \p Key, default-constructing it if absent.
  V &getOrInsert(const K &Key) {
    if (V *Existing = lookup(Key))
      return *Existing;
    return insertNew(Key, V());
  }

  bool remove(const K &Key) {
    if (Buckets.empty())
      return false;
    Node **Link = &Buckets[bucketOf(Key)];
    while (*Link) {
      ++ProbeNodes;
      if ((*Link)->Key == Key) {
        Node *Dead = *Link;
        *Link = Dead->Next;
        freeNode(Dead);
        --Count;
        return true;
      }
      Link = &(*Link)->Next;
    }
    return false;
  }

  void clear() {
    for (Node *Head : Buckets) {
      while (Head) {
        Node *Next = Head->Next;
        freeNode(Head);
        Head = Next;
      }
    }
    Buckets.clear();
    Buckets.shrink_to_fit();
    Count = 0;
  }

  /// Pre-sizes the bucket array so \p N insertions stay under the load
  /// bound without rehashing. Never shrinks.
  void reserve(size_t N) {
    size_t NewBuckets = 8;
    while (NewBuckets < N)
      NewBuckets *= 2;
    if (NewBuckets > Buckets.size())
      rehash(NewBuckets);
  }

  /// Invokes \p Fn(key, value&) for every mapping, in unspecified order.
  template <typename FnT> void forEach(FnT Fn) {
    for (Node *Head : Buckets)
      for (Node *N = Head; N; N = N->Next)
        Fn(N->Key, N->Value);
  }

  template <typename FnT> void forEach(FnT Fn) const {
    for (Node *Head : Buckets)
      for (Node *N = Head; N; N = N->Next)
        Fn(static_cast<const K &>(N->Key), static_cast<const V &>(N->Value));
  }

  size_t memoryBytes() const {
    return Buckets.capacity() * sizeof(Node *) + Count * sizeof(Node);
  }

  /// Cumulative chain nodes visited and rehashes (profiler surface).
  uint64_t probeCount() const { return ProbeNodes; }
  uint64_t rehashCount() const { return RehashCount; }

private:
  size_t bucketOf(const K &Key) const {
    return Hasher()(Key) & (Buckets.size() - 1);
  }

  V &insertNew(const K &Key, V Value) {
    if (Count + 1 > Buckets.size())
      rehash(Buckets.empty() ? 8 : Buckets.size() * 2);
    size_t B = bucketOf(Key);
    void *Mem = trackedAlloc(sizeof(Node));
    Node *N = new (Mem) Node{Key, std::move(Value), Buckets[B]};
    Buckets[B] = N;
    ++Count;
    return N->Value;
  }

  void freeNode(Node *N) {
    N->~Node();
    trackedFree(N, sizeof(Node));
  }

  void rehash(size_t NewBucketCount) {
    ++RehashCount;
    std::vector<Node *, TrackingAllocator<Node *>> Old = std::move(Buckets);
    Buckets.assign(NewBucketCount, nullptr);
    for (Node *Head : Old) {
      while (Head) {
        Node *Next = Head->Next;
        size_t B = bucketOf(Head->Key);
        Head->Next = Buckets[B];
        Buckets[B] = Head;
        Head = Next;
      }
    }
  }

  std::vector<Node *, TrackingAllocator<Node *>> Buckets;
  size_t Count = 0;
  /// Profiler counters; mutable so const lookups can account their probes.
  mutable uint64_t ProbeNodes = 0;
  uint64_t RehashCount = 0;
};

} // namespace ade

#endif // ADE_COLLECTIONS_HASHMAP_H
