//===- MemoryTracker.h - Collection heap accounting -------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global accounting of bytes held by collection implementations. The paper
/// evaluates maximum resident set size via /usr/bin/time; our stand-in is
/// the peak number of bytes held by collections, which dominate the heap in
/// the evaluated benchmarks (see DESIGN.md substitution 6). All containers
/// in src/collections allocate through \c TrackingAllocator or the
/// \c trackedAlloc helpers so the accounting is complete by construction.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_COLLECTIONS_MEMORYTRACKER_H
#define ADE_COLLECTIONS_MEMORYTRACKER_H

#include "support/ErrorHandling.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace ade {

/// Process-wide current/peak byte counters for collection storage.
/// Thread-safe: the serving runtime's worker engines allocate and free
/// collections concurrently. Counters are relaxed atomics — accounting
/// needs totals, not ordering — and the peak is maintained with a CAS
/// loop, so under concurrency it is the high-water mark of the counter
/// itself (exact), though a reader pairing currentBytes() with
/// peakBytes() sees two independent snapshots.
class MemoryTracker {
public:
  /// The global tracker all collections report to.
  static MemoryTracker &instance() {
    static MemoryTracker Tracker;
    return Tracker;
  }

  void allocated(size_t Bytes) {
    uint64_t Now =
        Current.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
    uint64_t Seen = Peak.load(std::memory_order_relaxed);
    while (Now > Seen &&
           !Peak.compare_exchange_weak(Seen, Now,
                                       std::memory_order_relaxed)) {
    }
  }

  void freed(size_t Bytes) {
    Current.fetch_sub(Bytes, std::memory_order_relaxed);
  }

  /// Bytes currently held by live collections.
  uint64_t currentBytes() const {
    return Current.load(std::memory_order_relaxed);
  }

  /// High-water mark since the last \c reset.
  uint64_t peakBytes() const {
    return Peak.load(std::memory_order_relaxed);
  }

  /// Clears the peak (and keeps tracking from the current level), used
  /// between benchmark configurations.
  void reset() {
    Peak.store(Current.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Current{0};
  std::atomic<uint64_t> Peak{0};
};

/// Allocates \p Bytes and records them with the global tracker.
inline void *trackedAlloc(size_t Bytes) {
  MemoryTracker::instance().allocated(Bytes);
  void *Ptr = std::malloc(Bytes);
  if (!Ptr && Bytes)
    reportFatalError("collection allocation failed: out of memory");
  return Ptr;
}

/// Frees memory from \c trackedAlloc. \p Bytes must match the allocation.
inline void trackedFree(void *Ptr, size_t Bytes) {
  MemoryTracker::instance().freed(Bytes);
  std::free(Ptr);
}

/// std::allocator-compatible allocator that reports to the tracker. Used to
/// back every vector inside the collection implementations.
template <typename T> struct TrackingAllocator {
  using value_type = T;

  TrackingAllocator() = default;
  template <typename U> TrackingAllocator(const TrackingAllocator<U> &) {}

  T *allocate(size_t N) {
    MemoryTracker::instance().allocated(N * sizeof(T));
    return static_cast<T *>(::operator new(N * sizeof(T)));
  }

  void deallocate(T *Ptr, size_t N) {
    MemoryTracker::instance().freed(N * sizeof(T));
    ::operator delete(Ptr);
  }

  bool operator==(const TrackingAllocator &) const { return true; }
};

} // namespace ade

#endif // ADE_COLLECTIONS_MEMORYTRACKER_H
