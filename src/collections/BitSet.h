//===- BitSet.h - Dynamically resizable bitset set --------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The BitSet of Table I (SIII-H): a set over a contiguous integer range
/// [0, k) stored as a contiguous array of bits. The paper implements this
/// with boost::dynamic_bitset; this is our stand-in with the same dynamic
/// resizing behavior, required because enumerations are constructed on the
/// fly. Storage is k bits where k is the largest key ever inserted.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_COLLECTIONS_BITSET_H
#define ADE_COLLECTIONS_BITSET_H

#include "collections/MemoryTracker.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace ade {

/// A dynamically growing bitset exposing set semantics over uint64_t keys.
class BitSet {
public:
  using key_type = uint64_t;

  BitSet() = default;

  /// Number of elements in the set. O(1): maintained incrementally.
  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  /// One past the largest key the set has capacity for (k in Table I).
  uint64_t universeSize() const { return Words.size() * 64; }

  /// Returns true if \p Key is in the set. O(1); keys beyond the current
  /// universe are absent.
  bool contains(uint64_t Key) const {
    ++Probes;
    uint64_t Word = Key >> 6;
    if (Word >= Words.size())
      return false;
    return (Words[Word] >> (Key & 63)) & 1;
  }

  /// Inserts \p Key, growing the universe if needed. Returns true if the
  /// key was newly inserted.
  bool insert(uint64_t Key) {
    ++Probes;
    uint64_t Word = Key >> 6;
    if (Word >= Words.size()) {
      // Organic universe growth counts as a storage reorganization (the
      // dense analogue of a rehash); reserve-driven growth does not, so
      // profile-guided pre-sizing shows up as strictly fewer rehashes.
      ++Growths;
      Words.resize(Word + 1, 0);
    }
    uint64_t Mask = 1ULL << (Key & 63);
    if (Words[Word] & Mask)
      return false;
    Words[Word] |= Mask;
    ++Count;
    return true;
  }

  /// Removes \p Key. Returns true if it was present. Does not shrink the
  /// universe (matches dynamic_bitset behavior).
  bool remove(uint64_t Key) {
    ++Probes;
    uint64_t Word = Key >> 6;
    if (Word >= Words.size())
      return false;
    uint64_t Mask = 1ULL << (Key & 63);
    if (!(Words[Word] & Mask))
      return false;
    Words[Word] &= ~Mask;
    --Count;
    return true;
  }

  /// Empties the set but keeps the universe capacity (matching standard
  /// container clear semantics), so reuse in a loop re-zeroes words
  /// instead of reallocating and re-growing.
  void clear() {
    std::fill(Words.begin(), Words.end(), 0);
    Count = 0;
  }

  /// Invokes \p Fn(key) for every member, in increasing key order.
  template <typename FnT> void forEach(FnT Fn) const {
    for (size_t W = 0, E = Words.size(); W != E; ++W) {
      uint64_t Bits = Words[W];
      while (Bits) {
        unsigned Tz = static_cast<unsigned>(__builtin_ctzll(Bits));
        Fn(static_cast<uint64_t>(W) * 64 + Tz);
        Bits &= Bits - 1;
      }
    }
  }

  /// Grows the universe so keys in [0, N) can be inserted without any
  /// further word-vector growth. Never shrinks.
  void reserve(uint64_t N) {
    uint64_t NeedWords = (N + 63) >> 6;
    if (NeedWords > Words.size())
      Words.resize(NeedWords, 0);
  }

  /// Set union: adds every member of \p Other. Word-wise OR; this is the
  /// operation where bitsets enjoy their largest advantage (Table III).
  /// Safe under self-aliasing: s.unionWith(s) is the identity.
  void unionWith(const BitSet &Other) {
    if (this == &Other)
      return;
    if (Other.Words.size() > Words.size())
      Words.resize(Other.Words.size(), 0);
    uint64_t NewCount = 0;
    for (size_t W = 0, E = Other.Words.size(); W != E; ++W)
      Words[W] |= Other.Words[W];
    for (uint64_t Word : Words)
      NewCount += static_cast<uint64_t>(__builtin_popcountll(Word));
    Count = NewCount;
  }

  /// Set intersection with \p Other, in place. Shrinks the word vector to
  /// the other side's length (capacity is retained, so \c memoryBytes and
  /// the MemoryTracker stay consistent). Safe under self-aliasing:
  /// s.intersectWith(s) is the identity.
  void intersectWith(const BitSet &Other) {
    if (this == &Other)
      return;
    if (Words.size() > Other.Words.size())
      Words.resize(Other.Words.size());
    uint64_t NewCount = 0;
    for (size_t W = 0, E = Words.size(); W != E; ++W) {
      Words[W] &= Other.Words[W];
      NewCount += static_cast<uint64_t>(__builtin_popcountll(Words[W]));
    }
    Count = NewCount;
  }

  /// Bytes of backing storage currently held.
  size_t memoryBytes() const { return Words.capacity() * sizeof(uint64_t); }

  /// Word accesses performed to locate a key (one per contains/insert/
  /// remove — the dense counterpart of a hash probe sequence).
  uint64_t probeCount() const { return Probes; }

  /// Organic universe growths triggered by inserts beyond the current
  /// capacity. Reserve-driven growth is deliberately excluded.
  uint64_t rehashCount() const { return Growths; }

  bool operator==(const BitSet &Other) const {
    if (Count != Other.Count)
      return false;
    size_t Common = std::min(Words.size(), Other.Words.size());
    for (size_t W = 0; W != Common; ++W)
      if (Words[W] != Other.Words[W])
        return false;
    // Differing tails must be all-zero. Equal popcounts would guarantee it
    // if Count were always in sync; verify instead of trusting it.
    const auto &Longer =
        Words.size() >= Other.Words.size() ? Words : Other.Words;
    for (size_t W = Common, E = Longer.size(); W != E; ++W)
      if (Longer[W] != 0)
        return false;
    return true;
  }

private:
  std::vector<uint64_t, TrackingAllocator<uint64_t>> Words;
  size_t Count = 0;
  /// Telemetry counters; mutable because contains() is logically const.
  mutable uint64_t Probes = 0;
  uint64_t Growths = 0;
};

} // namespace ade

#endif // ADE_COLLECTIONS_BITSET_H
