//===- Collections.h - Umbrella header for the collection library -*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella for every collection implementation of Table I,
/// the enumeration runtime, and memory accounting. Downstream users who
/// want a single include can use this; individual headers are preferred in
/// library code.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_COLLECTIONS_COLLECTIONS_H
#define ADE_COLLECTIONS_COLLECTIONS_H

#include "collections/BitMap.h"
#include "collections/BitSet.h"
#include "collections/Enumeration.h"
#include "collections/FlatSet.h"
#include "collections/HashMap.h"
#include "collections/HashSet.h"
#include "collections/MemoryTracker.h"
#include "collections/RoaringBitSet.h"
#include "collections/Sequence.h"
#include "collections/SwissMap.h"
#include "collections/SwissSet.h"

#endif // ADE_COLLECTIONS_COLLECTIONS_H
