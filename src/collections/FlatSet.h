//===- FlatSet.h - Sorted-array set -----------------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FlatSet of Table I: a sorted resizable array with O(log n) search,
/// O(n) insert/remove, n*bits(T) storage, fast ordered iteration and linear
/// merge-based union. The RQ4 case study selects it for sparse inner
/// points-to sets, where union is the hot operation.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_COLLECTIONS_FLATSET_H
#define ADE_COLLECTIONS_FLATSET_H

#include "collections/MemoryTracker.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace ade {

/// A set stored as a sorted contiguous array of keys.
template <typename K> class FlatSet {
public:
  using key_type = K;

  FlatSet() = default;

  size_t size() const { return Keys.size(); }
  bool empty() const { return Keys.empty(); }

  bool contains(const K &Key) const {
    auto It = lowerBound(Key);
    return It != Keys.end() && *It == Key;
  }

  /// Inserts \p Key keeping the array sorted; true if newly inserted.
  bool insert(const K &Key) {
    auto It = lowerBound(Key);
    if (It != Keys.end() && *It == Key)
      return false;
    if (Keys.size() == Keys.capacity())
      ++Reallocs;
    Keys.insert(It, Key);
    return true;
  }

  bool remove(const K &Key) {
    auto It = lowerBound(Key);
    if (It == Keys.end() || *It != Key)
      return false;
    Keys.erase(It);
    return true;
  }

  void clear() {
    Keys.clear();
    Keys.shrink_to_fit();
  }

  /// Pre-sizes the backing storage for \p N keys (no size change).
  void reserve(size_t N) { Keys.reserve(N); }

  /// Invokes \p Fn(key) in increasing order. Iteration over a flat set is
  /// a contiguous scan, its standout strength in Table III.
  template <typename FnT> void forEach(FnT Fn) const {
    for (const K &Key : Keys)
      Fn(Key);
  }

  /// Linear merge union: O(|this| + |other|). The merge allocates a fresh
  /// array, which counts as one storage reorganization.
  void unionWith(const FlatSet &Other) {
    if (Other.empty())
      return;
    std::vector<K, TrackingAllocator<K>> Merged;
    Merged.reserve(Keys.size() + Other.Keys.size());
    std::set_union(Keys.begin(), Keys.end(), Other.Keys.begin(),
                   Other.Keys.end(), std::back_inserter(Merged));
    Keys = std::move(Merged);
    ++Reallocs;
  }

  /// Linear merge intersection.
  void intersectWith(const FlatSet &Other) {
    std::vector<K, TrackingAllocator<K>> Merged;
    std::set_intersection(Keys.begin(), Keys.end(), Other.Keys.begin(),
                          Other.Keys.end(), std::back_inserter(Merged));
    Keys = std::move(Merged);
  }

  size_t memoryBytes() const { return Keys.capacity() * sizeof(K); }

  const K *begin() const { return Keys.data(); }
  const K *end() const { return Keys.data() + Keys.size(); }

  bool operator==(const FlatSet &Other) const { return Keys == Other.Keys; }

  /// Binary-search comparison steps performed to locate keys.
  uint64_t probeCount() const { return Probes; }

  /// Backing-array reallocations (growth during insert, merge unions):
  /// the flat set's analogue of a rehash. Reserve-driven growth is
  /// deliberately excluded.
  uint64_t rehashCount() const { return Reallocs; }

private:
  /// Hand-rolled binary search so the telemetry probe counter reflects
  /// the true number of comparison steps.
  typename std::vector<K, TrackingAllocator<K>>::const_iterator
  lowerBound(const K &Key) const {
    size_t Lo = 0, Hi = Keys.size();
    while (Lo < Hi) {
      ++Probes;
      size_t Mid = Lo + (Hi - Lo) / 2;
      if (Keys[Mid] < Key)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    return Keys.begin() + Lo;
  }

  std::vector<K, TrackingAllocator<K>> Keys;
  /// Telemetry counters; mutable because contains() is logically const.
  mutable uint64_t Probes = 0;
  uint64_t Reallocs = 0;
};

} // namespace ade

#endif // ADE_COLLECTIONS_FLATSET_H
