//===- HashTraits.h - Default hashers for collection keys -------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The default hash functor used by every hash-based collection in this
/// library. Routing all integral keys through the same splitmix64 mixer
/// keeps hash quality identical across HashSet/SwissSet/etc., so the
/// Table III comparisons measure table organization rather than hash choice.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_COLLECTIONS_HASHTRAITS_H
#define ADE_COLLECTIONS_HASHTRAITS_H

#include "support/Hashing.h"

#include <string>
#include <string_view>
#include <type_traits>

namespace ade {

template <typename K, typename Enable = void> struct DefaultHash;

template <typename K>
struct DefaultHash<K, std::enable_if_t<std::is_integral_v<K>>> {
  uint64_t operator()(K Key) const {
    return hashU64(static_cast<uint64_t>(Key));
  }
};

template <typename K>
struct DefaultHash<K, std::enable_if_t<std::is_enum_v<K>>> {
  uint64_t operator()(K Key) const {
    return hashU64(static_cast<uint64_t>(Key));
  }
};

template <> struct DefaultHash<std::string> {
  uint64_t operator()(std::string_view Key) const { return hashBytes(Key); }
};

template <> struct DefaultHash<std::string_view> {
  uint64_t operator()(std::string_view Key) const { return hashBytes(Key); }
};

template <typename K> struct DefaultHash<K *> {
  uint64_t operator()(const K *Key) const {
    return hashU64(reinterpret_cast<uintptr_t>(Key));
  }
};

template <> struct DefaultHash<double> {
  uint64_t operator()(double Key) const {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(Key));
    __builtin_memcpy(&Bits, &Key, sizeof(Bits));
    return hashU64(Bits);
  }
};

template <> struct DefaultHash<float> {
  uint64_t operator()(float Key) const {
    uint32_t Bits;
    __builtin_memcpy(&Bits, &Key, sizeof(Bits));
    return hashU64(Bits);
  }
};

} // namespace ade

#endif // ADE_COLLECTIONS_HASHTRAITS_H
