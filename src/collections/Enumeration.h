//===- Enumeration.h - Data enumeration mapping -----------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The enumeration runtime of SIII-B: Enum = (Enc, Dec) where
/// Enc = Map<K, idx> assigns each distinct key a contiguous identifier in
/// [0, N) and Dec = Seq<K> is the inverse. Identifiers are handed out in
/// first-encounter order and never removed, so Dec is append-only and
/// decode is an array index. These are the @enc/@dec/@add helpers the ADE
/// transformation calls.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_COLLECTIONS_ENUMERATION_H
#define ADE_COLLECTIONS_ENUMERATION_H

#include "collections/MemoryTracker.h"
#include "collections/SwissMap.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace ade {

/// A bidirectional mapping between keys of type \p K and contiguous
/// identifiers [0, size()).
template <typename K, typename Hasher = DefaultHash<K>> class Enumeration {
public:
  using key_type = K;
  using id_type = uint64_t;

  /// Number of enumerated keys (N); identifiers are exactly [0, N).
  size_t size() const { return Dec.size(); }
  bool empty() const { return Dec.empty(); }

  bool contains(const K &Key) const { return Enc.contains(Key); }

  /// @enc: translates \p Key to its identifier. The key must already be in
  /// the enumeration (behavior is undefined otherwise, per SIII-B).
  id_type encode(const K &Key) const {
    const id_type *Id = Enc.lookup(Key);
    assert(Id && "encode() of a key missing from the enumeration");
    return *Id;
  }

  /// @dec: translates \p Id back to its key. \p Id must be < size().
  const K &decode(id_type Id) const {
    assert(Id < Dec.size() && "decode() of an out-of-range identifier");
    return Dec[Id];
  }

  /// @add: ensures \p Key is enumerated and returns its identifier. Returns
  /// {id, true} when the key was newly added.
  std::pair<id_type, bool> add(const K &Key) {
    id_type Next = Dec.size();
    auto [Slot, Inserted] = encSlot(Key, Next);
    if (Inserted)
      Dec.push_back(Key);
    return {Slot, Inserted};
  }

  void clear() {
    Enc.clear();
    Dec.clear();
    Dec.shrink_to_fit();
  }

  size_t memoryBytes() const {
    return Enc.memoryBytes() + Dec.capacity() * sizeof(K);
  }

private:
  std::pair<id_type, bool> encSlot(const K &Key, id_type Next) {
    if (const id_type *Existing = Enc.lookup(Key))
      return {*Existing, false};
    Enc.insertOrAssign(Key, Next);
    return {Next, true};
  }

  SwissMap<K, id_type, Hasher> Enc;
  std::vector<K, TrackingAllocator<K>> Dec;
};

} // namespace ade

#endif // ADE_COLLECTIONS_ENUMERATION_H
