//===- BitMap.h - Dense array-backed map ------------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The BitMap of Table I (SIII-H): a map over a contiguous integer key
/// range [0, k) backed by a presence bitset plus a contiguous value array,
/// for O(1) read/write/insert/remove and k*(1+bits(V)) storage.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_COLLECTIONS_BITMAP_H
#define ADE_COLLECTIONS_BITMAP_H

#include "collections/BitSet.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace ade {

/// A dense map from uint64_t keys to values of type \p V, growing its key
/// universe on demand like \c BitSet.
template <typename V> class BitMap {
public:
  using key_type = uint64_t;
  using mapped_type = V;

  BitMap() = default;

  size_t size() const { return Present.size(); }
  bool empty() const { return Present.empty(); }

  bool contains(uint64_t Key) const { return Present.contains(Key); }

  /// Returns the value for \p Key; the key must be present.
  const V &at(uint64_t Key) const {
    assert(Present.contains(Key) && "BitMap::at on absent key");
    return Values[Key];
  }

  V &at(uint64_t Key) {
    assert(Present.contains(Key) && "BitMap::at on absent key");
    return Values[Key];
  }

  /// Returns a pointer to the value for \p Key, or null if absent.
  const V *lookup(uint64_t Key) const {
    return Present.contains(Key) ? &Values[Key] : nullptr;
  }

  V *lookup(uint64_t Key) {
    return Present.contains(Key) ? &Values[Key] : nullptr;
  }

  /// Inserts or overwrites the mapping Key -> Value. Returns true when the
  /// key was newly inserted.
  bool insertOrAssign(uint64_t Key, V Value) {
    bool Inserted = Present.insert(Key);
    if (Key >= Values.size())
      Values.resize(Key + 1);
    Values[Key] = std::move(Value);
    return Inserted;
  }

  /// Inserts Key -> Value only if absent. Returns true if inserted.
  bool tryInsert(uint64_t Key, V Value) {
    if (Present.contains(Key))
      return false;
    return insertOrAssign(Key, std::move(Value));
  }

  bool remove(uint64_t Key) {
    if (!Present.remove(Key))
      return false;
    Values[Key] = V();
    return true;
  }

  /// Empties the map but keeps capacity; stale values are unreachable
  /// behind the cleared presence bits and overwritten on insert.
  void clear() { Present.clear(); }

  /// Grows the key universe so keys in [0, N) insert without growth. The
  /// value array is sized eagerly (defaulted slots are unreachable until
  /// their presence bit is set).
  void reserve(uint64_t N) {
    Present.reserve(N);
    if (N > Values.size())
      Values.resize(N);
  }

  /// Invokes \p Fn(key, value&) for every mapping, in key order.
  template <typename FnT> void forEach(FnT Fn) {
    Present.forEach([&](uint64_t Key) { Fn(Key, Values[Key]); });
  }

  template <typename FnT> void forEach(FnT Fn) const {
    Present.forEach([&](uint64_t Key) { Fn(Key, Values[Key]); });
  }

  size_t memoryBytes() const {
    return Present.memoryBytes() + Values.capacity() * sizeof(V);
  }

  /// Key-location work and universe growths, delegated to the presence
  /// bitset (every map operation locates its key through it).
  uint64_t probeCount() const { return Present.probeCount(); }
  uint64_t rehashCount() const { return Present.rehashCount(); }

  /// One past the largest key the map has capacity for.
  uint64_t universeSize() const { return Present.universeSize(); }

private:
  BitSet Present;
  std::vector<V, TrackingAllocator<V>> Values;
};

} // namespace ade

#endif // ADE_COLLECTIONS_BITMAP_H
