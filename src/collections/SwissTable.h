//===- SwissTable.h - Open-addressing control-byte hash table --*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared engine behind SwissSet and SwissMap (Table I): a flat
/// open-addressing hash table with per-slot 1-byte control metadata probed
/// 16 bytes at a time, in the style of Abseil's "swiss tables" (our
/// stand-in for the paper's RQ5 Abseil comparison). The hash is split into
/// H1 (group selector) and H2 (7-bit control tag); groups are scanned with
/// branch-free SWAR byte matching so most probes touch a single cache line
/// of metadata before any key comparison.
///
/// Layout: capacity is a power of two and a multiple of the 16-slot group
/// width; probing visits whole groups with triangular increments, which
/// covers every group exactly once when the group count is a power of two.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_COLLECTIONS_SWISSTABLE_H
#define ADE_COLLECTIONS_SWISSTABLE_H

#include "collections/HashTraits.h"
#include "collections/MemoryTracker.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

namespace ade {
namespace detail {

/// Control byte values. Full slots hold the 7-bit H2 tag (0x00..0x7f);
/// empty and deleted sentinels have the high bit set so a single SWAR mask
/// distinguishes full from non-full.
enum : uint8_t { CtrlEmpty = 0x80, CtrlDeleted = 0xFE };

inline constexpr size_t GroupWidth = 16;

/// Broadcasts byte \p B into every lane of a 64-bit word.
inline uint64_t broadcastByte(uint8_t B) {
  return 0x0101010101010101ULL * B;
}

/// Returns a mask with the high bit of each byte set where the byte of
/// \p Word equals \p B (exact: the zero-detection trick has no false
/// positives after the XOR).
inline uint64_t matchByte(uint64_t Word, uint8_t B) {
  uint64_t X = Word ^ broadcastByte(B);
  return (X - 0x0101010101010101ULL) & ~X & 0x8080808080808080ULL;
}

/// Returns a mask with the high bit of each byte set where the byte has its
/// high bit set (empty or deleted control bytes).
inline uint64_t matchNonFull(uint64_t Word) {
  return Word & 0x8080808080808080ULL;
}

/// The table engine. \p SlotT is the stored element (key, or key/value
/// pair); \p KeyOf extracts the key from a slot; \p Hasher hashes keys.
template <typename SlotT, typename KeyT, typename KeyOf, typename Hasher>
class SwissTable {
public:
  SwissTable() = default;
  SwissTable(const SwissTable &Other) { *this = Other; }
  SwissTable(SwissTable &&Other) noexcept = default;

  SwissTable &operator=(const SwissTable &Other) {
    if (this == &Other)
      return *this;
    Ctrl = Other.Ctrl;
    Slots = Other.Slots;
    Count = Other.Count;
    GrowthLeft = Other.GrowthLeft;
    ProbeSteps = Other.ProbeSteps;
    RehashCount = Other.RehashCount;
    return *this;
  }

  SwissTable &operator=(SwissTable &&Other) noexcept = default;

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  size_t capacity() const { return Slots.size(); }

  static constexpr size_t npos = static_cast<size_t>(-1);

  /// Cumulative group probes across all lookups and inserts, including the
  /// re-insertion probes performed while rehashing (profiler surface).
  uint64_t probeSteps() const { return ProbeSteps; }
  /// Number of times the table grew and rehashed every element.
  uint64_t rehashes() const { return RehashCount; }

  /// Returns the slot index holding \p Key, or npos.
  size_t find(const KeyT &Key) const {
    if (Slots.empty())
      return npos;
    uint64_t Hash = Hasher()(Key);
    uint8_t H2 = hash2(Hash);
    size_t NumGroups = Slots.size() / GroupWidth;
    size_t Group = hash1(Hash) & (NumGroups - 1);
    for (size_t Step = 0;; ++Step) {
      ++ProbeSteps;
      size_t Base = Group * GroupWidth;
      for (unsigned Half = 0; Half != 2; ++Half) {
        uint64_t Word = loadWord(Base + Half * 8);
        uint64_t Matches = matchByte(Word, H2);
        while (Matches) {
          unsigned Lane =
              static_cast<unsigned>(__builtin_ctzll(Matches)) >> 3;
          size_t Idx = Base + Half * 8 + Lane;
          if (KeyOf()(Slots[Idx]) == Key)
            return Idx;
          Matches &= Matches - 1;
        }
      }
      if (groupHasEmpty(Base))
        return npos;
      assert(Step <= NumGroups && "swiss table probe loop overran");
      Group = (Group + Step + 1) & (NumGroups - 1);
    }
  }

  /// Finds \p Key or prepares a slot for it. Returns {index, inserted};
  /// when inserted, the caller must construct the slot at the index.
  std::pair<size_t, bool> findOrPrepareInsert(const KeyT &Key) {
    if (Slots.empty())
      growTo(2 * GroupWidth);
    uint64_t Hash = Hasher()(Key);
    uint8_t H2 = hash2(Hash);
    while (true) {
      size_t NumGroups = Slots.size() / GroupWidth;
      size_t Group = hash1(Hash) & (NumGroups - 1);
      size_t FirstDeleted = npos;
      for (size_t Step = 0;; ++Step) {
        ++ProbeSteps;
        size_t Base = Group * GroupWidth;
        for (unsigned Half = 0; Half != 2; ++Half) {
          uint64_t Word = loadWord(Base + Half * 8);
          uint64_t Matches = matchByte(Word, H2);
          while (Matches) {
            unsigned Lane =
                static_cast<unsigned>(__builtin_ctzll(Matches)) >> 3;
            size_t Idx = Base + Half * 8 + Lane;
            if (KeyOf()(Slots[Idx]) == Key)
              return {Idx, false};
            Matches &= Matches - 1;
          }
          if (FirstDeleted == npos) {
            uint64_t Deleted = matchByte(Word, CtrlDeleted);
            if (Deleted) {
              unsigned Lane =
                  static_cast<unsigned>(__builtin_ctzll(Deleted)) >> 3;
              FirstDeleted = Base + Half * 8 + Lane;
            }
          }
        }
        size_t EmptyIdx = firstEmptyInGroup(Base);
        if (EmptyIdx != npos) {
          // Key is absent. Prefer reclaiming a tombstone on the probe path.
          if (FirstDeleted != npos) {
            Ctrl[FirstDeleted] = H2;
            ++Count;
            return {FirstDeleted, true};
          }
          if (GrowthLeft == 0)
            break; // Rehash and retry.
          Ctrl[EmptyIdx] = H2;
          ++Count;
          --GrowthLeft;
          return {EmptyIdx, true};
        }
        if (Step > NumGroups)
          break; // Table is pathologically full of tombstones; rehash.
        Group = (Group + Step + 1) & (NumGroups - 1);
      }
      growTo(Slots.size() * 2);
    }
  }

  /// Removes \p Key; returns true if it was present. The slot is left
  /// default-constructed and its control byte tombstoned.
  bool erase(const KeyT &Key) {
    size_t Idx = find(Key);
    if (Idx == npos)
      return false;
    Ctrl[Idx] = CtrlDeleted;
    Slots[Idx] = SlotT();
    --Count;
    return true;
  }

  /// Empties the table but keeps its capacity, like the chained tables'
  /// clear: a cleared-and-refilled table must not regrow and rehash from
  /// scratch every cycle.
  void clear() {
    Ctrl.assign(Ctrl.size(), uint8_t(CtrlEmpty));
    Slots.assign(Slots.size(), SlotT());
    Count = 0;
    GrowthLeft = Slots.size() - Slots.size() / 8;
  }

  /// Pre-sizes the table so at least \p N elements fit without growing:
  /// the capacity is raised to the smallest power-of-two group multiple
  /// whose 87.5% load bound covers \p N. Never shrinks; a no-op when the
  /// current capacity already suffices.
  void reserve(size_t N) {
    size_t NewCapacity = Slots.empty() ? 2 * GroupWidth : Slots.size();
    while (NewCapacity - NewCapacity / 8 < N)
      NewCapacity *= 2;
    if (NewCapacity > Slots.size())
      growTo(NewCapacity);
  }

  SlotT &slot(size_t Idx) { return Slots[Idx]; }
  const SlotT &slot(size_t Idx) const { return Slots[Idx]; }

  /// Invokes \p Fn(slot&) for every full slot.
  template <typename FnT> void forEachSlot(FnT Fn) {
    for (size_t I = 0, E = Slots.size(); I != E; ++I)
      if (!(Ctrl[I] & 0x80))
        Fn(Slots[I]);
  }

  template <typename FnT> void forEachSlot(FnT Fn) const {
    for (size_t I = 0, E = Slots.size(); I != E; ++I)
      if (!(Ctrl[I] & 0x80))
        Fn(static_cast<const SlotT &>(Slots[I]));
  }

  size_t memoryBytes() const {
    return Ctrl.capacity() * sizeof(uint8_t) +
           Slots.capacity() * sizeof(SlotT);
  }

private:
  static uint64_t hash1(uint64_t Hash) { return Hash >> 7; }
  static uint8_t hash2(uint64_t Hash) {
    return static_cast<uint8_t>(Hash & 0x7f);
  }

  uint64_t loadWord(size_t ByteIdx) const {
    uint64_t Word;
    std::memcpy(&Word, Ctrl.data() + ByteIdx, sizeof(Word));
    return Word;
  }

  bool groupHasEmpty(size_t Base) const {
    return matchByte(loadWord(Base), CtrlEmpty) ||
           matchByte(loadWord(Base + 8), CtrlEmpty);
  }

  size_t firstEmptyInGroup(size_t Base) const {
    for (unsigned Half = 0; Half != 2; ++Half) {
      uint64_t Matches = matchByte(loadWord(Base + Half * 8), CtrlEmpty);
      if (Matches)
        return Base + Half * 8 +
               (static_cast<unsigned>(__builtin_ctzll(Matches)) >> 3);
    }
    return npos;
  }

  void growTo(size_t NewCapacity) {
    ++RehashCount;
    assert(NewCapacity % GroupWidth == 0 &&
           (NewCapacity & (NewCapacity - 1)) == 0 &&
           "capacity must be a power of two multiple of the group width");
    std::vector<uint8_t, TrackingAllocator<uint8_t>> OldCtrl =
        std::move(Ctrl);
    std::vector<SlotT, TrackingAllocator<SlotT>> OldSlots = std::move(Slots);
    Ctrl.assign(NewCapacity, CtrlEmpty);
    Slots.assign(NewCapacity, SlotT());
    Count = 0;
    GrowthLeft = NewCapacity - NewCapacity / 8; // 87.5% max load.
    for (size_t I = 0, E = OldSlots.size(); I != E; ++I) {
      if (OldCtrl[I] & 0x80)
        continue;
      auto [Idx, Inserted] = findOrPrepareInsert(KeyOf()(OldSlots[I]));
      assert(Inserted && "duplicate key during swiss table rehash");
      (void)Inserted;
      Slots[Idx] = std::move(OldSlots[I]);
    }
  }

  std::vector<uint8_t, TrackingAllocator<uint8_t>> Ctrl;
  std::vector<SlotT, TrackingAllocator<SlotT>> Slots;
  size_t Count = 0;
  size_t GrowthLeft = 0;
  /// Profiler counters; mutable so const lookups can account their probes.
  mutable uint64_t ProbeSteps = 0;
  uint64_t RehashCount = 0;
};

} // namespace detail
} // namespace ade

#endif // ADE_COLLECTIONS_SWISSTABLE_H
