//===- SwissMap.h - Open-addressing map -------------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SwissMap of Table I: a flat control-byte hash map (Abseil swiss
/// table stand-in).
///
//===----------------------------------------------------------------------===//

#ifndef ADE_COLLECTIONS_SWISSMAP_H
#define ADE_COLLECTIONS_SWISSMAP_H

#include "collections/SwissTable.h"

namespace ade {

/// A flat open-addressing hash map.
template <typename K, typename V, typename Hasher = DefaultHash<K>>
class SwissMap {
  struct Slot {
    K Key{};
    V Value{};
  };
  struct GetKey {
    const K &operator()(const Slot &S) const { return S.Key; }
  };
  using Table = detail::SwissTable<Slot, K, GetKey, Hasher>;

public:
  using key_type = K;
  using mapped_type = V;

  SwissMap() = default;

  size_t size() const { return Impl.size(); }
  bool empty() const { return Impl.empty(); }

  bool contains(const K &Key) const { return Impl.find(Key) != Table::npos; }

  /// Returns a pointer to the value mapped by \p Key, or null.
  V *lookup(const K &Key) {
    size_t Idx = Impl.find(Key);
    return Idx == Table::npos ? nullptr : &Impl.slot(Idx).Value;
  }

  const V *lookup(const K &Key) const {
    size_t Idx = Impl.find(Key);
    return Idx == Table::npos ? nullptr : &Impl.slot(Idx).Value;
  }

  /// Returns the value for \p Key; the key must be present.
  V &at(const K &Key) {
    V *Value = lookup(Key);
    assert(Value && "SwissMap::at on absent key");
    return *Value;
  }

  const V &at(const K &Key) const {
    const V *Value = lookup(Key);
    assert(Value && "SwissMap::at on absent key");
    return *Value;
  }

  /// Inserts or overwrites Key -> Value; true if newly inserted.
  bool insertOrAssign(const K &Key, V Value) {
    auto [Idx, Inserted] = Impl.findOrPrepareInsert(Key);
    Impl.slot(Idx).Key = Key;
    Impl.slot(Idx).Value = std::move(Value);
    return Inserted;
  }

  /// Inserts Key -> Value if absent; true if inserted.
  bool tryInsert(const K &Key, V Value) {
    auto [Idx, Inserted] = Impl.findOrPrepareInsert(Key);
    if (Inserted) {
      Impl.slot(Idx).Key = Key;
      Impl.slot(Idx).Value = std::move(Value);
    }
    return Inserted;
  }

  /// Returns the value for \p Key, default-constructing it if absent.
  V &getOrInsert(const K &Key) {
    auto [Idx, Inserted] = Impl.findOrPrepareInsert(Key);
    if (Inserted)
      Impl.slot(Idx).Key = Key;
    return Impl.slot(Idx).Value;
  }

  bool remove(const K &Key) { return Impl.erase(Key); }

  void clear() { Impl.clear(); }

  /// Pre-sizes the table for \p N mappings (see SwissTable::reserve).
  void reserve(size_t N) { Impl.reserve(N); }

  /// Invokes \p Fn(key, value&) for every mapping, in unspecified order.
  template <typename FnT> void forEach(FnT Fn) {
    Impl.forEachSlot([&](Slot &S) { Fn(S.Key, S.Value); });
  }

  template <typename FnT> void forEach(FnT Fn) const {
    Impl.forEachSlot([&](const Slot &S) { Fn(S.Key, S.Value); });
  }

  size_t memoryBytes() const { return Impl.memoryBytes(); }

  /// Cumulative group probes and rehashes (profiler surface).
  uint64_t probeCount() const { return Impl.probeSteps(); }
  uint64_t rehashCount() const { return Impl.rehashes(); }

private:
  Table Impl;
};

} // namespace ade

#endif // ADE_COLLECTIONS_SWISSMAP_H
