//===- HashSet.h - Chained hash table set -----------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The HashSet of Table I and the MEMOIR baseline implementation: a
/// node-based separately chained hash table in the mold of
/// std::unordered_set (one heap node per element, bucket array of node
/// pointers, max load factor 1). Implemented from scratch so that memory
/// accounting is exact and behavior is identical across platforms.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_COLLECTIONS_HASHSET_H
#define ADE_COLLECTIONS_HASHSET_H

#include "collections/HashTraits.h"
#include "collections/MemoryTracker.h"

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace ade {

/// A separately chained hash set.
template <typename K, typename Hasher = DefaultHash<K>> class HashSet {
  struct Node {
    K Key;
    Node *Next;
  };

public:
  using key_type = K;

  HashSet() = default;
  HashSet(const HashSet &Other) { *this = Other; }
  HashSet(HashSet &&Other) noexcept { *this = std::move(Other); }

  HashSet &operator=(const HashSet &Other) {
    if (this == &Other)
      return *this;
    clear();
    Other.forEach([&](const K &Key) { insert(Key); });
    return *this;
  }

  HashSet &operator=(HashSet &&Other) noexcept {
    if (this == &Other)
      return *this;
    clear();
    Buckets = std::move(Other.Buckets);
    Count = Other.Count;
    ProbeNodes = Other.ProbeNodes;
    RehashCount = Other.RehashCount;
    Other.Buckets.clear();
    Other.Count = 0;
    Other.ProbeNodes = 0;
    Other.RehashCount = 0;
    return *this;
  }

  ~HashSet() { clear(); }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  bool contains(const K &Key) const {
    if (Buckets.empty())
      return false;
    for (Node *N = Buckets[bucketOf(Key)]; N; N = N->Next) {
      ++ProbeNodes;
      if (N->Key == Key)
        return true;
    }
    return false;
  }

  /// Inserts \p Key; returns true if newly inserted.
  bool insert(const K &Key) {
    if (Count + 1 > Buckets.size())
      rehash(Buckets.empty() ? 8 : Buckets.size() * 2);
    size_t B = bucketOf(Key);
    for (Node *N = Buckets[B]; N; N = N->Next) {
      ++ProbeNodes;
      if (N->Key == Key)
        return false;
    }
    Buckets[B] = allocNode(Key, Buckets[B]);
    ++Count;
    return true;
  }

  bool remove(const K &Key) {
    if (Buckets.empty())
      return false;
    Node **Link = &Buckets[bucketOf(Key)];
    while (*Link) {
      ++ProbeNodes;
      if ((*Link)->Key == Key) {
        Node *Dead = *Link;
        *Link = Dead->Next;
        freeNode(Dead);
        --Count;
        return true;
      }
      Link = &(*Link)->Next;
    }
    return false;
  }

  void clear() {
    for (Node *Head : Buckets) {
      while (Head) {
        Node *Next = Head->Next;
        freeNode(Head);
        Head = Next;
      }
    }
    Buckets.clear();
    Buckets.shrink_to_fit();
    Count = 0;
  }

  /// Pre-sizes the bucket array so \p N insertions stay under the load
  /// bound without rehashing. Never shrinks.
  void reserve(size_t N) {
    size_t NewBuckets = 8;
    while (NewBuckets < N)
      NewBuckets *= 2;
    if (NewBuckets > Buckets.size())
      rehash(NewBuckets);
  }

  /// Invokes \p Fn(key) for every member, in unspecified order.
  template <typename FnT> void forEach(FnT Fn) const {
    for (Node *Head : Buckets)
      for (Node *N = Head; N; N = N->Next)
        Fn(N->Key);
  }

  /// Set union by per-element insertion (no fast path exists for chained
  /// tables; this is the Table III baseline for Union). Safe under
  /// self-aliasing: inserting while traversing Other == this could
  /// rehash under the traversal, and s ∪ s is the identity anyway.
  void unionWith(const HashSet &Other) {
    if (&Other == this)
      return;
    Other.forEach([&](const K &Key) { insert(Key); });
  }

  size_t memoryBytes() const {
    return Buckets.capacity() * sizeof(Node *) + Count * sizeof(Node);
  }

  /// Cumulative chain nodes visited and rehashes (profiler surface).
  uint64_t probeCount() const { return ProbeNodes; }
  uint64_t rehashCount() const { return RehashCount; }

private:
  size_t bucketOf(const K &Key) const {
    return Hasher()(Key) & (Buckets.size() - 1);
  }

  Node *allocNode(const K &Key, Node *Next) {
    void *Mem = trackedAlloc(sizeof(Node));
    return new (Mem) Node{Key, Next};
  }

  void freeNode(Node *N) {
    N->~Node();
    trackedFree(N, sizeof(Node));
  }

  void rehash(size_t NewBucketCount) {
    ++RehashCount;
    assert((NewBucketCount & (NewBucketCount - 1)) == 0 &&
           "bucket count must be a power of two");
    std::vector<Node *, TrackingAllocator<Node *>> Old = std::move(Buckets);
    Buckets.assign(NewBucketCount, nullptr);
    for (Node *Head : Old) {
      while (Head) {
        Node *Next = Head->Next;
        size_t B = bucketOf(Head->Key);
        Head->Next = Buckets[B];
        Buckets[B] = Head;
        Head = Next;
      }
    }
  }

  std::vector<Node *, TrackingAllocator<Node *>> Buckets;
  size_t Count = 0;
  /// Profiler counters; mutable so const lookups can account their probes.
  mutable uint64_t ProbeNodes = 0;
  uint64_t RehashCount = 0;
};

} // namespace ade

#endif // ADE_COLLECTIONS_HASHSET_H
