//===- Sequence.h - Resizable array sequence --------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Seq<T> of Table I: a resizable array with O(1) indexed read/write
/// and O(n) middle insert/remove, with tracked storage.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_COLLECTIONS_SEQUENCE_H
#define ADE_COLLECTIONS_SEQUENCE_H

#include "collections/MemoryTracker.h"

#include <cassert>
#include <vector>

namespace ade {

/// A tracked resizable array.
template <typename T> class Sequence {
public:
  using value_type = T;

  Sequence() = default;

  size_t size() const { return Items.size(); }
  bool empty() const { return Items.empty(); }

  const T &at(size_t Idx) const {
    assert(Idx < Items.size() && "Sequence::at out of range");
    return Items[Idx];
  }

  T &at(size_t Idx) {
    assert(Idx < Items.size() && "Sequence::at out of range");
    return Items[Idx];
  }

  void set(size_t Idx, T Value) { at(Idx) = std::move(Value); }

  void append(T Value) { Items.push_back(std::move(Value)); }

  /// Pre-sizes the backing storage for \p N elements (no size change).
  void reserve(size_t N) { Items.reserve(N); }

  /// Inserts \p Value before position \p Idx (Idx == size() appends).
  void insertAt(size_t Idx, T Value) {
    assert(Idx <= Items.size() && "Sequence::insertAt out of range");
    Items.insert(Items.begin() + Idx, std::move(Value));
  }

  void removeAt(size_t Idx) {
    assert(Idx < Items.size() && "Sequence::removeAt out of range");
    Items.erase(Items.begin() + Idx);
  }

  /// Removes and returns the last element.
  T popBack() {
    assert(!Items.empty() && "popBack on empty sequence");
    T Value = std::move(Items.back());
    Items.pop_back();
    return Value;
  }

  void clear() {
    Items.clear();
    Items.shrink_to_fit();
  }

  template <typename FnT> void forEach(FnT Fn) const {
    for (size_t I = 0, E = Items.size(); I != E; ++I)
      Fn(I, Items[I]);
  }

  size_t memoryBytes() const { return Items.capacity() * sizeof(T); }

  const T *begin() const { return Items.data(); }
  const T *end() const { return Items.data() + Items.size(); }

private:
  std::vector<T, TrackingAllocator<T>> Items;
};

} // namespace ade

#endif // ADE_COLLECTIONS_SEQUENCE_H
