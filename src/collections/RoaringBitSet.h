//===- RoaringBitSet.h - Compressed sparse bitset ---------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SparseBitSet of Table I (SIII-H): a Roaring-style compressed bitset
/// (stand-in for the Roaring library the paper links against). The 32-bit
/// key space is partitioned into 2^16-element chunks keyed by the high 16
/// bits; each chunk is stored in whichever of three container kinds suits
/// its density:
///
///   - Array: a sorted vector of 16-bit low keys (cardinality <= 4096),
///   - Bitmap: a 1024-word uncompressed bitset (cardinality > 4096),
///   - Run: run-length encoded intervals (produced by \c runOptimize).
///
/// Containers promote/demote automatically at the standard 4096-element
/// threshold. Mutating a run container first materializes it as an array
/// or bitmap.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_COLLECTIONS_ROARINGBITSET_H
#define ADE_COLLECTIONS_ROARINGBITSET_H

#include "collections/MemoryTracker.h"
#include "support/Casting.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace ade {
namespace roaring {

/// Cardinality boundary between array and bitmap containers.
inline constexpr size_t ArrayCutoff = 4096;

/// Base class for the three chunk container kinds.
class Container {
public:
  enum class Kind { Array, Bitmap, Run };

  explicit Container(Kind K) : TheKind(K) {}
  virtual ~Container() = default;

  Kind kind() const { return TheKind; }

  virtual size_t cardinality() const = 0;
  virtual bool contains(uint16_t Low) const = 0;
  virtual size_t memoryBytes() const = 0;

  /// Invokes \p Fn(low) for every member in increasing order.
  virtual void forEach(const std::function<void(uint16_t)> &Fn) const = 0;

private:
  const Kind TheKind;
};

/// Sorted array of 16-bit keys, for sparse chunks.
class ArrayContainer : public Container {
public:
  ArrayContainer() : Container(Kind::Array) {}

  static bool classof(const Container *C) {
    return C->kind() == Kind::Array;
  }

  size_t cardinality() const override { return Keys.size(); }
  bool contains(uint16_t Low) const override;
  size_t memoryBytes() const override {
    return sizeof(*this) + Keys.capacity() * sizeof(uint16_t);
  }
  void forEach(const std::function<void(uint16_t)> &Fn) const override;

  /// Inserts \p Low; true if newly inserted. May exceed ArrayCutoff; the
  /// owning set promotes afterwards.
  bool insert(uint16_t Low);
  bool remove(uint16_t Low);

  std::vector<uint16_t, TrackingAllocator<uint16_t>> Keys;
};

/// Uncompressed 65536-bit bitmap, for dense chunks.
class BitmapContainer : public Container {
public:
  BitmapContainer();

  static bool classof(const Container *C) {
    return C->kind() == Kind::Bitmap;
  }

  size_t cardinality() const override { return Count; }
  bool contains(uint16_t Low) const override {
    return (Words[Low >> 6] >> (Low & 63)) & 1;
  }
  size_t memoryBytes() const override {
    return sizeof(*this) + Words.capacity() * sizeof(uint64_t);
  }
  void forEach(const std::function<void(uint16_t)> &Fn) const override;

  bool insert(uint16_t Low);
  bool remove(uint16_t Low);

  std::vector<uint64_t, TrackingAllocator<uint64_t>> Words;
  size_t Count = 0;
};

/// Run-length encoded container: sorted, disjoint, non-adjacent runs.
class RunContainer : public Container {
public:
  struct Run {
    uint16_t Start;
    uint16_t Length; // Run covers [Start, Start + Length], inclusive.
  };

  RunContainer() : Container(Kind::Run) {}

  static bool classof(const Container *C) { return C->kind() == Kind::Run; }

  size_t cardinality() const override;
  bool contains(uint16_t Low) const override;
  size_t memoryBytes() const override {
    return sizeof(*this) + Runs.capacity() * sizeof(Run);
  }
  void forEach(const std::function<void(uint16_t)> &Fn) const override;

  std::vector<Run, TrackingAllocator<Run>> Runs;
};

} // namespace roaring

/// A compressed bitset over 32-bit keys with Roaring-style hybrid storage.
class RoaringBitSet {
public:
  using key_type = uint64_t;

  RoaringBitSet() = default;
  RoaringBitSet(RoaringBitSet &&) noexcept = default;
  RoaringBitSet &operator=(RoaringBitSet &&) noexcept = default;
  RoaringBitSet(const RoaringBitSet &Other) { *this = Other; }
  RoaringBitSet &operator=(const RoaringBitSet &Other);

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  bool contains(uint64_t Key) const;

  /// Inserts \p Key (< 2^32); true if newly inserted.
  bool insert(uint64_t Key);

  bool remove(uint64_t Key);

  void clear() {
    Chunks.clear();
    Count = 0;
  }

  /// Invokes \p Fn(key) for every member in increasing order.
  void forEach(const std::function<void(uint64_t)> &Fn) const;

  /// Adds every member of \p Other, chunk-wise.
  void unionWith(const RoaringBitSet &Other);

  /// Converts containers to run-length encoding where that is smaller,
  /// mirroring roaring's runOptimize(). Returns the number of containers
  /// converted.
  size_t runOptimize();

  size_t memoryBytes() const;

  /// Number of chunk containers of each kind, for tests and diagnostics.
  struct ContainerCounts {
    size_t Array = 0;
    size_t Bitmap = 0;
    size_t Run = 0;
  };
  ContainerCounts containerCounts() const;

  /// Storage accesses performed to locate keys: chunk binary-search steps
  /// plus the container-level lookup per operation.
  uint64_t probeCount() const { return Probes; }

  /// Container reorganizations: array<->bitmap promotions/demotions and
  /// run materializations — the compressed bitset's analogue of a rehash.
  uint64_t rehashCount() const { return Reorgs; }

private:
  struct Chunk {
    uint16_t High;
    std::unique_ptr<roaring::Container> Body;
  };

  /// Returns the chunk index for \p High, or the insertion point, via
  /// binary search.
  size_t lowerBoundChunk(uint16_t High) const;

  /// Replaces a mutable run container with an equivalent array or bitmap.
  static std::unique_ptr<roaring::Container>
  materialize(const roaring::Container &C);

  /// Promotes/demotes \p Body across the 4096 threshold if needed,
  /// counting any conversion as a container reorganization.
  void normalize(std::unique_ptr<roaring::Container> &Body);

  std::vector<Chunk> Chunks; // Sorted by High.
  size_t Count = 0;
  /// Telemetry counters; mutable because contains() is logically const.
  mutable uint64_t Probes = 0;
  uint64_t Reorgs = 0;
};

} // namespace ade

#endif // ADE_COLLECTIONS_ROARINGBITSET_H
