//===- SwissSet.h - Open-addressing set -------------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SwissSet of Table I: a flat control-byte hash set (Abseil swiss
/// table stand-in). O(1) insert/remove, O(n*(1+bits(T))) storage.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_COLLECTIONS_SWISSSET_H
#define ADE_COLLECTIONS_SWISSSET_H

#include "collections/SwissTable.h"

namespace ade {

/// A flat open-addressing hash set.
template <typename K, typename Hasher = DefaultHash<K>> class SwissSet {
  struct Identity {
    const K &operator()(const K &Slot) const { return Slot; }
  };
  using Table = detail::SwissTable<K, K, Identity, Hasher>;

public:
  using key_type = K;

  SwissSet() = default;

  size_t size() const { return Impl.size(); }
  bool empty() const { return Impl.empty(); }

  bool contains(const K &Key) const { return Impl.find(Key) != Table::npos; }

  /// Inserts \p Key; true if newly inserted.
  bool insert(const K &Key) {
    auto [Idx, Inserted] = Impl.findOrPrepareInsert(Key);
    if (Inserted)
      Impl.slot(Idx) = Key;
    return Inserted;
  }

  bool remove(const K &Key) { return Impl.erase(Key); }

  void clear() { Impl.clear(); }

  /// Pre-sizes the table for \p N elements (see SwissTable::reserve).
  void reserve(size_t N) { Impl.reserve(N); }

  /// Invokes \p Fn(key) for every member, in unspecified order.
  template <typename FnT> void forEach(FnT Fn) const {
    Impl.forEachSlot([&](const K &Slot) { Fn(Slot); });
  }

  /// Safe under self-aliasing: inserting while traversing Other == this
  /// could rehash under the traversal, and s ∪ s is the identity anyway.
  void unionWith(const SwissSet &Other) {
    if (&Other == this)
      return;
    Other.forEach([&](const K &Key) { insert(Key); });
  }

  size_t memoryBytes() const { return Impl.memoryBytes(); }

  /// Cumulative group probes and rehashes (profiler surface).
  uint64_t probeCount() const { return Impl.probeSteps(); }
  uint64_t rehashCount() const { return Impl.rehashes(); }

private:
  Table Impl;
};

} // namespace ade

#endif // ADE_COLLECTIONS_SWISSSET_H
