//===- MergeNetwork.h - Structured dataflow merges --------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured-control-flow equivalent of SSA phi webs: which values
/// flow into which region arguments and structured-op results (loop
/// carried values, if results, selects). Shared by the ADE analysis (to
/// follow uses of decoded values through merges, as MEMOIR does through
/// phis) and the transform (to type identifier-carrying values and place
/// boundary translations, the Listing 3 -> Listing 4 rewrite).
///
//===----------------------------------------------------------------------===//

#ifndef ADE_CORE_MERGENETWORK_H
#define ADE_CORE_MERGENETWORK_H

#include "ir/IR.h"

#include <map>
#include <vector>

namespace ade {
namespace core {

/// A merge target (region argument or structured-op result) together with
/// the operand slots feeding it.
struct MergeSlot {
  ir::Instruction *User;
  unsigned OpIdx;

  bool operator<(const MergeSlot &O) const {
    return User != O.User ? User < O.User : OpIdx < O.OpIdx;
  }
};

/// Whole-module view of structured merges.
class MergeNetwork {
public:
  explicit MergeNetwork(const ir::Module &M) {
    for (const auto &F : M.functions())
      if (!F->isExternal())
        scan(F->body());
  }

  /// The merge targets fed by operand (\p User, \p OpIdx); empty for
  /// non-merge slots. A loop yield slot feeds both the loop result and
  /// the carried block argument.
  const std::vector<ir::Value *> &targetsOf(ir::Instruction *User,
                                            unsigned OpIdx) const {
    auto It = SlotTargets.find({User, OpIdx});
    return It == SlotTargets.end() ? Empty : It->second;
  }

  /// The source slots feeding merge target \p Target; empty if \p Target
  /// is not a merge target.
  const std::vector<MergeSlot> &sourcesOf(const ir::Value *Target) const {
    auto It = TargetSources.find(Target);
    return It == TargetSources.end() ? EmptySlots : It->second;
  }

  /// All merge targets.
  const std::vector<ir::Value *> &targets() const { return Targets; }

private:
  void link(ir::Value *Target, ir::Instruction *User, unsigned OpIdx) {
    auto [It, Inserted] = TargetSources.try_emplace(Target);
    if (Inserted)
      Targets.push_back(Target);
    It->second.push_back({User, OpIdx});
    SlotTargets[{User, OpIdx}].push_back(Target);
  }

  static ir::Instruction *yieldOf(const ir::Region *R) {
    if (R->empty())
      return nullptr;
    ir::Instruction *Last = R->back();
    return Last->op() == ir::Opcode::Yield ? Last : nullptr;
  }

  void scan(const ir::Region &R) {
    using ir::Opcode;
    for (ir::Instruction *I : R) {
      switch (I->op()) {
      case Opcode::Select:
        link(I->result(), I, 1);
        link(I->result(), I, 2);
        break;
      case Opcode::If: {
        for (unsigned Reg = 0; Reg != 2; ++Reg)
          if (ir::Instruction *Y = yieldOf(I->region(Reg)))
            for (unsigned J = 0; J != I->numResults(); ++J)
              link(I->result(J), Y, J);
        break;
      }
      case Opcode::ForEach:
      case Opcode::ForRange:
      case Opcode::DoWhile: {
        unsigned FirstInit = I->op() == Opcode::ForEach    ? 1
                             : I->op() == Opcode::ForRange ? 2
                                                           : 0;
        unsigned YieldSkip = I->op() == Opcode::DoWhile ? 1 : 0;
        const ir::Region *Body = I->region(0);
        unsigned Carried = I->numOperands() - FirstInit;
        unsigned FirstArg = Body->numArgs() - Carried;
        ir::Instruction *Y = yieldOf(Body);
        for (unsigned J = 0; J != Carried; ++J) {
          ir::BlockArg *Arg = Body->arg(FirstArg + J);
          link(Arg, I, FirstInit + J);
          // The loop result merges the init too (zero-trip loops return
          // the initial values), which also keeps the carried argument
          // and the result in one dataflow web.
          link(I->result(J), I, FirstInit + J);
          if (Y) {
            link(Arg, Y, YieldSkip + J);
            link(I->result(J), Y, YieldSkip + J);
          }
        }
        break;
      }
      default:
        break;
      }
      for (unsigned Idx = 0; Idx != I->numRegions(); ++Idx)
        scan(*I->region(Idx));
    }
  }

  std::map<std::pair<ir::Instruction *, unsigned>,
           std::vector<ir::Value *>>
      SlotTargets;
  std::map<const ir::Value *, std::vector<MergeSlot>> TargetSources;
  std::vector<ir::Value *> Targets;
  std::vector<ir::Value *> Empty;
  std::vector<MergeSlot> EmptySlots;
};

} // namespace core
} // namespace ade

#endif // ADE_CORE_MERGENETWORK_H
