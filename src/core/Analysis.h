//===- Analysis.h - ADE collection analysis ---------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyses behind automatic data enumeration:
///
///  - discovery of *collection roots* — distinct collection objects (stack
///    allocations, parameters, globals, and nested levels of collections of
///    collections, SIII-G) — together with every IR value referring to them;
///  - the uses-to-patch sets ToEnc/ToDec/ToAdd of Algorithm 1 (associative
///    keys) and Algorithm 4 (propagated elements, SIII-E);
///  - escape detection (SIII-F): collections passed to external callees or
///    used in unrecognized ways are never transformed;
///  - the aliasing edges Algorithm 5 unifies: references of one root,
///    call-argument-to-parameter bindings, returned collections, global
///    load/stores, and nesting membership.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_CORE_ANALYSIS_H
#define ADE_CORE_ANALYSIS_H

#include "ir/IR.h"

#include <map>
#include <memory>
#include <set>
#include <vector>

namespace ade {
namespace core {

/// One operand slot, ordered so it can live in std::set.
struct UseRef {
  ir::Instruction *User = nullptr;
  unsigned OpIdx = 0;

  bool operator<(const UseRef &O) const {
    return User != O.User ? User < O.User : OpIdx < O.OpIdx;
  }
  bool operator==(const UseRef &O) const {
    return User == O.User && OpIdx == O.OpIdx;
  }
};

using UseSet = std::set<UseRef>;

/// A distinct collection object (or nesting level) in the module.
struct RootInfo {
  enum class Kind { Alloc, Param, Global, Nested };

  Kind TheKind;
  /// The defining anchor: New instruction (Alloc), argument (Param),
  /// module global (Global). Null for Nested.
  ir::Value *Anchor = nullptr;
  const ir::GlobalVariable *Global = nullptr;
  /// For Nested: the enclosing root (this root is the element level of the
  /// parent collection).
  RootInfo *Parent = nullptr;
  /// The child nesting level, when the element type is a collection.
  RootInfo *Child = nullptr;
  /// The collection type of this level (before transformation).
  ir::Type *CollTy = nullptr;
  /// Every IR value referring to this collection object.
  std::vector<ir::Value *> Refs;
  /// True when some use makes transformation unsafe (SIII-F).
  bool Escapes = false;
  /// Merged user directive across contributing allocation sites.
  ir::Directive Dir;
  bool HasDirective = false;

  // Algorithm 1 (key mode, associative collections only).
  UseSet ToEnc, ToDec, ToAdd;
  /// Values bound to this root's keys (for-each key arguments); they turn
  /// into identifiers when the root is key-enumerated.
  std::vector<ir::Value *> ProducedKeys;

  // Algorithm 4 (element/propagator mode; any collection whose element
  // type is scalar).
  UseSet PropToDec, PropToAdd;
  /// Values produced from this root's elements (read/pop results, for-each
  /// value bindings); identifiers when the root is a propagator.
  std::vector<ir::Value *> ProducedElems;

  /// Key type for CanShare (associative collections), else null.
  ir::Type *keyType() const;
  /// Scalar element type for CanPropagate (map values / seq elements),
  /// else null.
  ir::Type *elemType() const;
  bool isAssociative() const { return CollTy->isAssociative(); }

  /// Printable description for diagnostics and tests.
  std::string describe() const;
};

/// Whole-module analysis result.
class ModuleAnalysis {
public:
  /// Analyzes \p M. The module is not modified. With \p UnifyCallEdges
  /// false, call arguments are not unified with parameters and returned
  /// collections are not bound to call results — callers keep their own
  /// classes (used by the cloning pre-pass to detect disagreeing call
  /// sites).
  explicit ModuleAnalysis(ir::Module &M, bool UnifyCallEdges = true);
  ~ModuleAnalysis();
  ModuleAnalysis(const ModuleAnalysis &) = delete;
  ModuleAnalysis &operator=(const ModuleAnalysis &) = delete;

  const std::vector<std::unique_ptr<RootInfo>> &roots() const {
    return Roots;
  }

  /// The root a value refers to, or null when the value is not a tracked
  /// collection reference.
  RootInfo *rootOf(ir::Value *V) const;

  /// Alias classes: sets of roots that refer (or may refer) to the same
  /// underlying collection object and therefore must be transformed
  /// together (the unification of Algorithm 5, including parameter
  /// bindings, returns, globals and nesting levels).
  const std::vector<std::vector<RootInfo *>> &aliasClasses() const {
    return AliasClasses;
  }

  /// The alias class index of \p Root.
  size_t aliasClassOf(RootInfo *Root) const;

  /// The structured-merge dataflow network of the module (phi-web
  /// equivalent), shared with the transform.
  const class MergeNetwork &merges() const { return *Merges; }

  ir::Module &module() { return M; }

private:
  struct Builder;
  ir::Module &M;
  std::unique_ptr<class MergeNetwork> Merges;
  std::vector<std::unique_ptr<RootInfo>> Roots;
  std::map<ir::Value *, RootInfo *> ValueToRoot;
  std::vector<std::vector<RootInfo *>> AliasClasses;
  std::map<RootInfo *, size_t> ClassIndex;
};

} // namespace core
} // namespace ade

#endif // ADE_CORE_ANALYSIS_H
