//===- Transform.cpp - The enumeration transformation ---------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Transform.h"

#include "analysis/AbsInt.h"
#include "core/MergeNetwork.h"
#include "core/RemarkEmitter.h"
#include "interp/Profiler.h"
#include "ir/IRBuilder.h"
#include "stats/Statistic.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string_view>

using namespace ade;
using namespace ade::core;
using namespace ade::ir;

ADE_STATISTIC(NumEnumerationsCreated, "ade-transform",
              "Enumeration globals materialized");
ADE_STATISTIC(NumTranslationsEliminated, "ade-transform",
              "Translations eliminated by RTE");
ADE_STATISTIC(NumEncInserted, "ade-transform", "enc translations inserted");
ADE_STATISTIC(NumDecInserted, "ade-transform", "dec translations inserted");
ADE_STATISTIC(NumAddInserted, "ade-transform",
              "enum.add translations inserted");
ADE_STATISTIC(NumUnionsExpanded, "ade-transform",
              "Cross-enumeration unions expanded");

namespace {

class TransformDriver {
public:
  TransformDriver(ModuleAnalysis &MA, const EnumerationPlan &Plan,
                  const TransformConfig &Cfg)
      : MA(MA), M(MA.module()), Plan(Plan), Cfg(Cfg) {}

  TransformResult run() {
    for (const Candidate &C : Plan.Candidates) {
      States.push_back({});
      CandState &CS = States.back();
      CS.C = &C;
      CS.EnumGlobal = M.createGlobal(
          M.uniqueName("__ade_enum"),
          M.types().enumTy(C.KeyTy));
      ++Result.EnumerationsCreated;
      computeTaint(CS);
    }
    rewriteTypes();
    expandUnions();
    for (CandState &CS : States)
      patchDecs(CS);
    for (CandState &CS : States)
      patchEncAdds(CS);
    fixReturnTypes(M);
    return Result;
  }

  static void fixReturnTypes(Module &M);

private:
  struct CandState {
    const Candidate *C = nullptr;
    GlobalVariable *EnumGlobal = nullptr;
    /// Values that carry identifiers of this enumeration after the
    /// transform.
    std::set<Value *> Tainted;
    /// Merge source slots whose raw value must be added to the
    /// enumeration so the merge target can carry identifiers (the hoisted
    /// boundary translation of Listing 4).
    std::set<MergeSlot> ConversionSlots;
    std::map<Function *, Value *> EnumValueCache;
  };

  const Candidate *keyCandidateOf(const RootInfo *R) const {
    for (const Candidate &C : Plan.Candidates)
      if (C.isKeyMember(R))
        return &C;
    return nullptr;
  }

  const Candidate *elemCandidateOf(const RootInfo *R) const {
    for (const Candidate &C : Plan.Candidates)
      if (C.isElemMember(R))
        return &C;
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Taint: values that will carry identifiers of this enumeration
  //===--------------------------------------------------------------------===//

  void computeTaint(CandState &CS) {
    const MergeNetwork &Net = MA.merges();
    std::vector<Value *> Worklist;
    auto Taint = [&](Value *V) {
      if (CS.Tainted.count(V))
        return;
      CS.Tainted.insert(V);
      Claimed.try_emplace(V, &CS);
      Worklist.push_back(V);
    };
    for (const RootInfo *R : CS.C->KeyMembers)
      for (Value *V : R->ProducedKeys)
        Taint(V);
    for (const RootInfo *R : CS.C->ElemMembers)
      for (Value *V : R->ProducedElems)
        Taint(V);
    if (!Cfg.EnableRTE)
      return; // Seeds only: the naive indirection of Listing 2.
    // Least fixpoint: a merge target fed by any identifier carries
    // identifiers; its remaining raw sources receive boundary adds.
    while (!Worklist.empty()) {
      Value *V = Worklist.back();
      Worklist.pop_back();
      for (const Use &U : V->uses()) {
        for (Value *Target : Net.targetsOf(U.User, U.OpIdx)) {
          if (Target->type() != CS.C->KeyTy)
            continue;
          auto It = Claimed.find(Target);
          if (It != Claimed.end() && It->second != &CS)
            continue; // Another enumeration owns this merge.
          Taint(Target);
        }
      }
    }
    // Record the raw sources of identifier-carrying merges.
    for (Value *T : CS.Tainted) {
      for (const MergeSlot &S : Net.sourcesOf(T)) {
        Value *Src = S.User->operand(S.OpIdx);
        if (!CS.Tainted.count(Src))
          CS.ConversionSlots.insert(S);
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Type rewriting
  //===--------------------------------------------------------------------===//

  Type *newTypeFor(const RootInfo *R) {
    TypeContext &TC = M.types();
    Type *Idx = TC.indexTy();
    bool KeyEnum = keyCandidateOf(R) != nullptr;
    bool ElemEnum = elemCandidateOf(R) != nullptr;
    if (const auto *Set = dyn_cast<SetType>(R->CollTy))
      return TC.setTy(KeyEnum ? Idx : Set->key(), Set->selection());
    if (const auto *Map = dyn_cast<MapType>(R->CollTy)) {
      Type *Val = R->Child      ? newTypeFor(R->Child)
                  : ElemEnum    ? Idx
                                : Map->value();
      return TC.mapTy(KeyEnum ? Idx : Map->key(), Val, Map->selection());
    }
    if (const auto *Seq = dyn_cast<SeqType>(R->CollTy)) {
      Type *Elem = R->Child   ? newTypeFor(R->Child)
                   : ElemEnum ? Idx
                              : Seq->element();
      return TC.seqTy(Elem, Seq->selection());
    }
    ade_unreachable("unexpected root collection type");
  }

  void rewriteTypes() {
    for (const auto &RootPtr : MA.roots()) {
      RootInfo *R = RootPtr.get();
      Type *NewTy = newTypeFor(R);
      if (NewTy == R->CollTy)
        continue;
      for (Value *Ref : R->Refs)
        Ref->setType(NewTy);
      if (R->TheKind == RootInfo::Kind::Global)
        const_cast<GlobalVariable *>(R->Global)->Ty = NewTy;
    }
    Type *Idx = M.types().indexTy();
    for (CandState &CS : States)
      for (Value *T : CS.Tainted)
        T->setType(Idx);
  }

  //===--------------------------------------------------------------------===//
  // Enumeration value materialization
  //===--------------------------------------------------------------------===//

  Value *enumValue(CandState &CS, Function *F) {
    auto It = CS.EnumValueCache.find(F);
    if (It != CS.EnumValueCache.end())
      return It->second;
    IRBuilder B(M, &F->body());
    assert(!F->body().empty() && "function body cannot be empty");
    B.setInsertionPointBefore(F->body().inst(0));
    Value *V = B.globalGet(CS.EnumGlobal);
    CS.EnumValueCache[F] = V;
    return V;
  }

  CandState *stateOf(const Candidate *C) {
    for (CandState &CS : States)
      if (CS.C == C)
        return &CS;
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Union expansion across enumerations
  //===--------------------------------------------------------------------===//

  void expandUnions() {
    std::vector<Instruction *> Unions;
    for (const auto &F : M.functions())
      if (!F->isExternal())
        collectUnions(F->body(), Unions);
    for (Instruction *U : Unions) {
      RootInfo *DstRoot = MA.rootOf(U->operand(0));
      RootInfo *SrcRoot = MA.rootOf(U->operand(1));
      const Candidate *DstC = DstRoot ? keyCandidateOf(DstRoot) : nullptr;
      const Candidate *SrcC = SrcRoot ? keyCandidateOf(SrcRoot) : nullptr;
      if (DstC == SrcC)
        continue; // Same enumeration (or neither): direct union is valid.
      Function *F = U->parentFunction();
      Value *Dst = U->operand(0);
      Value *Src = U->operand(1);
      Value *DstEnum =
          DstC ? enumValue(*stateOf(DstC), F) : nullptr;
      Value *SrcEnum =
          SrcC ? enumValue(*stateOf(SrcC), F) : nullptr;
      if (RemarkEmitter *RE = Cfg.Remarks)
        RE->passed("transform", "union-expanded")
            .at(U)
            .parent(DstC ? DstC->RemarkId : 0)
            .parent(SrcC ? SrcC->RemarkId : 0)
            .arg("reason", "operands belong to distinct enumerations; "
                           "rewritten as an element-wise translate-and-"
                           "insert loop");
      IRBuilder B(M, U->parent());
      B.setInsertionPointBefore(U);
      B.forEach(Src, {},
                [&](IRBuilder &B2, std::vector<Value *> Args) {
                  Value *K = Args[0];
                  Value *Orig = SrcC ? B2.dec(SrcEnum, K) : K;
                  Value *Id = DstC ? B2.enumAdd(DstEnum, Orig) : Orig;
                  B2.insert(Dst, Id);
                  return std::vector<Value *>{};
                });
      U->eraseFromParent();
      ++Result.UnionsExpanded;
    }
  }

  void collectUnions(const Region &R, std::vector<Instruction *> &Out) {
    for (Instruction *I : R) {
      if (I->op() == Opcode::Union)
        Out.push_back(I);
      for (unsigned Idx = 0; Idx != I->numRegions(); ++Idx)
        collectUnions(*I->region(Idx), Out);
    }
  }

  //===--------------------------------------------------------------------===//
  // Decode patching (uses of identifier-carrying values)
  //===--------------------------------------------------------------------===//

  bool isKeyMemberAccess(const CandState &CS, Instruction *I,
                         unsigned OpIdx) {
    if (OpIdx != 1)
      return false;
    switch (I->op()) {
    case Opcode::Read:
    case Opcode::Write:
    case Opcode::Has:
    case Opcode::Remove:
    case Opcode::Insert:
      break;
    default:
      return false;
    }
    RootInfo *Base = MA.rootOf(I->operand(0));
    return Base && keyCandidateOf(Base) == CS.C;
  }

  bool isElemMemberStore(const CandState &CS, Instruction *I,
                         unsigned OpIdx) {
    bool ElemPos = (I->op() == Opcode::Write && OpIdx == 2) ||
                   (I->op() == Opcode::Append && OpIdx == 1);
    if (!ElemPos)
      return false;
    RootInfo *Base = MA.rootOf(I->operand(0));
    return Base && elemCandidateOf(Base) == CS.C;
  }

  /// A use whose target in the structured merge network carries an
  /// identifier already (no translation needed).
  bool isMergeFlowIntoTainted(const CandState &CS, Instruction *I,
                              unsigned OpIdx) {
    for (Value *Target : MA.merges().targetsOf(I, OpIdx))
      if (CS.Tainted.count(Target))
        return true;
    return false;
  }

  void patchDecs(CandState &CS) {
    // Snapshot: patching mutates use lists.
    std::vector<std::pair<Value *, Use>> Work;
    for (Value *T : CS.Tainted)
      for (const Use &U : T->uses())
        Work.push_back({T, U});
    for (auto &[T, U] : Work) {
      Instruction *I = U.User;
      unsigned OpIdx = U.OpIdx;
      if (Cfg.EnableRTE) {
        const char *Rule = nullptr;
        if (isKeyMemberAccess(CS, I, OpIdx) ||
            isElemMemberStore(CS, I, OpIdx))
          Rule = "identifier used at a member access: op(dec(e,x)) -> "
                 "op(x)";
        else if ((I->op() == Opcode::CmpEq || I->op() == Opcode::CmpNe) &&
                 CS.Tainted.count(I->operand(1 - OpIdx)))
          Rule = "comparison of identifiers: eq(dec(e,x), dec(e,y)) -> "
                 "eq(x, y)";
        if (Rule) {
          ++Result.TranslationsSkipped;
          if (RemarkEmitter *RE = Cfg.Remarks)
            RE->passed("rte", "eliminated")
                .at(I)
                .parent(CS.C->RemarkId)
                .arg("translation", "dec")
                .arg("rule", Rule);
          continue;
        }
      }
      // Identifier flowing into a merge that itself carries identifiers
      // needs no translation (always checked: with RTE off no merge is
      // tainted, so every such use decodes).
      if (isMergeFlowIntoTainted(CS, I, OpIdx))
        continue;
      // Skip operands that are collection bases (cannot happen for scalar
      // tainted values) and enum operands of our own translations.
      IRBuilder B(M, I->parent());
      B.setInsertionPointBefore(I);
      Value *EV = enumValue(CS, I->parentFunction());
      Value *Orig = B.dec(EV, T);
      I->setOperand(OpIdx, Orig);
      ++Result.DecInserted;
    }
  }

  //===--------------------------------------------------------------------===//
  // Encode/add patching (key and element positions)
  //===--------------------------------------------------------------------===//

  void patchEncAdds(CandState &CS) {
    auto PatchSet = [&](const UseSet &Uses, bool IsAdd) {
      for (const UseRef &U : Uses) {
        Instruction *I = U.User;
        Value *Cur = I->operand(U.OpIdx);
        if (Cfg.EnableRTE && CS.Tainted.count(Cur)) {
          ++Result.TranslationsSkipped;
          if (RemarkEmitter *RE = Cfg.Remarks)
            RE->passed("rte", "eliminated")
                .at(I)
                .parent(CS.C->RemarkId)
                .arg("translation", IsAdd ? "add" : "enc")
                .arg("rule", "operand already carries an identifier of "
                             "this enumeration");
          continue;
        }
        // Skip values already idx-typed from another enumeration only if
        // they were decoded above (they are no longer tainted here).
        IRBuilder B(M, I->parent());
        B.setInsertionPointBefore(I);
        Value *EV = enumValue(CS, I->parentFunction());
        Value *Id = IsAdd ? B.enumAdd(EV, Cur) : B.enc(EV, Cur);
        I->setOperand(U.OpIdx, Id);
        if (IsAdd)
          ++Result.AddInserted;
        else
          ++Result.EncInserted;
      }
    };
    for (const RootInfo *R : CS.C->KeyMembers) {
      PatchSet(R->ToEnc, /*IsAdd=*/false);
      PatchSet(R->ToAdd, /*IsAdd=*/true);
    }
    for (const RootInfo *R : CS.C->ElemMembers)
      PatchSet(R->PropToAdd, /*IsAdd=*/true);
    // Boundary conversions: raw values entering identifier-carrying
    // merges are added to the enumeration once, outside the hot path.
    UseSet Conversions;
    for (const MergeSlot &S : CS.ConversionSlots)
      Conversions.insert({S.User, S.OpIdx});
    PatchSet(Conversions, /*IsAdd=*/true);
  }

  ModuleAnalysis &MA;
  Module &M;
  const EnumerationPlan &Plan;
  TransformConfig Cfg;
  TransformResult Result;
  std::vector<CandState> States;
  std::map<Value *, CandState *> Claimed;
};

void TransformDriver::fixReturnTypes(Module &M) {
  for (const auto &F : M.functions()) {
    if (F->isExternal() || F->returnType()->isVoid())
      continue;
    // All rets agree post-transform; take the function-body terminator.
    const Region &Body = F->body();
    if (!Body.empty() && Body.back()->op() == Opcode::Ret &&
        Body.back()->numOperands())
      F->setReturnType(Body.back()->operand(0)->type());
  }
}

} // namespace

TransformResult ade::core::applyEnumeration(ModuleAnalysis &MA,
                                            const EnumerationPlan &Plan,
                                            const TransformConfig &Config) {
  TransformResult Result = TransformDriver(MA, Plan, Config).run();
  NumEnumerationsCreated += Result.EnumerationsCreated;
  NumTranslationsEliminated += Result.TranslationsSkipped;
  NumEncInserted += Result.EncInserted;
  NumDecInserted += Result.DecInserted;
  NumAddInserted += Result.AddInserted;
  NumUnionsExpanded += Result.UnionsExpanded;
  return Result;
}

ADE_STATISTIC(NumSelectedArray, "ade-selection", "Levels selected as Array");
ADE_STATISTIC(NumSelectedHashSet, "ade-selection",
              "Levels selected as HashSet");
ADE_STATISTIC(NumSelectedFlatSet, "ade-selection",
              "Levels selected as FlatSet");
ADE_STATISTIC(NumSelectedSwissSet, "ade-selection",
              "Levels selected as SwissSet");
ADE_STATISTIC(NumSelectedBitSet, "ade-selection", "Levels selected as BitSet");
ADE_STATISTIC(NumSelectedSparseBitSet, "ade-selection",
              "Levels selected as SparseBitSet");
ADE_STATISTIC(NumSelectedHashMap, "ade-selection",
              "Levels selected as HashMap");
ADE_STATISTIC(NumSelectedSwissMap, "ade-selection",
              "Levels selected as SwissMap");
ADE_STATISTIC(NumSelectedBitMap, "ade-selection", "Levels selected as BitMap");
ADE_STATISTIC(NumProfileOverrides, "ade-selection",
              "Selections changed by measured profile data");
ADE_STATISTIC(NumReserveHints, "ade-selection",
              "Capacity pre-sizing hints inserted from profiled peaks");
ADE_STATISTIC(NumStaticDense, "ade-selection",
              "Dense selections proven by abstract interpretation");
ADE_STATISTIC(NumStaticReserveHints, "ade-selection",
              "Capacity pre-sizing hints proven by abstract interpretation");

/// Counts one explicit Table-I implementation decision.
static void countSelectionDecision(Selection S) {
  switch (S) {
  case Selection::Empty:
    break;
  case Selection::Array:
    ++NumSelectedArray;
    break;
  case Selection::HashSet:
    ++NumSelectedHashSet;
    break;
  case Selection::FlatSet:
    ++NumSelectedFlatSet;
    break;
  case Selection::SwissSet:
    ++NumSelectedSwissSet;
    break;
  case Selection::BitSet:
    ++NumSelectedBitSet;
    break;
  case Selection::SparseBitSet:
    ++NumSelectedSparseBitSet;
    break;
  case Selection::HashMap:
    ++NumSelectedHashMap;
    break;
  case Selection::SwissMap:
    ++NumSelectedSwissMap;
    break;
  case Selection::BitMap:
    ++NumSelectedBitMap;
    break;
  }
}

void ade::core::applySelection(ModuleAnalysis &MA,
                               const EnumerationPlan &Plan,
                               const SelectionConfig &Config) {
  Module &M = MA.module();
  TypeContext &TC = M.types();
  const interp::ProfileData *Profile = Config.Profile;

  // Match each alias class to the lifetime record(s) of its allocation
  // sites or global label. Profile-guided decisions are resolved per
  // class — exactly like merged directives — so aliased roots (caller
  // argument, callee parameter) keep agreeing types. When several sites
  // of one class matched, the busiest record decides.
  std::vector<const interp::ProfileData::SiteProfile *> ClassRec(
      MA.aliasClasses().size(), nullptr);
  std::vector<std::string> ClassOrigin(MA.aliasClasses().size());
  if (Profile) {
    for (size_t CI = 0, E = MA.aliasClasses().size(); CI != E; ++CI) {
      for (RootInfo *R : MA.aliasClasses()[CI]) {
        const interp::ProfileData::SiteProfile *Rec = nullptr;
        std::string Origin;
        if (R->TheKind == RootInfo::Kind::Alloc && R->Anchor) {
          if (auto *Res = dyn_cast<InstResult>(R->Anchor)) {
            const Instruction *NewI = Res->parent();
            const Function *F = NewI->parentFunction();
            std::string_view Fn = F ? std::string_view(F->name())
                                    : std::string_view();
            Rec = Profile->allocSite(Fn, NewI->loc());
            if (Rec)
              Origin = std::string(Fn) + ":" +
                       std::to_string(NewI->loc().Line) + ":" +
                       std::to_string(NewI->loc().Col);
          }
        } else if (R->TheKind == RootInfo::Kind::Global && R->Global) {
          Origin = "@" + R->Global->Name;
          Rec = Profile->labeledSite(Origin);
        }
        if (Rec && (!ClassRec[CI] || Rec->Ops > ClassRec[CI]->Ops)) {
          ClassRec[CI] = Rec;
          ClassOrigin[CI] = Origin;
        }
      }
    }
  }
  auto RecFor =
      [&](const RootInfo *R) -> const interp::ProfileData::SiteProfile * {
    if (!Profile)
      return nullptr;
    return ClassRec[MA.aliasClassOf(const_cast<RootInfo *>(R))];
  };

  // The identifier universe of each candidate: the largest measured peak
  // among its key members (the enumeration grows to the union of all
  // member keys).
  std::map<const Candidate *, uint64_t> UniverseOf;
  if (Profile)
    for (const Candidate &C : Plan.Candidates) {
      uint64_t Universe = 0;
      for (RootInfo *R : C.KeyMembers)
        if (const auto *Rec = RecFor(R))
          Universe = std::max(Universe, Rec->PeakElements);
      UniverseOf[&C] = Universe;
    }

  /// Universe size below which a dense bitset is always cheap enough that
  /// sparsity does not matter.
  constexpr uint64_t SparseUniverseMin = 1024;

  // The "selection:select" remark of each root, so the pre-sizing pass
  // below can chain its reserve decisions to the selection they refine.
  RemarkEmitter *RE = Config.Remarks;
  std::map<const RootInfo *, uint64_t> SelectRemarkOf;

  // Selection for one root level based on directives, enumeration status,
  // configuration, and (when present) measured behavior.
  auto SelectionFor = [&](const RootInfo *R, Type *CurTy) -> Selection {
    const Candidate *Cand = nullptr;
    for (const Candidate &C : Plan.Candidates)
      if (C.isKeyMember(R))
        Cand = &C;
    bool KeyEnumerated = Cand != nullptr;
    const interp::ProfileData::SiteProfile *Rec = RecFor(R);

    Selection FromDirective =
        R->HasDirective ? R->Dir.Select : Selection::Empty;
    // Specialized implementations require enumerated (idx) keys.
    bool DirectiveApplies =
        FromDirective != Selection::Empty &&
        (!selectionRequiresEnumeration(FromDirective) || KeyEnumerated);

    // The static choice: what selection decides without a profile.
    Selection Static = Selection::Empty;
    std::string Reason = "kind default";
    if (DirectiveApplies) {
      Static = FromDirective;
      Reason = "select directive";
    } else if (KeyEnumerated) {
      Static = isa<SetType>(CurTy) ? Config.EnumeratedSet
                                   : Config.EnumeratedMap;
      Reason = "enumerated default";
    }

    // Profile-guided overrides. A directive always wins over the profile.
    Selection Final = Static;
    if (Rec && !DirectiveApplies && Rec->Ops != 0) {
      if (KeyEnumerated && isa<SetType>(CurTy)) {
        // Dense vs sparse identifier population: a large universe used
        // thinly wastes dense bitset words and scan time; a well-filled
        // one favors the dense bitset's locality.
        uint64_t Universe = UniverseOf[Cand];
        bool Sparse = Universe >= SparseUniverseMin &&
                      Rec->PeakElements * 8 < Universe;
        Final = Sparse ? Selection::SparseBitSet : Selection::BitSet;
        Reason = std::string("profiled ") + (Sparse ? "sparse" : "dense") +
                 " (peak " + std::to_string(Rec->PeakElements) +
                 " of universe " + std::to_string(Universe) + ")";
      } else if (!KeyEnumerated && Static == Selection::Empty &&
                 !R->Escapes &&
                 (Rec->Rehashes > 0 || Rec->Probes > 2 * Rec->Ops)) {
        // Probe-heavy chained-hash workload: move to the flat SIMD
        // tables; the pre-sizing hints below then remove the measured
        // growth-rehash chains entirely.
        if (isa<SetType>(CurTy))
          Final = Selection::SwissSet;
        else if (isa<MapType>(CurTy))
          Final = Selection::SwissMap;
        if (Final != Static)
          Reason = "profiled probe-heavy (" + std::to_string(Rec->Probes) +
                   " probes, " + std::to_string(Rec->Rehashes) +
                   " rehashes over " + std::to_string(Rec->Ops) + " ops)";
      }
    }
    if (Final != Static)
      ++NumProfileOverrides;

    // Statically proven density. With no measured record, a cover proof
    // from the abstract interpreter can make the dense-vs-sparse call:
    // a class whose key set provably contains every other key member of
    // its candidate holds the full identifier universe, so the dense
    // bit-vector representation wastes nothing — no profile needed.
    const analysis::AbsIntSelectionFacts::ClassFacts *AF =
        Config.AbsInt ? Config.AbsInt->factsFor(
                            MA.aliasClassOf(const_cast<RootInfo *>(R)))
                      : nullptr;
    bool ProvenDense = false;
    if (AF && KeyEnumerated && !DirectiveApplies &&
        (!Rec || Rec->Ops == 0) &&
        (isa<SetType>(CurTy) || isa<MapType>(CurTy))) {
      size_t Self = MA.aliasClassOf(const_cast<RootInfo *>(R));
      std::set<size_t> Others;
      for (RootInfo *KM : Cand->KeyMembers) {
        size_t MC = MA.aliasClassOf(KM);
        if (MC != Self)
          Others.insert(MC);
      }
      ProvenDense = !Others.empty();
      for (size_t MC : Others)
        if (std::find(AF->Covers.begin(), AF->Covers.end(), MC) ==
            AF->Covers.end())
          ProvenDense = false;
      if (ProvenDense) {
        Final = isa<SetType>(CurTy) ? Selection::BitSet : Selection::BitMap;
        Reason = "proven dense (every key of the other " +
                 std::to_string(Others.size()) +
                 " key member class" + (Others.size() == 1 ? "" : "es") +
                 " provably enters this collection)";
        ++NumStaticDense;
      }
    }

    if (RE) {
      // A probe-heavy table that would move to the flat SIMD tables but
      // escapes: record what blocked the upgrade.
      if (Rec && !DirectiveApplies && Rec->Ops != 0 && !KeyEnumerated &&
          Static == Selection::Empty && R->Escapes &&
          (Rec->Rehashes > 0 || Rec->Probes > 2 * Rec->Ops))
        RE->missed("selection", "upgrade-blocked")
            .atRoot(*R)
            .arg("probes", Rec->Probes)
            .arg("rehashes", Rec->Rehashes)
            .arg("ops", Rec->Ops)
            .arg("reason", "collection escapes to unanalyzable code; its "
                           "representation cannot change");

      auto SB = (Final != Selection::Empty
                     ? RE->passed("selection", "select")
                     : RE->analysis("selection", "select"))
                    .atRoot(*R)
                    .parent(Plan.provenanceOf(R));
      if (ProvenDense)
        SB.parent(AF->RemarkId).arg("provenDense", true);
      if (Profile) {
        const std::string &Origin =
            ClassOrigin[MA.aliasClassOf(const_cast<RootInfo *>(R))];
        if (!Origin.empty())
          SB.arg("origin", Origin);
      }
      SB.arg("static", selectionName(Static))
          .arg("final", selectionName(Final))
          .arg("fromDirective", DirectiveApplies)
          .arg("keyEnumerated", KeyEnumerated)
          .arg("profiled", Rec != nullptr);
      if (Rec)
        SB.arg("ops", Rec->Ops)
            .arg("peakElements", Rec->PeakElements)
            .arg("probes", Rec->Probes)
            .arg("rehashes", Rec->Rehashes);
      SB.arg("reason", Reason);
      SelectRemarkOf[R] = SB.id();
    }
    return Final;
  };

  // Rebuild each root's type bottom-up with selections applied. The
  // current (post-transform) type of a nested level is derived from the
  // parent's type, because nested levels may have no direct references.
  std::function<Type *(const RootInfo *, Type *)> Rebuild =
      [&](const RootInfo *R, Type *CurTy) -> Type * {
    Selection Sel = SelectionFor(R, CurTy);
    countSelectionDecision(Sel);
    if (const auto *Set = dyn_cast<SetType>(CurTy))
      return TC.setTy(Set->key(),
                      Sel == Selection::Empty ? Set->selection() : Sel);
    if (const auto *Map = dyn_cast<MapType>(CurTy)) {
      Type *Val =
          R->Child ? Rebuild(R->Child, Map->value()) : Map->value();
      return TC.mapTy(Map->key(), Val,
                      Sel == Selection::Empty ? Map->selection() : Sel);
    }
    if (const auto *Seq = dyn_cast<SeqType>(CurTy)) {
      Type *Elem =
          R->Child ? Rebuild(R->Child, Seq->element()) : Seq->element();
      return TC.seqTy(Elem, Seq->selection());
    }
    ade_unreachable("unexpected collection type during selection");
  };

  for (const auto &RootPtr : MA.roots()) {
    const RootInfo *R = RootPtr.get();
    if (R->Parent)
      continue; // Handled from the top level down.
    Type *CurTy = !R->Refs.empty() ? R->Refs.front()->type()
                  : R->TheKind == RootInfo::Kind::Global
                      ? R->Global->Ty // Post-transform type.
                      : R->CollTy;
    Type *NewTy = Rebuild(R, CurTy);
    const RootInfo *Level = R;
    Type *LevelTy = NewTy;
    while (Level) {
      for (Value *Ref : Level->Refs)
        Ref->setType(LevelTy);
      if (Level->TheKind == RootInfo::Kind::Global)
        const_cast<GlobalVariable *>(Level->Global)->Ty = LevelTy;
      if (!Level->Child)
        break;
      if (const auto *Map = dyn_cast<MapType>(LevelTy))
        LevelTy = Map->value();
      else if (const auto *Seq = dyn_cast<SeqType>(LevelTy))
        LevelTy = Seq->element();
      Level = Level->Child;
    }
  }

  // Capacity pre-sizing: allocation sites whose profiled peak is known
  // get a reserve hint right after the `new`, so the next run builds the
  // table at final size instead of replaying the growth-rehash chain.
  // Matched per site (not per class): each site hints its own peak.
  std::set<const RootInfo *> ProfileDecided;
  if (Profile) {
    IRBuilder B(M);
    for (const auto &RootPtr : MA.roots()) {
      const RootInfo *R = RootPtr.get();
      if (R->TheKind != RootInfo::Kind::Alloc || !R->Anchor)
        continue;
      auto *Res = dyn_cast<InstResult>(R->Anchor);
      if (!Res)
        continue;
      Instruction *NewI = Res->parent();
      const Function *F = NewI->parentFunction();
      const interp::ProfileData::SiteProfile *Rec = Profile->allocSite(
          F ? std::string_view(F->name()) : std::string_view(),
          NewI->loc());
      if (!Rec)
        continue;
      ProfileDecided.insert(R);
      auto SelIt = SelectRemarkOf.find(R);
      uint64_t SelId = SelIt == SelectRemarkOf.end() ? 0 : SelIt->second;
      if (Rec->PeakElements < Config.MinReserve) {
        if (RE && Rec->PeakElements > 0)
          RE->missed("selection", "reserve-skipped")
              .at(NewI)
              .parent(SelId)
              .arg("root", R->describe())
              .arg("peak", Rec->PeakElements)
              .arg("threshold", Config.MinReserve)
              .arg("reason", "profiled peak below the reserve threshold; "
                             "a tiny table never rehashes enough to pay "
                             "for pre-sizing");
        continue;
      }
      B.setInsertionPointAfter(NewI);
      B.reserve(Res, B.constU64(Rec->PeakElements));
      ++NumReserveHints;
      if (RE)
        RE->passed("selection", "reserve-hinted")
            .at(NewI)
            .parent(SelId)
            .arg("root", R->describe())
            .arg("peak", Rec->PeakElements);
    }
  }

  // Statically proven pre-sizing: allocation sites whose class has a
  // finite proven occupancy bound get the same reserve hint with no
  // measured run at all. The profile, when it matched a site, wins (it
  // observed the actual peak; the static bound only caps it). Bounds
  // beyond MaxStaticReserve are not hinted: a proof that large says
  // little about the real population, and a bad hint wastes memory.
  if (Config.AbsInt) {
    constexpr uint64_t MaxStaticReserve = 1ull << 20;
    IRBuilder B(M);
    for (const auto &RootPtr : MA.roots()) {
      const RootInfo *R = RootPtr.get();
      if (R->TheKind != RootInfo::Kind::Alloc || !R->Anchor ||
          ProfileDecided.count(R))
        continue;
      auto *Res = dyn_cast<InstResult>(R->Anchor);
      if (!Res)
        continue;
      const analysis::AbsIntSelectionFacts::ClassFacts *AF =
          Config.AbsInt->factsFor(
              MA.aliasClassOf(const_cast<RootInfo *>(R)));
      if (!AF || !AF->Ever.isFinite())
        continue;
      uint64_t Peak = AF->Ever.Hi;
      if (Peak < Config.MinReserve || Peak > MaxStaticReserve)
        continue;
      Instruction *NewI = Res->parent();
      auto SelIt = SelectRemarkOf.find(R);
      B.setInsertionPointAfter(NewI);
      B.reserve(Res, B.constU64(Peak));
      ++NumReserveHints;
      ++NumStaticReserveHints;
      if (RE)
        RE->passed("selection", "reserve-hinted")
            .at(NewI)
            .parent(SelIt == SelectRemarkOf.end() ? 0 : SelIt->second)
            .parent(AF->RemarkId)
            .arg("root", R->describe())
            .arg("peak", Peak)
            .arg("static", true);
    }
  }

  TransformDriver::fixReturnTypes(M);
}

std::vector<SelectionDecision>
ade::core::selectionDecisions(const remarks::RemarkStream &S) {
  std::vector<SelectionDecision> Rows;
  std::map<uint64_t, size_t> RowById;
  for (const remarks::Remark &R : S.remarks()) {
    if (R.Pass != "selection")
      continue;
    auto Str = [&](const char *K) {
      const remarks::Arg *A = R.arg(K);
      return A ? A->Str : std::string();
    };
    auto U64 = [&](const char *K) -> uint64_t {
      const remarks::Arg *A = R.arg(K);
      return A ? A->UInt : 0;
    };
    auto Flag = [&](const char *K) {
      const remarks::Arg *A = R.arg(K);
      return A && A->Flag;
    };
    if (R.Name == "select") {
      SelectionDecision D;
      D.Root = Str("root");
      D.Origin = Str("origin");
      selectionFromName(Str("static"), D.Static);
      selectionFromName(Str("final"), D.Final);
      D.FromDirective = Flag("fromDirective");
      D.KeyEnumerated = Flag("keyEnumerated");
      D.Profiled = Flag("profiled");
      D.Ops = U64("ops");
      D.PeakElements = U64("peakElements");
      D.Probes = U64("probes");
      D.Rehashes = U64("rehashes");
      D.Reason = Str("reason");
      RowById[R.Id] = Rows.size();
      Rows.push_back(std::move(D));
    } else if (R.Name == "reserve-hinted") {
      for (uint64_t P : R.Parents) {
        auto It = RowById.find(P);
        if (It != RowById.end())
          Rows[It->second].ReserveHint = U64("peak");
      }
    }
  }
  return Rows;
}
