//===- Pipeline.h - ADE pass pipeline ---------------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end ADE pipeline (see DESIGN.md): analysis -> planning ->
/// enumeration transform -> collection selection -> verification, with the
/// RQ3 ablation knobs and the RQ5 implementation defaults.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_CORE_PIPELINE_H
#define ADE_CORE_PIPELINE_H

#include "core/Plan.h"
#include "core/Transform.h"
#include "support/Timer.h"

namespace ade {
namespace core {

/// Full configuration of one ADE run.
struct PipelineConfig {
  /// RQ3 ablation knobs.
  bool EnableRTE = true;
  bool EnableSharing = true;
  bool EnablePropagation = true;
  /// SIII-F cloning of callees whose callers disagree on
  /// transformability.
  bool EnableCloning = true;
  /// Interprocedural abstract interpretation (analysis/AbsInt.h) between
  /// planning and transformation: proven occupancy bounds and cover
  /// facts are recorded as "absint:occupancy" remarks and feed the
  /// selection pass, which can then prove candidates dense and pre-size
  /// allocations with no profile at all.
  bool EnableAbsInt = true;
  /// Implementation choices for enumerated collections (SIII-H).
  SelectionConfig Selection;
  /// Measured data from a prior run (`adec --profile-use`): weights the
  /// planner's benefit heuristic and drives profile-guided selection and
  /// capacity pre-sizing. Forwarded into the planner and selection
  /// configs; null runs the static heuristics.
  const interp::ProfileData *Profile = nullptr;
  /// Verify the module after transformation (aborts on failure).
  bool Verify = true;
  /// When non-null (`adec --remarks`), every pass records its decisions
  /// as optimization remarks with provenance chains; `--selection-report`
  /// and `ade-remarks` are views over this stream. Forwarded into every
  /// pass config; with tracing active, per-phase remark counts are also
  /// emitted as Chrome-trace counter events (decision density).
  RemarkEmitter *Remarks = nullptr;
};

/// Outcome summary of one ADE run.
struct PipelineResult {
  EnumerationPlan Plan;
  TransformResult Transform;
  unsigned FunctionsCloned = 0;
  /// Wall-clock seconds per pass in execution order (adec --time-report).
  TimerGroup Timing;
};

/// Runs automatic data enumeration on \p M in place.
PipelineResult runADE(ir::Module &M, const PipelineConfig &Config = {});

/// The post-transform self-audit runADE performs when \c Verify is on:
/// re-analyzes the transformed module and checks enumeration consistency
/// and escape soundness (see src/analysis). Prints the diagnostics and
/// aborts on any error — a failure here means the emitted plan was wrong,
/// never that the input program was.
void runSelfAudit(ir::Module &M);

} // namespace core
} // namespace ade

#endif // ADE_CORE_PIPELINE_H
