//===- Plan.h - Candidate selection for enumeration -------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides *what* to enumerate: applies the redundancy analysis of
/// Algorithm 2 and the benefit heuristic (SIII-C), groups collections into
/// sharing candidates with Algorithm 3 (SIII-D) including propagators
/// (SIII-E), and honors the user directives of SIII-I. The output plan is
/// consumed by the transform.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_CORE_PLAN_H
#define ADE_CORE_PLAN_H

#include "core/Analysis.h"

namespace ade {

namespace interp {
class ProfileData;
}

namespace core {

class RemarkEmitter;

/// Knobs for the ablation study (RQ3).
struct PlannerConfig {
  /// SIII-D sharing. Disabling it also disables propagation (the paper:
  /// "no sharing also entails no propagation").
  bool EnableSharing = true;
  /// SIII-E propagation of identifiers through collection elements.
  bool EnablePropagation = true;
  /// Measured run data (`adec --profile-use`). When set, the benefit
  /// heuristic weights each trimmed site by its dynamic execution count
  /// instead of counting sites statically.
  const interp::ProfileData *Profile = nullptr;
  /// When non-null, every planning decision (enumerations created and
  /// rejected, sharing merges accepted and rejected, propagator roles,
  /// welds) is recorded as an optimization remark with its evidence.
  RemarkEmitter *Remarks = nullptr;
};

/// The set of Algorithm 2 trims used by the benefit heuristic.
struct TrimSets {
  UseSet TrimEnc, TrimDec, TrimAdd;

  int64_t benefit() const {
    return static_cast<int64_t>(TrimEnc.size() + TrimDec.size() +
                                TrimAdd.size());
  }

  /// Profile-weighted benefit: each trimmed site counts its measured
  /// dynamic executions rather than 1. Sites the profile never saw keep
  /// weight 1, so cold code degrades to the static heuristic instead of
  /// vanishing from consideration.
  int64_t weightedBenefit(const interp::ProfileData &Profile) const;
};

/// Runs FINDREDUNDANT (Algorithm 2) over combined uses-to-patch sets.
TrimSets findRedundant(const UseSet &ToEnc, const UseSet &ToDec,
                       const UseSet &ToAdd);

/// One enumeration: the group of collections sharing it.
struct Candidate {
  /// The enumerated key domain type K.
  ir::Type *KeyTy = nullptr;
  /// Associative roots whose keys become identifiers.
  std::vector<RootInfo *> KeyMembers;
  /// Propagator roots whose elements become identifiers (SIII-E).
  std::vector<RootInfo *> ElemMembers;
  /// Heuristic benefit: |TrimEnc| + |TrimDec| + |TrimAdd|, with each
  /// trimmed site weighted by its measured execution count under
  /// PlannerConfig::Profile.
  int64_t Benefit = 0;
  /// True when a directive forced this candidate regardless of benefit.
  bool Forced = false;
  /// Id of this candidate's "plan:enum-created" remark (0 when remarks
  /// are off); the provenance root of every dependent decision.
  uint64_t RemarkId = 0;

  bool isKeyMember(const RootInfo *R) const {
    for (const RootInfo *M : KeyMembers)
      if (M == R)
        return true;
    return false;
  }
  bool isElemMember(const RootInfo *R) const {
    for (const RootInfo *M : ElemMembers)
      if (M == R)
        return true;
    return false;
  }
};

/// The whole-module enumeration decision.
struct EnumerationPlan {
  std::vector<Candidate> Candidates;

  /// Provenance: for each root admitted into a candidate, the id of the
  /// remark that admitted it ("plan:enum-created" for founding members,
  /// "share:merged" for members that joined by sharing). Later passes
  /// link their remarks to these ids. Empty when remarks are off.
  std::map<const RootInfo *, uint64_t> ProvenanceOf;

  /// The provenance remark of \p R, or 0.
  uint64_t provenanceOf(const RootInfo *R) const {
    auto It = ProvenanceOf.find(R);
    return It == ProvenanceOf.end() ? 0 : It->second;
  }

  /// The candidate a root belongs to (any role), or nullptr.
  const Candidate *candidateOf(const RootInfo *R) const {
    for (const Candidate &C : Candidates)
      if (C.isKeyMember(R) || C.isElemMember(R))
        return &C;
    return nullptr;
  }
};

/// Builds the plan for \p MA under \p Config.
EnumerationPlan planEnumeration(const ModuleAnalysis &MA,
                                const PlannerConfig &Config = {});

} // namespace core
} // namespace ade

#endif // ADE_CORE_PLAN_H
