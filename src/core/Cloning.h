//===- Cloning.h - Function cloning for mixed callers -----------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SIII-F's cloning: "for functions that are externally visible, or have
/// parameters that are only enumerated for some callers, we create a
/// clone of the function to transform". Without cloning, our unification
/// merges the callers' collections into one class, and one escaping
/// caller conservatively disables enumeration for everyone. The pre-pass
/// here detects callees whose call sites split into escape-free and
/// escaping groups when parameter unification is ignored, clones the
/// callee per extra group, and retargets the call sites, so the main
/// pipeline can enumerate the clean copies.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_CORE_CLONING_H
#define ADE_CORE_CLONING_H

#include "ir/IR.h"

#include <string>

namespace ade {
namespace core {

class RemarkEmitter;

/// Deep-copies \p F (arguments, regions, instructions, attributes,
/// directives) into \p M under \p NewName and returns the clone.
ir::Function *cloneFunction(ir::Module &M, const ir::Function &F,
                            std::string NewName);

/// Clones callees whose callers would otherwise be merged into one
/// enumeration class despite disagreeing on transformability. Returns the
/// number of clones created. Run before ADE analysis. With \p Remarks,
/// each clone (and each blocked or unnecessary clone) is recorded.
unsigned cloneForMixedCallers(ir::Module &M,
                              RemarkEmitter *Remarks = nullptr);

} // namespace core
} // namespace ade

#endif // ADE_CORE_CLONING_H
