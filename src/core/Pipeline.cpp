//===- Pipeline.cpp - ADE pass pipeline -----------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "analysis/Checkers.h"
#include "core/Cloning.h"
#include "core/RemarkEmitter.h"
#include "ir/Verifier.h"
#include "support/CrashHandler.h"
#include "support/ErrorHandling.h"
#include "support/RawOstream.h"
#include "support/Trace.h"

#include <optional>

using namespace ade;
using namespace ade::core;

void ade::core::runSelfAudit(ir::Module &M) {
  analysis::DiagnosticEngine DE;
  if (analysis::auditEnumeration(M, DE))
    return;
  DE.render(errs(), analysis::DiagFormat::Text);
  reportFatalError("ADE self-audit failed: the transformed module is not "
                   "enumeration-consistent");
}

PipelineResult ade::core::runADE(ir::Module &M,
                                 const PipelineConfig &Config) {
  PipelineResult Result;
  RemarkEmitter *RE = Config.Remarks;

  // Decision density: with both remarks and tracing on, sample the number
  // of remarks each phase emitted as a Chrome-trace counter track.
  uint64_t LastRemarkCount = 0;
  auto CountDecisions = [&](const char *Phase) {
    if (!RE)
      return;
    uint64_t Now = RE->stream().size();
    if (TraceRecorder *TR = TraceRecorder::active())
      TR->addCounter("remarks", "compile", TR->nowMicros(),
                     {{std::string(Phase), Now - LastRemarkCount}});
    LastRemarkCount = Now;
  };

  if (Config.EnableCloning) {
    TimerGroup::Scope T(Result.Timing, "cloning");
    TraceScope Trace("cloning", "compile");
    CrashContext CC("cloning");
    Result.FunctionsCloned = cloneForMixedCallers(M, RE);
    CountDecisions("cloning");
  }

  std::optional<ModuleAnalysis> MA;
  {
    TimerGroup::Scope T(Result.Timing, "analysis");
    TraceScope Trace("analysis", "compile");
    CrashContext CC("analysis");
    MA.emplace(M);
  }

  {
    TimerGroup::Scope T(Result.Timing, "planning");
    TraceScope Trace("planning", "compile");
    CrashContext CC("planning");
    PlannerConfig PC;
    PC.EnableSharing = Config.EnableSharing;
    // No sharing also entails no propagation (SIV RQ3): a propagator is only
    // introduced when it can share with an enumerated collection.
    PC.EnablePropagation = Config.EnableSharing && Config.EnablePropagation;
    PC.Profile = Config.Profile;
    PC.Remarks = RE;
    Result.Plan = planEnumeration(*MA, PC);
    CountDecisions("planning");
  }

  {
    TimerGroup::Scope T(Result.Timing, "transform");
    TraceScope Trace("transform", "compile");
    CrashContext CC("transform");
    TransformConfig TC;
    TC.EnableRTE = Config.EnableRTE;
    TC.Remarks = RE;
    Result.Transform = applyEnumeration(*MA, Result.Plan, TC);
    CountDecisions("transform");
  }

  {
    TimerGroup::Scope T(Result.Timing, "selection");
    TraceScope Trace("selection", "compile");
    CrashContext CC("selection");
    SelectionConfig SC = Config.Selection;
    SC.Profile = Config.Profile;
    SC.Remarks = RE;
    applySelection(*MA, Result.Plan, SC);
    CountDecisions("selection");
  }

  if (Config.Verify) {
    TimerGroup::Scope T(Result.Timing, "verify");
    TraceScope Trace("verify", "compile");
    CrashContext CC("verify");
    ir::verifyOrDie(M);
    runSelfAudit(M);
  }
  return Result;
}
