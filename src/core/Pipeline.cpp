//===- Pipeline.cpp - ADE pass pipeline -----------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "analysis/AbsInt.h"
#include "analysis/Checkers.h"
#include "core/Cloning.h"
#include "core/RemarkEmitter.h"
#include "ir/Verifier.h"
#include "support/CrashHandler.h"
#include "support/ErrorHandling.h"
#include "support/RawOstream.h"
#include "support/Trace.h"

#include <optional>

using namespace ade;
using namespace ade::core;

void ade::core::runSelfAudit(ir::Module &M) {
  analysis::DiagnosticEngine DE;
  if (analysis::auditEnumeration(M, DE))
    return;
  DE.render(errs(), analysis::DiagFormat::Text);
  reportFatalError("ADE self-audit failed: the transformed module is not "
                   "enumeration-consistent");
}

PipelineResult ade::core::runADE(ir::Module &M,
                                 const PipelineConfig &Config) {
  PipelineResult Result;
  RemarkEmitter *RE = Config.Remarks;

  // Decision density: with both remarks and tracing on, sample the number
  // of remarks each phase emitted as a Chrome-trace counter track.
  uint64_t LastRemarkCount = 0;
  auto CountDecisions = [&](const char *Phase) {
    if (!RE)
      return;
    uint64_t Now = RE->stream().size();
    if (TraceRecorder *TR = TraceRecorder::active())
      TR->addCounter("remarks", "compile", TR->nowMicros(),
                     {{std::string(Phase), Now - LastRemarkCount}});
    LastRemarkCount = Now;
  };

  if (Config.EnableCloning) {
    TimerGroup::Scope T(Result.Timing, "cloning");
    TraceScope Trace("cloning", "compile");
    CrashContext CC("cloning");
    Result.FunctionsCloned = cloneForMixedCallers(M, RE);
    CountDecisions("cloning");
  }

  std::optional<ModuleAnalysis> MA;
  {
    TimerGroup::Scope T(Result.Timing, "analysis");
    TraceScope Trace("analysis", "compile");
    CrashContext CC("analysis");
    MA.emplace(M);
  }

  {
    TimerGroup::Scope T(Result.Timing, "planning");
    TraceScope Trace("planning", "compile");
    CrashContext CC("planning");
    PlannerConfig PC;
    PC.EnableSharing = Config.EnableSharing;
    // No sharing also entails no propagation (SIV RQ3): a propagator is only
    // introduced when it can share with an enumerated collection.
    PC.EnablePropagation = Config.EnableSharing && Config.EnablePropagation;
    PC.Profile = Config.Profile;
    PC.Remarks = RE;
    Result.Plan = planEnumeration(*MA, PC);
    CountDecisions("planning");
  }

  // Abstract interpretation runs on the pristine module (the transform
  // below invalidates MA's use sets), keyed by the same alias class ids
  // the selection pass queries. Every class gets an "absint:occupancy"
  // remark carrying the proven bounds; its id becomes the provenance
  // parent of any selection decision the proof enables.
  analysis::AbsIntSelectionFacts AbsIntFacts;
  bool HaveAbsInt = false;
  if (Config.EnableAbsInt) {
    TimerGroup::Scope T(Result.Timing, "absint");
    TraceScope Trace("absint", "compile");
    CrashContext CC("absint");
    analysis::AbsIntEngine AI(*MA);
    for (size_t CI = 0, E = MA->aliasClasses().size(); CI != E; ++CI) {
      if (MA->aliasClasses()[CI].empty())
        continue;
      const analysis::Occupancy &Occ = AI.occupancyOf(CI);
      std::vector<size_t> Covers = AI.coveredBy(CI);
      analysis::AbsIntSelectionFacts::ClassFacts CF;
      CF.Ever = Occ.Ever;
      CF.Covers = Covers;
      if (RE) {
        RootInfo *Rep = MA->aliasClasses()[CI].front();
        std::string Ever = "[" + std::to_string(Occ.Ever.Lo) + ", " +
                           (Occ.Ever.isFinite()
                                ? std::to_string(Occ.Ever.Hi)
                                : std::string("inf")) +
                           "]";
        auto SB = RE->analysis("absint", "occupancy")
                      .atRoot(*Rep)
                      .parent(Result.Plan.provenanceOf(Rep))
                      .arg("ever", Ever)
                      .arg("mayRemove", Occ.MayRemove)
                      .arg("mayClear", Occ.MayClear);
        if (!Covers.empty())
          SB.arg("covers", (uint64_t)Covers.size());
        CF.RemarkId = SB.id();
      }
      AbsIntFacts.ByClass.emplace(CI, std::move(CF));
    }
    HaveAbsInt = true;
    CountDecisions("absint");
  }

  {
    TimerGroup::Scope T(Result.Timing, "transform");
    TraceScope Trace("transform", "compile");
    CrashContext CC("transform");
    TransformConfig TC;
    TC.EnableRTE = Config.EnableRTE;
    TC.Remarks = RE;
    Result.Transform = applyEnumeration(*MA, Result.Plan, TC);
    CountDecisions("transform");
  }

  {
    TimerGroup::Scope T(Result.Timing, "selection");
    TraceScope Trace("selection", "compile");
    CrashContext CC("selection");
    SelectionConfig SC = Config.Selection;
    SC.Profile = Config.Profile;
    SC.AbsInt = HaveAbsInt ? &AbsIntFacts : nullptr;
    SC.Remarks = RE;
    applySelection(*MA, Result.Plan, SC);
    CountDecisions("selection");
  }

  if (Config.Verify) {
    TimerGroup::Scope T(Result.Timing, "verify");
    TraceScope Trace("verify", "compile");
    CrashContext CC("verify");
    ir::verifyOrDie(M);
    runSelfAudit(M);
  }
  return Result;
}
