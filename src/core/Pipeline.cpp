//===- Pipeline.cpp - ADE pass pipeline -----------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "core/Cloning.h"

#include "ir/Verifier.h"

using namespace ade;
using namespace ade::core;

PipelineResult ade::core::runADE(ir::Module &M,
                                 const PipelineConfig &Config) {
  PipelineResult Result;

  if (Config.EnableCloning)
    Result.FunctionsCloned = cloneForMixedCallers(M);

  ModuleAnalysis MA(M);

  PlannerConfig PC;
  PC.EnableSharing = Config.EnableSharing;
  // No sharing also entails no propagation (SIV RQ3): a propagator is only
  // introduced when it can share with an enumerated collection.
  PC.EnablePropagation = Config.EnableSharing && Config.EnablePropagation;
  Result.Plan = planEnumeration(MA, PC);

  TransformConfig TC;
  TC.EnableRTE = Config.EnableRTE;
  Result.Transform = applyEnumeration(MA, Result.Plan, TC);

  applySelection(MA, Result.Plan, Config.Selection);

  if (Config.Verify)
    ir::verifyOrDie(M);
  return Result;
}
