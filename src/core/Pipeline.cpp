//===- Pipeline.cpp - ADE pass pipeline -----------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "analysis/Checkers.h"
#include "core/Cloning.h"
#include "ir/Verifier.h"
#include "support/ErrorHandling.h"
#include "support/RawOstream.h"

using namespace ade;
using namespace ade::core;

void ade::core::runSelfAudit(ir::Module &M) {
  analysis::DiagnosticEngine DE;
  if (analysis::auditEnumeration(M, DE))
    return;
  DE.render(errs(), analysis::DiagFormat::Text);
  reportFatalError("ADE self-audit failed: the transformed module is not "
                   "enumeration-consistent");
}

PipelineResult ade::core::runADE(ir::Module &M,
                                 const PipelineConfig &Config) {
  PipelineResult Result;

  if (Config.EnableCloning)
    Result.FunctionsCloned = cloneForMixedCallers(M);

  ModuleAnalysis MA(M);

  PlannerConfig PC;
  PC.EnableSharing = Config.EnableSharing;
  // No sharing also entails no propagation (SIV RQ3): a propagator is only
  // introduced when it can share with an enumerated collection.
  PC.EnablePropagation = Config.EnableSharing && Config.EnablePropagation;
  Result.Plan = planEnumeration(MA, PC);

  TransformConfig TC;
  TC.EnableRTE = Config.EnableRTE;
  Result.Transform = applyEnumeration(MA, Result.Plan, TC);

  applySelection(MA, Result.Plan, Config.Selection);

  if (Config.Verify) {
    ir::verifyOrDie(M);
    runSelfAudit(M);
  }
  return Result;
}
