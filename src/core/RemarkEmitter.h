//===- RemarkEmitter.h - IR-aware remark emission ---------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipeline-facing face of the optimization-remarks engine
/// (support/Remark). A \c RemarkEmitter owns one RemarkStream and hands
/// passes a fluent \c Builder that knows how to anchor a remark on an
/// instruction or a collection root and how to link provenance:
///
/// \code
///   RE->passed("share", "merged")
///       .atRoot(*Root)
///       .parent(Cand.RemarkId)
///       .arg("together", BTogether)
///       .arg("apart", BApart);
/// \endcode
///
/// Every decision point in the pipeline takes an optional
/// \c RemarkEmitter* through its config struct; a null emitter costs one
/// branch per decision.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_CORE_REMARKEMITTER_H
#define ADE_CORE_REMARKEMITTER_H

#include "core/Analysis.h"
#include "support/Remark.h"

namespace ade {
namespace core {

/// Best-effort source anchor of a root: the location of its allocation
/// site (nested levels defer to their parent). Invalid for parameters and
/// globals, which have no instruction anchor.
ir::SrcLoc rootLoc(const RootInfo &R);

/// The function enclosing a root's anchor, or null.
const ir::Function *rootFunction(const RootInfo &R);

class RemarkEmitter {
public:
  /// Fluent decorator over one freshly added remark.
  class Builder {
  public:
    Builder(remarks::RemarkStream &S, size_t Idx) : S(S), Idx(Idx) {}

    Builder &arg(std::string_view Key, std::string_view Value) {
      R().Args.push_back(
          remarks::Arg::str(std::string(Key), std::string(Value)));
      return *this;
    }
    Builder &arg(std::string_view Key, const char *Value) {
      return arg(Key, std::string_view(Value));
    }
    Builder &arg(std::string_view Key, const std::string &Value) {
      return arg(Key, std::string_view(Value));
    }
    Builder &arg(std::string_view Key, uint64_t Value) {
      R().Args.push_back(remarks::Arg::uint(std::string(Key), Value));
      return *this;
    }
    Builder &arg(std::string_view Key, unsigned Value) {
      return arg(Key, uint64_t(Value));
    }
    Builder &arg(std::string_view Key, int64_t Value) {
      R().Args.push_back(remarks::Arg::sint(std::string(Key), Value));
      return *this;
    }
    Builder &arg(std::string_view Key, int Value) {
      return arg(Key, int64_t(Value));
    }
    Builder &arg(std::string_view Key, bool Value) {
      R().Args.push_back(remarks::Arg::boolean(std::string(Key), Value));
      return *this;
    }

    Builder &loc(ir::SrcLoc L) {
      R().Line = L.Line;
      R().Col = L.Col;
      return *this;
    }
    /// Location and enclosing function of \p I.
    Builder &at(const ir::Instruction *I);
    Builder &func(std::string_view Name) {
      R().Function = std::string(Name);
      return *this;
    }
    /// Location, function and a "root" argument from \p Root.
    Builder &atRoot(const RootInfo &Root);

    /// Links \p Id as a provenance parent; 0 (no remark) is ignored.
    Builder &parent(uint64_t Id) {
      if (Id)
        R().Parents.push_back(Id);
      return *this;
    }

    uint64_t id() const { return S.at(Idx).Id; }

  private:
    remarks::Remark &R() { return S.at(Idx); }
    remarks::RemarkStream &S;
    size_t Idx;
  };

  Builder passed(std::string_view Pass, std::string_view Name) {
    return emit(remarks::Kind::Passed, Pass, Name);
  }
  Builder missed(std::string_view Pass, std::string_view Name) {
    return emit(remarks::Kind::Missed, Pass, Name);
  }
  Builder analysis(std::string_view Pass, std::string_view Name) {
    return emit(remarks::Kind::Analysis, Pass, Name);
  }

  remarks::RemarkStream &stream() { return S; }
  const remarks::RemarkStream &stream() const { return S; }

private:
  Builder emit(remarks::Kind K, std::string_view Pass,
               std::string_view Name) {
    return Builder(S, S.add(K, std::string(Pass), std::string(Name)));
  }

  remarks::RemarkStream S;
};

} // namespace core
} // namespace ade

#endif // ADE_CORE_REMARKEMITTER_H
