//===- Analysis.cpp - ADE collection analysis -----------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"

#include "core/MergeNetwork.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"
#include "support/UnionFind.h"

#include <set>

using namespace ade;
using namespace ade::core;
using namespace ade::ir;

ir::Type *RootInfo::keyType() const {
  Type *Key = nullptr;
  if (const auto *Set = dyn_cast<SetType>(CollTy))
    Key = Set->key();
  else if (const auto *Map = dyn_cast<MapType>(CollTy))
    Key = Map->key();
  return Key && Key->isScalar() ? Key : nullptr;
}

ir::Type *RootInfo::elemType() const {
  Type *Elem = nullptr;
  if (const auto *Map = dyn_cast<MapType>(CollTy))
    Elem = Map->value();
  else if (const auto *Seq = dyn_cast<SeqType>(CollTy))
    Elem = Seq->element();
  return Elem && Elem->isScalar() ? Elem : nullptr;
}

std::string RootInfo::describe() const {
  std::string Out;
  switch (TheKind) {
  case Kind::Alloc:
    Out = "alloc %" + Anchor->name();
    break;
  case Kind::Param:
    Out = "param %" + Anchor->name();
    break;
  case Kind::Global:
    Out = "global @" + Global->Name;
    break;
  case Kind::Nested:
    Out = "nested[" + Parent->describe() + "]";
    break;
  }
  return Out + " : " + CollTy->str();
}

//===----------------------------------------------------------------------===//
// Builder
//===----------------------------------------------------------------------===//

struct ModuleAnalysis::Builder {
  ModuleAnalysis &MA;
  Module &M;
  KeyedUnionFind<RootInfo *> Classes;
  bool Changed = false;
  bool UnifyCallEdges = true;

  Builder(ModuleAnalysis &MA, bool UnifyCallEdges)
      : MA(MA), M(MA.M), UnifyCallEdges(UnifyCallEdges) {}

  RootInfo *newRoot(RootInfo::Kind K, Type *CollTy) {
    MA.Roots.push_back(std::make_unique<RootInfo>());
    RootInfo *R = MA.Roots.back().get();
    R->TheKind = K;
    R->CollTy = CollTy;
    Classes.id(R);
    // Build the nested chain for collection-valued elements (SIII-G).
    Type *ElemColl = nullptr;
    if (const auto *Map = dyn_cast<MapType>(CollTy))
      ElemColl = Map->value()->isCollection() ? Map->value() : nullptr;
    else if (const auto *Seq = dyn_cast<SeqType>(CollTy))
      ElemColl = Seq->element()->isCollection() ? Seq->element() : nullptr;
    if (ElemColl) {
      RootInfo *Child = newRoot(RootInfo::Kind::Nested, ElemColl);
      Child->Parent = R;
      R->Child = Child;
    }
    return R;
  }

  void assignRef(Value *V, RootInfo *R) {
    auto [It, Inserted] = MA.ValueToRoot.try_emplace(V, R);
    if (Inserted) {
      R->Refs.push_back(V);
      Changed = true;
      return;
    }
    if (It->second != R)
      unite(It->second, R);
  }

  void unite(RootInfo *A, RootInfo *B) {
    if (Classes.connected(A, B))
      return;
    Classes.unite(A, B);
    Changed = true;
    // Nesting levels of unified collections unify level-wise.
    if (A->Child && B->Child)
      unite(A->Child, B->Child);
    else if ((A->Child != nullptr) != (B->Child != nullptr)) {
      // Structural mismatch (should not occur for well-typed IR).
      markEscape(A);
      markEscape(B);
    }
  }

  void markEscape(RootInfo *R) {
    if (!R->Escapes) {
      R->Escapes = true;
      Changed = true;
    }
  }

  RootInfo *rootOf(Value *V) const {
    auto It = MA.ValueToRoot.find(V);
    return It == MA.ValueToRoot.end() ? nullptr : It->second;
  }

  //===--------------------------------------------------------------------===//
  // Phase 1: roots
  //===--------------------------------------------------------------------===//

  std::map<std::string, RootInfo *> GlobalRoots;

  void createRoots() {
    for (const auto &G : M.globals()) {
      if (!G->Ty->isCollection())
        continue;
      RootInfo *R = newRoot(RootInfo::Kind::Global, G->Ty);
      R->Global = G.get();
      GlobalRoots[G->Name] = R;
    }
    for (const auto &F : M.functions()) {
      for (unsigned I = 0; I != F->numArgs(); ++I) {
        Argument *A = F->arg(I);
        if (!A->type()->isCollection())
          continue;
        RootInfo *R = newRoot(RootInfo::Kind::Param, A->type());
        R->Anchor = A;
        assignRef(A, R);
      }
      if (!F->isExternal())
        createAllocRoots(F->body());
    }
  }

  void createAllocRoots(const Region &R) {
    for (Instruction *I : R) {
      if (I->op() == Opcode::New) {
        RootInfo *Root = newRoot(RootInfo::Kind::Alloc,
                                 I->result()->type());
        Root->Anchor = I->result();
        if (const Directive *D = I->directive()) {
          Root->Dir = *D;
          Root->HasDirective = true;
        }
        assignRef(I->result(), Root);
      }
      for (unsigned Idx = 0; Idx != I->numRegions(); ++Idx)
        createAllocRoots(*I->region(Idx));
    }
  }

  //===--------------------------------------------------------------------===//
  // Phase 2: reference propagation and unification edges (Algorithm 5)
  //===--------------------------------------------------------------------===//

  void propagate() {
    do {
      Changed = false;
      for (const auto &F : M.functions())
        if (!F->isExternal())
          propagateRegion(F->body());
    } while (Changed);
  }

  void propagateRegion(const Region &R) {
    for (Instruction *I : R) {
      propagateInst(I);
      for (unsigned Idx = 0; Idx != I->numRegions(); ++Idx)
        propagateRegion(*I->region(Idx));
    }
  }

  void propagateInst(Instruction *I) {
    switch (I->op()) {
    case Opcode::GlobalGet: {
      auto It = GlobalRoots.find(I->symbol());
      if (It != GlobalRoots.end())
        assignRef(I->result(), It->second);
      break;
    }
    case Opcode::Read:
    case Opcode::Pop: {
      if (I->numResults() && I->result()->type()->isCollection())
        if (RootInfo *Base = rootOf(I->operand(0)))
          if (Base->Child)
            assignRef(I->result(), Base->Child);
      break;
    }
    case Opcode::ForEach: {
      RootInfo *Base = rootOf(I->operand(0));
      if (!Base || !Base->Child)
        break;
      const Region *Body = I->region(0);
      // Seq/Map bind the element as the second region argument.
      if (Body->numArgs() >= 2 && Body->arg(1)->type()->isCollection())
        assignRef(Body->arg(1), Base->Child);
      break;
    }
    case Opcode::Write: {
      if (!I->operand(2)->type()->isCollection())
        break;
      RootInfo *Base = rootOf(I->operand(0));
      RootInfo *Val = rootOf(I->operand(2));
      if (Base && Base->Child && Val)
        unite(Base->Child, Val);
      break;
    }
    case Opcode::Append: {
      if (!I->operand(1)->type()->isCollection())
        break;
      RootInfo *Base = rootOf(I->operand(0));
      RootInfo *Val = rootOf(I->operand(1));
      if (Base && Base->Child && Val)
        unite(Base->Child, Val);
      break;
    }
    case Opcode::GlobalSet: {
      auto It = GlobalRoots.find(I->symbol());
      RootInfo *Val = rootOf(I->operand(0));
      if (It != GlobalRoots.end() && Val)
        unite(It->second, Val);
      break;
    }
    case Opcode::Call: {
      const Function *Callee = M.getFunction(I->symbol());
      for (unsigned Idx = 0; Idx != I->numOperands(); ++Idx) {
        Value *Arg = I->operand(Idx);
        if (!Arg->type()->isCollection())
          continue;
        RootInfo *ArgRoot = rootOf(Arg);
        if (!ArgRoot)
          continue;
        if (!Callee || Callee->isExternal()) {
          // SIII-F: collections passed to indirect or externally defined
          // callees are not transformed.
          markEscape(ArgRoot);
          continue;
        }
        if (!UnifyCallEdges)
          continue;
        if (RootInfo *ParamRoot = rootOf(Callee->arg(Idx)))
          unite(ArgRoot, ParamRoot);
      }
      // A returned collection aliases the callee's returned roots.
      if (UnifyCallEdges && I->numResults() &&
          I->result()->type()->isCollection() && Callee &&
          !Callee->isExternal())
        bindCallResult(I, Callee);
      break;
    }
    default:
      break;
    }
  }

  void bindCallResult(Instruction *CallInst, const Function *Callee) {
    forEachRet(Callee->body(), [&](Instruction *Ret) {
      if (Ret->numOperands() == 0)
        return;
      if (RootInfo *RetRoot = rootOf(Ret->operand(0)))
        assignRef(CallInst->result(), RetRoot);
    });
  }

  template <typename FnT> void forEachRet(const Region &R, FnT Fn) {
    for (Instruction *I : R) {
      if (I->op() == Opcode::Ret)
        Fn(I);
      for (unsigned Idx = 0; Idx != I->numRegions(); ++Idx)
        forEachRet(*I->region(Idx), Fn);
    }
  }

  //===--------------------------------------------------------------------===//
  // Phase 3: escapes — any collection use we do not model forbids
  // transformation of its class (SIII-F).
  //===--------------------------------------------------------------------===//

  void computeEscapes() {
    // Parameters of functions without internal callers receive data from
    // outside the module (SIII-F: externally visible functions); their
    // collections cannot be retyped.
    std::set<const Function *> InternallyCalled;
    for (const auto &F : M.functions())
      if (!F->isExternal())
        collectCallees(F->body(), InternallyCalled);
    for (auto &RootPtr : MA.Roots) {
      RootInfo *R = RootPtr.get();
      if (R->TheKind != RootInfo::Kind::Param)
        continue;
      const Function *Owner = cast<Argument>(R->Anchor)->parent();
      if (!InternallyCalled.count(Owner))
        markEscape(R);
    }
    for (auto &[V, Root] : MA.ValueToRoot) {
      for (const Use &U : V->uses()) {
        if (!useIsModeled(V, U))
          markEscape(Root);
      }
    }
  }

  void collectCallees(const Region &R, std::set<const Function *> &Out) {
    for (Instruction *I : R) {
      if (I->op() == Opcode::Call)
        if (const Function *Callee = M.getFunction(I->symbol()))
          Out.insert(Callee);
      for (unsigned Idx = 0; Idx != I->numRegions(); ++Idx)
        collectCallees(*I->region(Idx), Out);
    }
  }

  bool useIsModeled(Value *V, const Use &U) {
    Instruction *I = U.User;
    switch (I->op()) {
    case Opcode::Read:
    case Opcode::Has:
    case Opcode::Remove:
    case Opcode::Insert:
    case Opcode::Size:
    case Opcode::Clear:
    case Opcode::Reserve:
    case Opcode::Pop:
    case Opcode::ForEach:
      return U.OpIdx == 0;
    case Opcode::Write:
      // Base, or a collection value stored into a tracked nesting level.
      if (U.OpIdx == 0)
        return true;
      return U.OpIdx == 2 && rootOf(I->operand(0)) &&
             rootOf(I->operand(0))->Child;
    case Opcode::Append:
      if (U.OpIdx == 0)
        return true;
      return U.OpIdx == 1 && rootOf(I->operand(0)) &&
             rootOf(I->operand(0))->Child;
    case Opcode::Union: {
      // Both sides must be tracked; enumeration compatibility is enforced
      // by the planner, which unifies union partners.
      RootInfo *Other = rootOf(I->operand(U.OpIdx == 0 ? 1 : 0));
      return Other != nullptr;
    }
    case Opcode::GlobalSet:
      return true;
    case Opcode::Call: {
      const Function *Callee = M.getFunction(I->symbol());
      // Escape for external callees is recorded during propagation; the
      // use itself is modeled either way.
      return Callee != nullptr;
    }
    case Opcode::Ret:
      return true;
    default:
      return false;
    }
  }

  //===--------------------------------------------------------------------===//
  // Phase 4: use sets (Algorithms 1 and 4)
  //===--------------------------------------------------------------------===//

  void computeUseSets() {
    for (auto &RootPtr : MA.Roots) {
      RootInfo *Root = RootPtr.get();
      for (Value *Ref : Root->Refs)
        for (const Use &U : Ref->uses())
          recordAccess(Root, Ref, U);
      // ToDec entries are the uses of produced keys (Algorithm 1's
      // for-each case inserts Uses(k)); likewise for propagated elements
      // (Algorithm 4). Uses are followed through structured merges — the
      // analog of MEMOIR following phis — so that loop-carried decoded
      // values (Listing 3's %curr) surface their redundancy.
      for (Value *K : Root->ProducedKeys)
        addUsesTransitive(K, Root->ToDec);
      for (Value *E : Root->ProducedElems)
        addUsesTransitive(E, Root->PropToDec);
    }
  }

  void addUsesTransitive(Value *V, UseSet &Out) {
    std::set<const Value *> Visited;
    addUsesTransitiveImpl(V, Out, Visited);
  }

  void addUsesTransitiveImpl(Value *V, UseSet &Out,
                             std::set<const Value *> &Visited) {
    if (!Visited.insert(V).second)
      return;
    for (const Use &U : V->uses()) {
      Out.insert({U.User, U.OpIdx});
      for (Value *Target : MA.Merges->targetsOf(U.User, U.OpIdx))
        if (Target->type() == V->type())
          addUsesTransitiveImpl(Target, Out, Visited);
    }
  }

  void recordAccess(RootInfo *Root, Value *Ref, const Use &U) {
    Instruction *I = U.User;
    if (U.OpIdx != 0)
      return; // Only accesses through the base operand contribute.
    bool Assoc = Root->isAssociative() && Root->keyType();
    bool Prop = Root->elemType() != nullptr;
    switch (I->op()) {
    case Opcode::Read:
      if (Assoc)
        Root->ToEnc.insert({I, 1});
      if (Prop)
        Root->ProducedElems.push_back(I->result());
      break;
    case Opcode::Has:
    case Opcode::Remove:
      if (Assoc)
        Root->ToEnc.insert({I, 1});
      break;
    case Opcode::Write:
      // Our write upserts (a fresh key creates the mapping), so its key
      // must be *added* to the enumeration, not merely encoded. MEMOIR's
      // write updates an existing element (Listing 1 inserts before
      // writing), where ToEnc suffices; see DESIGN.md.
      if (Assoc)
        Root->ToAdd.insert({I, 1});
      if (Prop)
        Root->PropToAdd.insert({I, 2});
      break;
    case Opcode::Insert:
      if (Assoc)
        Root->ToAdd.insert({I, 1});
      break;
    case Opcode::Append:
      if (Prop)
        Root->PropToAdd.insert({I, 1});
      break;
    case Opcode::Pop:
      if (Prop)
        Root->ProducedElems.push_back(I->result());
      break;
    case Opcode::ForEach: {
      const Region *Body = I->region(0);
      if (Assoc)
        Root->ProducedKeys.push_back(Body->arg(0));
      if (Prop) {
        unsigned ElemArg = isa<SetType>(Root->CollTy) ? 0 : 1;
        if (ElemArg < Body->numArgs())
          Root->ProducedElems.push_back(Body->arg(ElemArg));
      }
      break;
    }
    default:
      break;
    }
  }

  //===--------------------------------------------------------------------===//
  // Finalize
  //===--------------------------------------------------------------------===//

  void buildClasses() {
    std::map<uint32_t, std::vector<RootInfo *>> ByRep;
    for (auto &RootPtr : MA.Roots)
      ByRep[Classes.find(RootPtr.get())].push_back(RootPtr.get());
    for (auto &[Rep, Members] : ByRep) {
      // Class-wide escape and directive merge: aliasing roots are one
      // collection object, so a directive on any allocation site applies
      // to every reference.
      bool Escapes = false;
      Directive Merged;
      bool AnyDirective = false;
      for (RootInfo *R : Members) {
        Escapes |= R->Escapes;
        if (!R->HasDirective)
          continue;
        AnyDirective = true;
        if (R->Dir.EnumerateMode != Directive::Enumerate::Default)
          Merged.EnumerateMode = R->Dir.EnumerateMode;
        Merged.NoShare |= R->Dir.NoShare;
        Merged.NoShareWith.insert(Merged.NoShareWith.end(),
                                  R->Dir.NoShareWith.begin(),
                                  R->Dir.NoShareWith.end());
        if (Merged.ShareGroup.empty())
          Merged.ShareGroup = R->Dir.ShareGroup;
        if (Merged.Select == Selection::Empty)
          Merged.Select = R->Dir.Select;
      }
      for (RootInfo *R : Members) {
        R->Escapes = Escapes;
        if (AnyDirective) {
          R->Dir = Merged;
          R->HasDirective = true;
        }
      }
      size_t Index = MA.AliasClasses.size();
      MA.AliasClasses.push_back(Members);
      for (RootInfo *R : Members)
        MA.ClassIndex[R] = Index;
    }
  }

  void run() {
    createRoots();
    propagate();
    computeEscapes();
    computeUseSets();
    buildClasses();
  }
};

ModuleAnalysis::ModuleAnalysis(Module &M, bool UnifyCallEdges)
    : M(M), Merges(std::make_unique<MergeNetwork>(M)) {
  Builder B(*this, UnifyCallEdges);
  B.run();
}

ModuleAnalysis::~ModuleAnalysis() = default;

RootInfo *ModuleAnalysis::rootOf(Value *V) const {
  auto It = ValueToRoot.find(V);
  return It == ValueToRoot.end() ? nullptr : It->second;
}

size_t ModuleAnalysis::aliasClassOf(RootInfo *Root) const {
  auto It = ClassIndex.find(Root);
  assert(It != ClassIndex.end() && "root not in any class");
  return It->second;
}
