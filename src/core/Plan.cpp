//===- Plan.cpp - Candidate selection for enumeration ---------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Plan.h"

#include "core/RemarkEmitter.h"
#include "interp/Profiler.h"
#include "stats/Statistic.h"
#include "support/Casting.h"
#include "support/UnionFind.h"

#include <algorithm>
#include <cstdint>

using namespace ade;
using namespace ade::core;
using namespace ade::ir;

ADE_STATISTIC(NumEnumerationsPlanned, "ade-plan",
              "Enumeration candidates emitted by the planner");
ADE_STATISTIC(NumCollectionsSharing, "ade-plan",
              "Collections sharing an enumeration beyond its first member");
ADE_STATISTIC(NumPropagators, "ade-plan",
              "Element/sequence roots propagating identifiers");
ADE_STATISTIC(NumUnitsUnified, "ade-plan",
              "Enumeration units unified by welding (share groups, unions)");

TrimSets ade::core::findRedundant(const UseSet &ToEnc, const UseSet &ToDec,
                                  const UseSet &ToAdd) {
  TrimSets Trims;
  for (const UseRef &U : ToDec) {
    if (ToEnc.count(U)) {
      // Encoding a decoded value: enc(e, dec(e, x)) -> x.
      Trims.TrimDec.insert(U);
      Trims.TrimEnc.insert(U);
      continue;
    }
    if (ToAdd.count(U)) {
      // Decoded values are already enumerated: add(e, dec(e, x)) -> x.
      Trims.TrimDec.insert(U);
      Trims.TrimAdd.insert(U);
      continue;
    }
    // Comparing enumerated values: eq(dec(e,x), dec(e,y)) -> eq(x, y).
    Opcode Op = U.User->op();
    if (Op == Opcode::CmpEq || Op == Opcode::CmpNe) {
      UseRef Other{U.User, 1 - U.OpIdx};
      if (ToDec.count(Other)) {
        Trims.TrimDec.insert(U);
        Trims.TrimDec.insert(Other);
      }
    }
  }
  return Trims;
}

int64_t ade::core::TrimSets::weightedBenefit(
    const interp::ProfileData &Profile) const {
  auto WeightOf = [&](const UseRef &U) -> int64_t {
    uint64_t N = 0;
    if (const Function *F = U.User->parentFunction())
      N = Profile.opsAt(F->name(), U.User->loc());
    if (N == 0)
      return 1;
    return N > uint64_t(INT64_MAX) ? INT64_MAX : int64_t(N);
  };
  int64_t Total = 0;
  for (const UseSet *S : {&TrimEnc, &TrimDec, &TrimAdd})
    for (const UseRef &U : *S)
      Total += WeightOf(U);
  return Total;
}

namespace {

/// A pre-merged unit: one alias class (collections that are the same
/// object) plus anything welded to it by union operations or share-group
/// directives. Units are the granularity at which Algorithm 3 decides
/// sharing.
struct Unit {
  std::vector<RootInfo *> Members;
  ir::Type *KeyTy = nullptr;   // Common associative key type (or null).
  ir::Type *ElemTy = nullptr;  // Common scalar element type (or null).
  bool HasAssoc = false;
  bool Escapes = false;
  bool ForbidEnum = false; // noenumerate
  bool ForceEnum = false;  // enumerate
  bool NoShare = false;    // noshare (bare)
  std::vector<std::string> NoShareWith;
  /// Names of allocs in this unit (for matching noshare(%name)).
  std::vector<std::string> AllocNames;

  /// Combined Algorithm 1 key-role sets.
  UseSet KeyEnc, KeyDec, KeyAdd;
  /// Combined Algorithm 4 element-role sets.
  UseSet ElemDec, ElemAdd;
};

/// Role a unit plays inside a candidate under evaluation.
struct Pick {
  Unit *U;
  bool AsKey;
  bool AsElem;
};

/// The Algorithm 2 trims a candidate assembly realizes.
TrimSets trimsOf(const std::vector<Pick> &Picks) {
  UseSet ToEnc, ToDec, ToAdd;
  for (const Pick &P : Picks) {
    if (P.AsKey) {
      ToEnc.insert(P.U->KeyEnc.begin(), P.U->KeyEnc.end());
      ToDec.insert(P.U->KeyDec.begin(), P.U->KeyDec.end());
      ToAdd.insert(P.U->KeyAdd.begin(), P.U->KeyAdd.end());
    }
    if (P.AsElem) {
      ToDec.insert(P.U->ElemDec.begin(), P.U->ElemDec.end());
      ToAdd.insert(P.U->ElemAdd.begin(), P.U->ElemAdd.end());
    }
  }
  return findRedundant(ToEnc, ToDec, ToAdd);
}

/// Scores a candidate assembly. With a profile, trimmed sites count their
/// dynamic executions so sharing decisions track measured op mixes; the
/// static site count otherwise.
int64_t trimBenefit(const std::vector<Pick> &Picks,
                    const interp::ProfileData *Profile) {
  TrimSets Trims = trimsOf(Picks);
  return Profile ? Trims.weightedBenefit(*Profile) : Trims.benefit();
}

class Planner {
public:
  Planner(const ModuleAnalysis &MA, const PlannerConfig &Config)
      : MA(MA), Config(Config) {}

  EnumerationPlan run() {
    buildUnits();
    weldUnits();
    return selectCandidates();
  }

private:
  int64_t benefitOf(const std::vector<Pick> &Picks) const {
    return trimBenefit(Picks, Config.Profile);
  }

  //===--------------------------------------------------------------------===//
  // Units
  //===--------------------------------------------------------------------===//

  void buildUnits() {
    // Start from alias classes; weld steps may merge further.
    for (const auto &Class : MA.aliasClasses()) {
      UnitStorage.push_back(std::make_unique<Unit>());
      Unit *U = UnitStorage.back().get();
      for (RootInfo *R : Class)
        addRootToUnit(U, R);
      for (RootInfo *R : Class)
        UnitOf[R] = U;
    }
  }

  void addRootToUnit(Unit *U, RootInfo *R) {
    U->Members.push_back(R);
    U->Escapes |= R->Escapes;
    if (R->isAssociative() && R->keyType()) {
      U->HasAssoc = true;
      if (!U->KeyTy)
        U->KeyTy = R->keyType();
      else if (U->KeyTy != R->keyType())
        U->Escapes = true; // Incompatible key domains; never enumerate.
      U->KeyEnc.insert(R->ToEnc.begin(), R->ToEnc.end());
      U->KeyDec.insert(R->ToDec.begin(), R->ToDec.end());
      U->KeyAdd.insert(R->ToAdd.begin(), R->ToAdd.end());
    }
    if (Type *Elem = R->elemType()) {
      if (!U->ElemTy)
        U->ElemTy = Elem;
      else if (U->ElemTy != Elem)
        U->ElemTy = nullptr; // Mixed element domains: no propagation.
      U->ElemDec.insert(R->PropToDec.begin(), R->PropToDec.end());
      U->ElemAdd.insert(R->PropToAdd.begin(), R->PropToAdd.end());
    }
    if (R->HasDirective) {
      const Directive &D = R->Dir;
      if (D.EnumerateMode == Directive::Enumerate::Forbid)
        U->ForbidEnum = true;
      if (D.EnumerateMode == Directive::Enumerate::Force)
        U->ForceEnum = true;
      U->NoShare |= D.NoShare;
      U->NoShareWith.insert(U->NoShareWith.end(), D.NoShareWith.begin(),
                            D.NoShareWith.end());
      if (!D.ShareGroup.empty())
        ShareGroups[D.ShareGroup].push_back(U);
    }
    if (R->Anchor && !R->Anchor->name().empty())
      U->AllocNames.push_back(R->Anchor->name());
  }

  /// Merges units that MUST share an enumeration: union partners (their
  /// identifiers flow between the sets) and explicit share groups —
  /// except when a noshare directive detaches them (unions across
  /// distinct enumerations are expanded by the transform).
  void weldUnits() {
    RemarkEmitter *RE = Config.Remarks;
    // Share groups weld unconditionally.
    for (auto &[Group, Members] : ShareGroups)
      for (size_t I = 1; I < Members.size(); ++I) {
        if (RE && resolve(Members[0]) != resolve(Members[I]))
          RE->passed("share", "welded")
              .atRoot(*Members[I]->Members.front())
              .arg("with", Members[0]->Members.front()->describe())
              .arg("reason", "share group(\"" + Group + "\") directive");
        mergeUnits(Members[0], Members[I]);
      }
    // Union edges weld unless a directive forbids sharing.
    for (const auto &RootPtr : MA.roots()) {
      for (Value *Ref : RootPtr->Refs) {
        for (const Use &U : Ref->uses()) {
          if (U.User->op() != Opcode::Union || U.OpIdx != 0)
            continue;
          RootInfo *SrcRoot =
              const_cast<ModuleAnalysis &>(MA).rootOf(U.User->operand(1));
          if (!SrcRoot)
            continue;
          Unit *A = findUnit(RootPtr.get());
          Unit *B = findUnit(SrcRoot);
          if (A == B)
            continue;
          if (blocked(A, B)) {
            if (RE)
              RE->missed("share", "weld-blocked")
                  .at(U.User)
                  .arg("dst", RootPtr->describe())
                  .arg("src", SrcRoot->describe())
                  .arg("reason", "noshare directive splits union operands "
                                 "into distinct enumerations");
            continue;
          }
          if (RE)
            RE->passed("share", "welded")
                .at(U.User)
                .arg("with", RootPtr->describe())
                .arg("root", SrcRoot->describe())
                .arg("reason", "union operands must share one enumeration");
          mergeUnits(A, B);
        }
      }
    }
  }

  Unit *findUnit(RootInfo *R) {
    Unit *U = UnitOf.at(R);
    while (Forwarded.count(U))
      U = Forwarded[U];
    return U;
  }

  void mergeUnits(Unit *A, Unit *B) {
    A = resolve(A);
    B = resolve(B);
    if (A == B)
      return;
    ++NumUnitsUnified;
    for (RootInfo *R : B->Members)
      addRootToUnit(A, R);
    // addRootToUnit re-appends members; de-duplicate.
    std::sort(A->Members.begin(), A->Members.end());
    A->Members.erase(std::unique(A->Members.begin(), A->Members.end()),
                     A->Members.end());
    Forwarded[B] = A;
  }

  Unit *resolve(Unit *U) {
    while (Forwarded.count(U))
      U = Forwarded[U];
    return U;
  }

  //===--------------------------------------------------------------------===//
  // Directive compatibility
  //===--------------------------------------------------------------------===//

  bool blocked(const Unit *A, const Unit *B) const {
    if (A->NoShare || B->NoShare)
      return true;
    auto NamesMatch = [](const std::vector<std::string> &Bans,
                         const std::vector<std::string> &Names) {
      for (const std::string &Ban : Bans)
        for (const std::string &Name : Names)
          if (Ban == Name)
            return true;
      return false;
    };
    return NamesMatch(A->NoShareWith, B->AllocNames) ||
           NamesMatch(B->NoShareWith, A->AllocNames);
  }

  //===--------------------------------------------------------------------===//
  // Algorithm 3
  //===--------------------------------------------------------------------===//

  EnumerationPlan selectCandidates() {
    EnumerationPlan Plan;
    RemarkEmitter *RE = Config.Remarks;
    std::set<Unit *> Used;
    std::vector<Unit *> Live;
    for (auto &UPtr : UnitStorage)
      if (!Forwarded.count(UPtr.get()))
        Live.push_back(UPtr.get());

    // Rejections noted during the sweep; flushed at the end so a unit that
    // later joins a candidate in a non-founding role is not misreported.
    struct SkipNote {
      Unit *U;
      const char *Reason;
      bool Always; // Emit even if the unit ended up in a candidate.
      bool HasBenefit;
      int64_t Benefit;
    };
    std::vector<SkipNote> Skips;

    for (Unit *A : Live) {
      if (Used.count(A))
        continue;
      if (!A->HasAssoc || !A->KeyTy || A->Escapes || A->ForbidEnum) {
        if (RE) {
          if (A->Escapes)
            Skips.push_back({A,
                             "collection escapes to unanalyzable code; its "
                             "representation cannot change",
                             true, false, 0});
          else if (A->ForbidEnum)
            Skips.push_back({A, "noenumerate directive", true, false, 0});
          else
            Skips.push_back({A,
                             "not an associative collection with an "
                             "enumerable key type",
                             false, false, 0});
        }
        continue;
      }
      // Sharing decisions recorded for this candidate's provenance block.
      std::map<Unit *, std::pair<int64_t, int64_t>> JoinScore;
      std::map<Unit *, std::pair<int64_t, int64_t>> RejectScore;
      std::set<Unit *> BlockedPartners;
      std::vector<Unit *> Pruned;
      std::vector<Pick> Picks{{A, /*AsKey=*/true, /*AsElem=*/false}};
      Used.insert(A);
      // Enables the propagator role on every type-compatible member; the
      // coupling between a container's elements and a partner's keys only
      // surfaces once both are in the candidate.
      auto WithAllElems = [&](std::vector<Pick> P) {
        for (Pick &Q : P)
          if (Config.EnablePropagation && Q.U->ElemTy == A->KeyTy)
            Q.AsElem = true;
        return P;
      };
      // A's own elements propagate only when that helps (Listing 3's map
      // is both key member and propagator; an unrelated value domain must
      // not pollute the enumeration).
      if (Config.EnablePropagation && A->ElemTy == A->KeyTy) {
        std::vector<Pick> WithElem{{A, true, true}};
        if (benefitOf(WithElem) > benefitOf(Picks))
          Picks = std::move(WithElem);
      }
      if (Config.EnableSharing) {
        bool Grew = true;
        while (Grew) {
          Grew = false;
          for (Unit *B : Live) {
            if (Used.count(B) || B->Escapes || B->ForbidEnum)
              continue;
            bool CanShare = B->HasAssoc && B->KeyTy == A->KeyTy;
            bool CanProp =
                Config.EnablePropagation && B->ElemTy == A->KeyTy;
            if (!CanShare && !CanProp)
              continue;
            if (blocked(A, B)) {
              BlockedPartners.insert(B);
              continue;
            }
            // Evaluate each viable role combination, with and without
            // propagator roles on the existing members; prefer the
            // highest benefit and, on ties, the fewest roles.
            int64_t BAlone = benefitOf(Picks);
            std::vector<Pick> Best;
            int64_t BestTogether = 0;
            int64_t BestApart = 0;
            int64_t SeenTogether = 0, SeenApart = 0;
            bool SeenAny = false;
            for (auto [AsKey, AsElem] :
                 {std::pair{true, false}, {false, true}, {true, true}}) {
              if ((AsKey && !CanShare) || (AsElem && !CanProp))
                continue;
              std::vector<Pick> Extended = Picks;
              Extended.push_back({B, AsKey, AsElem});
              int64_t BApart =
                  BAlone + benefitOf({Pick{B, AsKey, AsElem}});
              std::vector<Pick> Variants[2] = {Extended,
                                               WithAllElems(Extended)};
              for (std::vector<Pick> &Variant : Variants) {
                int64_t BTogether = benefitOf(Variant);
                if (!SeenAny || BTogether > SeenTogether) {
                  SeenTogether = BTogether;
                  SeenApart = BApart;
                  SeenAny = true;
                }
                // Benefit must exceed the sum of its parts (Alg. 3).
                if (BTogether > BApart && BTogether > BestTogether) {
                  Best = Variant;
                  BestTogether = BTogether;
                  BestApart = BApart;
                }
              }
            }
            if (!Best.empty()) {
              Picks = std::move(Best);
              Used.insert(B);
              Grew = true;
              JoinScore[B] = {BestTogether, BestApart};
              RejectScore.erase(B);
            } else if (SeenAny) {
              RejectScore[B] = {SeenTogether, SeenApart};
            }
          }
        }
        // Prune propagator roles that contribute nothing (they would
        // pollute the enumeration with an unrelated value domain).
        for (Pick &P : Picks) {
          if (!P.AsElem)
            continue;
          int64_t WithRole = benefitOf(Picks);
          P.AsElem = false;
          if (benefitOf(Picks) < WithRole)
            P.AsElem = true; // The role pays for itself; keep it.
          else
            Pruned.push_back(P.U);
        }
        // Remove members left with no role.
        Picks.erase(std::remove_if(Picks.begin(), Picks.end(),
                                   [&](const Pick &P) {
                                     bool Useless = !P.AsKey && !P.AsElem;
                                     if (Useless && P.U != A)
                                       Used.erase(P.U);
                                     return Useless;
                                   }),
                    Picks.end());
      }
      int64_t Benefit = benefitOf(Picks);
      bool Forced = false;
      for (const Pick &P : Picks)
        Forced |= P.U->ForceEnum;
      // Only emit candidates with positive benefit (or a directive).
      if (Benefit <= 0 && !Forced) {
        if (RE)
          Skips.push_back({A, "no trimmable encode/decode/add sites", true,
                           true, Benefit});
        for (const Pick &P : Picks)
          if (P.U != A)
            Used.erase(P.U);
        continue;
      }
      Candidate C;
      C.KeyTy = A->KeyTy;
      C.Benefit = Benefit;
      C.Forced = Forced;
      for (const Pick &P : Picks) {
        for (RootInfo *R : P.U->Members) {
          if (P.AsKey && R->isAssociative() && R->keyType() == C.KeyTy)
            C.KeyMembers.push_back(R);
          if (P.AsElem && R->elemType() == C.KeyTy)
            C.ElemMembers.push_back(R);
        }
      }
      if (C.KeyMembers.empty()) {
        if (RE)
          Skips.push_back({A, "no enumerable key members survived role "
                              "assignment",
                           true, false, 0});
        continue;
      }

      if (RE) {
        // The provenance root for every decision downstream of this
        // enumeration: selection, reserve hints, RTE all link back here.
        TrimSets Trims = trimsOf(Picks);
        auto EB = RE->passed("plan", "enum-created")
                      .atRoot(*C.KeyMembers.front())
                      .arg("keyType", C.KeyTy->str())
                      .arg("benefit", C.Benefit)
                      .arg("keyMembers", uint64_t(C.KeyMembers.size()))
                      .arg("propagators", uint64_t(C.ElemMembers.size()))
                      .arg("forced", C.Forced)
                      .arg("weighted", Config.Profile != nullptr);
        C.RemarkId = EB.id();
        auto AB = RE->analysis("plan", "benefit")
                      .atRoot(*C.KeyMembers.front())
                      .parent(C.RemarkId)
                      .arg("trimEnc", uint64_t(Trims.TrimEnc.size()))
                      .arg("trimDec", uint64_t(Trims.TrimDec.size()))
                      .arg("trimAdd", uint64_t(Trims.TrimAdd.size()))
                      .arg("staticBenefit", Trims.benefit());
        if (Config.Profile)
          AB.arg("weightedBenefit",
                 Trims.weightedBenefit(*Config.Profile));

        // Accepted merges: one remark per non-founding unit, carrying the
        // Algorithm 3 evidence. Roots map to the remark that admitted
        // them so later passes can chain provenance.
        std::map<Unit *, uint64_t> UnitRemark;
        UnitRemark[A] = C.RemarkId;
        for (const Pick &P : Picks) {
          if (P.U == A)
            continue;
          auto Score = JoinScore.count(P.U) ? JoinScore[P.U]
                                            : std::pair<int64_t, int64_t>{};
          const char *Role = P.AsKey && P.AsElem ? "key+propagator"
                             : P.AsKey           ? "key"
                                                 : "propagator";
          UnitRemark[P.U] =
              RE->passed("share", "merged")
                  .atRoot(*P.U->Members.front())
                  .parent(C.RemarkId)
                  .arg("role", Role)
                  .arg("benefitTogether", Score.first)
                  .arg("benefitApart", Score.second)
                  .id();
        }
        for (const Pick &P : Picks) {
          uint64_t PId = UnitRemark[P.U];
          for (RootInfo *R : P.U->Members)
            Plan.ProvenanceOf[R] = PId;
          if (P.AsElem)
            for (RootInfo *R : P.U->Members)
              if (R->elemType() == C.KeyTy)
                RE->passed("propagate", "propagator")
                    .atRoot(*R)
                    .parent(PId)
                    .arg("keyType", C.KeyTy->str());
        }
        // Iterate Live (deterministic creation order), not the
        // pointer-keyed containers: remark order must be byte-stable
        // across runs.
        for (Unit *B : Live) {
          auto ScoreIt = RejectScore.find(B);
          if (ScoreIt == RejectScore.end() || Used.count(B))
            continue;
          RE->missed("share", "rejected")
              .atRoot(*B->Members.front())
              .parent(C.RemarkId)
              .arg("candidateKeyType", C.KeyTy->str())
              .arg("benefitTogether", ScoreIt->second.first)
              .arg("benefitApart", ScoreIt->second.second)
              .arg("reason", "benefit together must exceed the sum of "
                             "the parts (Algorithm 3)");
        }
        for (Unit *B : Live) {
          if (!BlockedPartners.count(B))
            continue;
          RE->missed("share", "blocked")
              .atRoot(*B->Members.front())
              .parent(C.RemarkId)
              .arg("candidateKeyType", C.KeyTy->str())
              .arg("reason", "noshare directive");
        }
        for (Unit *U : Pruned)
          RE->missed("propagate", "pruned")
              .atRoot(*U->Members.front())
              .parent(UnitRemark.count(U) ? UnitRemark[U] : C.RemarkId)
              .arg("reason",
                   "propagator role does not increase the benefit");
      }

      ++NumEnumerationsPlanned;
      NumCollectionsSharing += C.KeyMembers.size() - 1;
      NumPropagators += C.ElemMembers.size();
      Plan.Candidates.push_back(std::move(C));
    }

    if (RE)
      for (const SkipNote &N : Skips) {
        if (!N.Always && Used.count(N.U))
          continue; // Joined a candidate after all (e.g. as propagator).
        auto B = RE->missed("plan", "enum-rejected")
                     .atRoot(*N.U->Members.front())
                     .arg("reason", N.Reason);
        if (N.HasBenefit)
          B.arg("benefit", N.Benefit)
              .arg("threshold", "benefit must be positive");
      }
    return Plan;
  }

  const ModuleAnalysis &MA;
  const PlannerConfig &Config;
  std::vector<std::unique_ptr<Unit>> UnitStorage;
  std::map<RootInfo *, Unit *> UnitOf;
  std::map<Unit *, Unit *> Forwarded;
  std::map<std::string, std::vector<Unit *>> ShareGroups;
};

} // namespace

EnumerationPlan ade::core::planEnumeration(const ModuleAnalysis &MA,
                                           const PlannerConfig &Config) {
  return Planner(MA, Config).run();
}
