//===- Transform.h - The enumeration transformation -------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Applies an EnumerationPlan to the module (SIII-B): allocates one
/// enumeration global per candidate, rewrites the key (and propagated
/// element) types of member collections to idx, and patches every recorded
/// use with enc/dec/add translations. With redundant translation
/// elimination enabled (SIII-C), identifier values are propagated through
/// structured merges and translations whose source is already an
/// identifier are skipped, realizing the three rewrite rules; with RTE
/// disabled the naive level of indirection of Listing 2 is produced
/// (the RQ3 ablation).
///
/// Unions between sets of different enumerations (possible under noshare
/// directives) are expanded into element-wise translate-and-insert loops.
///
/// Finally, collection selection (SIII-H) assigns specialized
/// implementations: enumerated sets/maps default to BitSet/BitMap,
/// overridable per collection via select directives and per run via
/// SelectionConfig (ade-sparse etc.).
///
//===----------------------------------------------------------------------===//

#ifndef ADE_CORE_TRANSFORM_H
#define ADE_CORE_TRANSFORM_H

#include "core/Plan.h"

namespace ade {
namespace core {

/// Transformation knobs.
struct TransformConfig {
  /// SIII-C redundant translation elimination (RQ3 ablation knob).
  bool EnableRTE = true;
};

/// Implementation selection knobs (SIII-H).
struct SelectionConfig {
  /// Implementation for enumerated sets (BitSet, or SparseBitSet for the
  /// ade-sparse configuration).
  ir::Selection EnumeratedSet = ir::Selection::BitSet;
  /// Implementation for enumerated maps.
  ir::Selection EnumeratedMap = ir::Selection::BitMap;
};

/// Statistics for tests and reporting.
struct TransformResult {
  unsigned EnumerationsCreated = 0;
  unsigned EncInserted = 0;
  unsigned DecInserted = 0;
  unsigned AddInserted = 0;
  unsigned TranslationsSkipped = 0; // RTE-eliminated sites.
  unsigned UnionsExpanded = 0;
};

/// Applies \p Plan to the analyzed module. Invalidates \p MA's use sets
/// (the IR changes underneath them).
TransformResult applyEnumeration(ModuleAnalysis &MA,
                                 const EnumerationPlan &Plan,
                                 const TransformConfig &Config = {});

/// Applies collection selection to every root: enumerated collections get
/// the specialized implementations, select directives override everywhere.
void applySelection(ModuleAnalysis &MA, const EnumerationPlan &Plan,
                    const SelectionConfig &Config = {});

} // namespace core
} // namespace ade

#endif // ADE_CORE_TRANSFORM_H
