//===- Transform.h - The enumeration transformation -------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Applies an EnumerationPlan to the module (SIII-B): allocates one
/// enumeration global per candidate, rewrites the key (and propagated
/// element) types of member collections to idx, and patches every recorded
/// use with enc/dec/add translations. With redundant translation
/// elimination enabled (SIII-C), identifier values are propagated through
/// structured merges and translations whose source is already an
/// identifier are skipped, realizing the three rewrite rules; with RTE
/// disabled the naive level of indirection of Listing 2 is produced
/// (the RQ3 ablation).
///
/// Unions between sets of different enumerations (possible under noshare
/// directives) are expanded into element-wise translate-and-insert loops.
///
/// Finally, collection selection (SIII-H) assigns specialized
/// implementations: enumerated sets/maps default to BitSet/BitMap,
/// overridable per collection via select directives and per run via
/// SelectionConfig (ade-sparse etc.).
///
//===----------------------------------------------------------------------===//

#ifndef ADE_CORE_TRANSFORM_H
#define ADE_CORE_TRANSFORM_H

#include "core/Plan.h"

namespace ade {

namespace remarks {
class RemarkStream;
}

namespace analysis {
struct AbsIntSelectionFacts;
}

namespace core {

/// Transformation knobs.
struct TransformConfig {
  /// SIII-C redundant translation elimination (RQ3 ablation knob).
  bool EnableRTE = true;
  /// When non-null, RTE eliminations and union expansions are recorded as
  /// optimization remarks linked to their enumeration's provenance.
  RemarkEmitter *Remarks = nullptr;
};

/// One root's implementation decision and the evidence behind it
/// (`adec --selection-report`). Decisions are recorded as "selection"
/// remarks — this struct is the materialized view selectionDecisions()
/// reconstructs from a remark stream; there is no second bookkeeping
/// path.
struct SelectionDecision {
  /// RootInfo::describe() of the level decided.
  std::string Root;
  /// Matched profile origin: "function:line:col" for allocations,
  /// "@name" for globals, empty when nothing matched.
  std::string Origin;
  /// What static selection (directives + configured defaults) chose.
  ir::Selection Static = ir::Selection::Empty;
  /// What was actually applied (== Static unless the profile overrode).
  ir::Selection Final = ir::Selection::Empty;
  bool FromDirective = false;
  bool KeyEnumerated = false;
  /// True when a profile record matched this root's alias class.
  bool Profiled = false;
  uint64_t Ops = 0;
  uint64_t PeakElements = 0;
  uint64_t Probes = 0;
  uint64_t Rehashes = 0;
  /// Capacity pre-sizing hint inserted at the allocation (0 = none).
  uint64_t ReserveHint = 0;
  /// One-line explanation of the final choice.
  std::string Reason;
};

/// Implementation selection knobs (SIII-H).
struct SelectionConfig {
  /// Implementation for enumerated sets (BitSet, or SparseBitSet for the
  /// ade-sparse configuration).
  ir::Selection EnumeratedSet = ir::Selection::BitSet;
  /// Implementation for enumerated maps.
  ir::Selection EnumeratedMap = ir::Selection::BitMap;
  /// Measured run data (`adec --profile-use`). When set, measured op
  /// mixes, peaks and probe/rehash rates replace the static estimates:
  /// enumerated sets pick dense vs sparse bitsets from the measured key
  /// density, probe-heavy unenumerated tables move to the flat SIMD
  /// tables, and allocation sites with known peaks get capacity
  /// pre-sizing hints. Select directives always win over the profile.
  const interp::ProfileData *Profile = nullptr;
  /// Statically proven facts from the abstract-interpretation engine
  /// (analysis/AbsInt.h), filled in by the pipeline. Where no profile
  /// record matched, proven occupancy bounds and cover facts substitute
  /// for measurements: a class that provably covers every other key
  /// member of its candidate is selected dense, and allocation sites
  /// with a finite proven peak get the same pre-sizing reserve a
  /// profiled run would emit — with the "absint:occupancy" remark as
  /// provenance parent instead of a profile origin.
  const analysis::AbsIntSelectionFacts *AbsInt = nullptr;
  /// Minimum profiled peak element count before a pre-sizing reserve is
  /// emitted at the allocation site (tiny tables never rehash enough to
  /// pay for the extra instruction).
  uint64_t MinReserve = 16;
  /// When non-null, every decision (one "selection:select" remark per
  /// root level, plus reserve-hint remarks) is recorded with its
  /// evidence, chained to the planner's provenance.
  RemarkEmitter *Remarks = nullptr;
};

/// Statistics for tests and reporting.
struct TransformResult {
  unsigned EnumerationsCreated = 0;
  unsigned EncInserted = 0;
  unsigned DecInserted = 0;
  unsigned AddInserted = 0;
  unsigned TranslationsSkipped = 0; // RTE-eliminated sites.
  unsigned UnionsExpanded = 0;
};

/// Applies \p Plan to the analyzed module. Invalidates \p MA's use sets
/// (the IR changes underneath them).
TransformResult applyEnumeration(ModuleAnalysis &MA,
                                 const EnumerationPlan &Plan,
                                 const TransformConfig &Config = {});

/// Applies collection selection to every root: enumerated collections get
/// the specialized implementations, select directives override everywhere.
void applySelection(ModuleAnalysis &MA, const EnumerationPlan &Plan,
                    const SelectionConfig &Config = {});

/// Materializes the `--selection-report` rows from the "selection"
/// remarks in \p S (the single source of truth for selection decisions).
std::vector<SelectionDecision>
selectionDecisions(const remarks::RemarkStream &S);

} // namespace core
} // namespace ade

#endif // ADE_CORE_TRANSFORM_H
