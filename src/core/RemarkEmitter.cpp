//===- RemarkEmitter.cpp - IR-aware remark emission -----------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/RemarkEmitter.h"

#include "support/Casting.h"

using namespace ade;
using namespace ade::core;

ir::SrcLoc ade::core::rootLoc(const RootInfo &R) {
  if (R.TheKind == RootInfo::Kind::Nested && R.Parent)
    return rootLoc(*R.Parent);
  if (R.Anchor)
    if (const auto *Res = dyn_cast<ir::InstResult>(R.Anchor))
      return Res->parent()->loc();
  return {};
}

const ir::Function *ade::core::rootFunction(const RootInfo &R) {
  if (R.TheKind == RootInfo::Kind::Nested && R.Parent)
    return rootFunction(*R.Parent);
  if (R.Anchor) {
    if (const auto *Res = dyn_cast<ir::InstResult>(R.Anchor))
      return Res->parent()->parentFunction();
    if (const auto *Param = dyn_cast<ir::Argument>(R.Anchor))
      return Param->parent();
  }
  return nullptr;
}

RemarkEmitter::Builder &RemarkEmitter::Builder::at(const ir::Instruction *I) {
  if (!I)
    return *this;
  loc(I->loc());
  if (const ir::Function *F = I->parentFunction())
    func(F->name());
  return *this;
}

RemarkEmitter::Builder &
RemarkEmitter::Builder::atRoot(const RootInfo &Root) {
  loc(rootLoc(Root));
  if (const ir::Function *F = rootFunction(Root))
    func(F->name());
  arg("root", Root.describe());
  return *this;
}
