//===- Cloning.cpp - Function cloning for mixed callers -------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Cloning.h"

#include "core/Analysis.h"
#include "core/RemarkEmitter.h"
#include "stats/Statistic.h"
#include "support/ErrorHandling.h"

#include <map>
#include <set>
#include <vector>

using namespace ade;
using namespace ade::core;
using namespace ade::ir;

ADE_STATISTIC(NumFunctionsCloned, "ade-cloning",
              "Functions cloned for callers that disagree on enumeration");

namespace {

using ValueMap = std::map<const Value *, Value *>;

void copyRegion(const Region &Src, Region &Dst, ValueMap &VM) {
  for (unsigned I = 0; I != Src.numArgs(); ++I) {
    const BlockArg *Old = Src.arg(I);
    VM[Old] = Dst.addArg(Old->type(), Old->name());
  }
  for (const Instruction *I : Src) {
    std::vector<Type *> ResultTypes;
    for (unsigned R = 0; R != I->numResults(); ++R)
      ResultTypes.push_back(I->result(R)->type());
    std::vector<Value *> Operands;
    for (const Value *Op : I->operands())
      Operands.push_back(VM.at(Op));
    auto Clone = std::make_unique<Instruction>(I->op(), ResultTypes,
                                               Operands, I->numRegions());
    Clone->setIntAttr(I->intAttr());
    Clone->setFpAttr(I->fpAttr());
    Clone->setSymbol(I->symbol());
    Clone->setLoc(I->loc());
    if (const Directive *D = I->directive())
      Clone->setDirective(*D);
    for (unsigned R = 0; R != I->numResults(); ++R) {
      Clone->result(R)->setName(I->result(R)->name());
      VM[I->result(R)] = Clone->result(R);
    }
    Instruction *Placed = Dst.push(std::move(Clone));
    for (unsigned R = 0; R != I->numRegions(); ++R)
      copyRegion(*I->region(R), *Placed->region(R), VM);
  }
}

/// True if \p F contains a direct call to itself (cloning such functions
/// would leave the recursive call targeting the original).
bool callsItself(const Function &F, const Region &R) {
  for (const Instruction *I : R) {
    if (I->op() == Opcode::Call && I->symbol() == F.name())
      return true;
    for (unsigned Idx = 0; Idx != I->numRegions(); ++Idx)
      if (callsItself(F, *I->region(Idx)))
        return true;
  }
  return false;
}

void collectCalls(const Region &R,
                  std::map<std::string, std::vector<Instruction *>> &Out) {
  for (Instruction *I : R) {
    if (I->op() == Opcode::Call)
      Out[I->symbol()].push_back(I);
    for (unsigned Idx = 0; Idx != I->numRegions(); ++Idx)
      collectCalls(*I->region(Idx), Out);
  }
}

} // namespace

Function *ade::core::cloneFunction(Module &M, const Function &F,
                                   std::string NewName) {
  assert(!F.isExternal() && "cannot clone a declaration");
  Function *Clone = M.createFunction(std::move(NewName), F.returnType());
  ValueMap VM;
  for (unsigned I = 0; I != F.numArgs(); ++I)
    VM[F.arg(I)] = Clone->addArg(F.arg(I)->type(), F.arg(I)->name());
  copyRegion(F.body(), Clone->body(), VM);
  return Clone;
}

unsigned ade::core::cloneForMixedCallers(Module &M,
                                         RemarkEmitter *Remarks) {
  // Analyze WITHOUT call-edge unification so each call site's arguments
  // keep their caller-side classes.
  ModuleAnalysis MA(M, /*UnifyCallEdges=*/false);

  std::map<std::string, std::vector<Instruction *>> CallsByName;
  for (const auto &F : M.functions())
    if (!F->isExternal())
      collectCalls(F->body(), CallsByName);

  unsigned Clones = 0;
  for (const auto &[Name, Sites] : CallsByName) {
    Function *Callee = M.getFunction(Name);
    if (!Callee || Callee->isExternal() || Sites.size() < 2)
      continue;
    bool HasCollParam = false;
    for (unsigned I = 0; I != Callee->numArgs(); ++I)
      HasCollParam |= Callee->arg(I)->type()->isCollection();
    if (!HasCollParam)
      continue;
    if (callsItself(*Callee, Callee->body())) {
      if (Remarks)
        Remarks->missed("cloning", "skipped-recursive")
            .func(Callee->name())
            .arg("callee", Callee->name())
            .arg("reason", "callee calls itself; a clone would leave the "
                           "recursive call targeting the original");
      continue;
    }

    // Group call sites by the alias classes of their collection args.
    struct Group {
      std::vector<size_t> Signature;
      std::vector<Instruction *> Members;
      bool Escapes = false;
    };
    std::vector<Group> Groups;
    bool Analyzable = true;
    for (Instruction *Call : Sites) {
      Group Candidate;
      for (unsigned A = 0; A != Call->numOperands(); ++A) {
        Value *Arg = Call->operand(A);
        if (!Arg->type()->isCollection())
          continue;
        RootInfo *Root = MA.rootOf(Arg);
        if (!Root) {
          Analyzable = false;
          break;
        }
        Candidate.Signature.push_back(MA.aliasClassOf(Root));
        Candidate.Escapes |= Root->Escapes;
      }
      if (!Analyzable)
        break;
      bool Placed = false;
      for (Group &G : Groups) {
        if (G.Signature == Candidate.Signature) {
          G.Members.push_back(Call);
          G.Escapes |= Candidate.Escapes;
          Placed = true;
          break;
        }
      }
      if (!Placed) {
        Candidate.Members.push_back(Call);
        Groups.push_back(std::move(Candidate));
      }
    }
    if (!Analyzable || Groups.size() < 2)
      continue;
    // Clone only when the groups genuinely disagree on transformability;
    // otherwise unification merges them soundly and a clone would only
    // split one enumeration into several.
    bool AnyEscaping = false, AnyClean = false;
    for (const Group &G : Groups) {
      AnyEscaping |= G.Escapes;
      AnyClean |= !G.Escapes;
    }
    if (!AnyEscaping || !AnyClean) {
      if (Remarks)
        Remarks->missed("cloning", "unified")
            .func(Callee->name())
            .arg("callee", Callee->name())
            .arg("callGroups", uint64_t(Groups.size()))
            .arg("reason", "all call-site groups agree on "
                           "transformability; unifying them into one "
                           "enumeration class is sound");
      continue;
    }
    // Keep the original for the first group; clone for the rest.
    for (size_t GI = 1; GI != Groups.size(); ++GI) {
      Function *Clone = cloneFunction(
          M, *Callee, M.uniqueName(Callee->name() + ".ade_clone"));
      for (Instruction *Call : Groups[GI].Members)
        Call->setSymbol(Clone->name());
      if (Remarks)
        Remarks->passed("cloning", "cloned")
            .at(Groups[GI].Members.front())
            .arg("callee", Callee->name())
            .arg("clone", Clone->name())
            .arg("callSites", uint64_t(Groups[GI].Members.size()))
            .arg("groupEscapes", Groups[GI].Escapes)
            .arg("reason", "call sites disagree on transformability; the "
                           "clean copies stay enumerable");
      ++Clones;
      ++NumFunctionsCloned;
    }
  }
  return Clones;
}
