//===- FuzzTest.cpp - Generator, oracle and reducer tests -----------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reduce.h"
#include "ir/IR.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace ade;
using namespace ade::fuzz;

namespace {

std::string generate(uint64_t Seed, bool Hostile = false) {
  GeneratorOptions Opts;
  Opts.Seed = Seed;
  Opts.Hostile = Hostile;
  return generateProgram(Opts);
}

std::string readFixture(const char *Rel) {
  std::ifstream In(std::string(ADE_SOURCE_DIR) + "/" + Rel);
  EXPECT_TRUE(In.good()) << Rel;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

size_t countLines(const std::string &Text) {
  size_t Lines = 0;
  for (char C : Text)
    if (C == '\n')
      ++Lines;
  return Lines;
}

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST(FuzzGeneratorTest, SameSeedIsByteIdentical) {
  EXPECT_EQ(generate(42), generate(42));
  EXPECT_EQ(generate(7, /*Hostile=*/true), generate(7, /*Hostile=*/true));
}

TEST(FuzzGeneratorTest, DistinctSeedsDiffer) {
  EXPECT_NE(generate(1), generate(2));
}

TEST(FuzzGeneratorTest, TwoHundredProgramsParseAndVerify) {
  for (uint64_t Seed = 0; Seed != 200; ++Seed) {
    std::string Program = generate(Seed);
    std::vector<std::string> Errors;
    auto M = parser::parseModule(Program, Errors);
    ASSERT_TRUE(M) << "seed " << Seed << ": "
                   << (Errors.empty() ? "?" : Errors.front());
    Errors.clear();
    EXPECT_TRUE(ir::verifyModule(*M, Errors))
        << "seed " << Seed << ": "
        << (Errors.empty() ? "?" : Errors.front());
  }
}

TEST(FuzzGeneratorTest, HostileProgramsNeverCrashTheFrontend) {
  // Hostile programs are deliberately damaged; parse and (when they
  // still parse) verification must diagnose, not crash.
  for (uint64_t Seed = 0; Seed != 200; ++Seed) {
    std::string Program = generate(Seed, /*Hostile=*/true);
    std::vector<std::string> Errors;
    auto M = parser::parseModule(Program, Errors);
    if (M) {
      Errors.clear();
      ir::verifyModule(*M, Errors);
    }
  }
}

//===----------------------------------------------------------------------===//
// Oracle
//===----------------------------------------------------------------------===//

TEST(FuzzOracleTest, CleanOnGeneratedPrograms) {
  for (uint64_t Seed = 0; Seed != 40; ++Seed) {
    OracleResult R = runOracle(generate(Seed));
    EXPECT_EQ(R.Kind, FindingKind::None)
        << "seed " << Seed << ": " << findingKindName(R.Kind) << " ("
        << R.Variant << "): " << R.Detail;
  }
}

TEST(FuzzOracleTest, FlagsParseErrors) {
  OracleResult R = runOracle("fn @main( {");
  EXPECT_EQ(R.Kind, FindingKind::ParseError);
}

TEST(FuzzOracleTest, DetectsPlantedBug) {
  OracleOptions Opts;
  Opts.PlantBug = true;
  unsigned Detections = 0;
  for (uint64_t Seed = 0; Seed != 20; ++Seed) {
    OracleResult R = runOracle(generate(Seed), Opts);
    // Planting never corrupts the module; it either diverges or the
    // program had no insert to erase.
    EXPECT_NE(R.Kind, FindingKind::VerifyError) << "seed " << Seed;
    EXPECT_NE(R.Kind, FindingKind::ParseError) << "seed " << Seed;
    if (R.Kind == FindingKind::Divergence)
      ++Detections;
  }
  EXPECT_GT(Detections, 0u);
}

TEST(FuzzOracleTest, DetectsPlantedBugInFixture) {
  std::string Fixture = readFixture("examples/fuzz/planted.memoir");
  EXPECT_EQ(runOracle(Fixture).Kind, FindingKind::None);
  OracleOptions Opts;
  Opts.PlantBug = true;
  OracleResult R = runOracle(Fixture, Opts);
  EXPECT_EQ(R.Kind, FindingKind::Divergence) << R.Detail;
}

TEST(FuzzOracleTest, GuardRailsStopRunawayPrograms) {
  std::string Fixture = readFixture("examples/fuzz/runaway.memoir");
  OracleOptions Opts;
  Opts.MaxSteps = 100000;
  OracleResult R = runOracle(Fixture, Opts);
  EXPECT_EQ(R.Kind, FindingKind::RuntimeError);
  EXPECT_EQ(R.Variant, "baseline");
  EXPECT_NE(R.Detail.find("--max-steps"), std::string::npos) << R.Detail;
}

//===----------------------------------------------------------------------===//
// Reducer
//===----------------------------------------------------------------------===//

TEST(FuzzReduceTest, GoldenPlantedFixtureShrinksBelowBound) {
  std::string Fixture = readFixture("examples/fuzz/planted.memoir");
  ReduceOptions Opts;
  Opts.Oracle.PlantBug = true;
  ReduceResult R = reduceProgram(Fixture, Opts);
  EXPECT_EQ(R.Kind, FindingKind::Divergence);
  EXPECT_LT(countLines(R.Reduced), 30u) << R.Reduced;
  // The minimized repro must still fail the same way.
  OracleResult Check = runOracle(R.Reduced, Opts.Oracle);
  EXPECT_EQ(Check.Kind, FindingKind::Divergence) << R.Reduced;
  // ... and must still be healthy without the planted bug.
  EXPECT_EQ(runOracle(R.Reduced).Kind, FindingKind::None) << R.Reduced;
}

TEST(FuzzReduceTest, CleanInputIsNotReduced) {
  std::string Fixture = readFixture("examples/fuzz/planted.memoir");
  ReduceResult R = reduceProgram(Fixture);
  EXPECT_EQ(R.Kind, FindingKind::None);
  EXPECT_EQ(R.Reduced, Fixture);
}

TEST(FuzzReduceTest, PreservesRuntimeErrorFindings) {
  // A program whose only defect is an unguarded map read: the reducer
  // must keep the read (and the map) while stripping the noise.
  const char *Src = R"(fn @main() -> u64 {
  %zero = const 0 : u64
  %one = const 1 : u64
  %noise0 = add %zero, %one
  %noise1 = mul %noise0, %one
  %m = new Map<u64, u64>
  %q = new Seq<u64>
  append %q, %noise1
  %v = read %m, %one
  ret %v
}
)";
  ReduceResult R = reduceProgram(Src);
  EXPECT_EQ(R.Kind, FindingKind::RuntimeError);
  OracleResult Check = runOracle(R.Reduced);
  EXPECT_EQ(Check.Kind, FindingKind::RuntimeError) << R.Reduced;
  EXPECT_LT(R.Reduced.size(), std::string(Src).size());
}

} // namespace
