//===- ParserTest.cpp -----------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Parser tests: every construct of the textual syntax, error diagnostics,
/// directive handling and printer<->parser round-trips.
///
//===----------------------------------------------------------------------===//

#include "ir/IR.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace ade;
using namespace ade::ir;

namespace {

std::unique_ptr<Module> parseOk(std::string_view Src) {
  std::vector<std::string> Errors;
  auto M = parser::parseModule(Src, Errors);
  EXPECT_TRUE(M != nullptr) << (Errors.empty() ? "?" : Errors[0]);
  if (M) {
    std::vector<std::string> VErrors;
    EXPECT_TRUE(verifyModule(*M, VErrors))
        << (VErrors.empty() ? "?" : VErrors[0]);
  }
  return M;
}

std::string parseError(std::string_view Src) {
  std::vector<std::string> Errors;
  auto M = parser::parseModule(Src, Errors);
  EXPECT_EQ(M, nullptr) << "expected a parse failure";
  return Errors.empty() ? "" : Errors[0];
}

TEST(Parser, EmptyFunction) {
  auto M = parseOk("fn @main() {\n  ret\n}\n");
  Function *F = M->getFunction("main");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->body().size(), 1u);
  EXPECT_EQ(F->body().back()->op(), Opcode::Ret);
}

TEST(Parser, ArgumentsAndReturn) {
  auto M = parseOk("fn @id(%x: u64) -> u64 {\n  ret %x\n}\n");
  Function *F = M->getFunction("id");
  ASSERT_EQ(F->numArgs(), 1u);
  EXPECT_EQ(F->arg(0)->name(), "x");
  EXPECT_EQ(F->returnType()->str(), "u64");
}

TEST(Parser, ConstantsOfEveryKind) {
  auto M = parseOk(R"(fn @f() {
  %a = const 5 : u32
  %b = const -3 : i64
  %c = const 1.5 : f64
  %d = const true
  %e = const 7 : idx
  %p = const 42 : ptr
  ret
})");
  Function *F = M->getFunction("f");
  EXPECT_EQ(F->body().inst(0)->intAttr(), 5);
  EXPECT_EQ(F->body().inst(1)->intAttr(), -3);
  EXPECT_EQ(F->body().inst(2)->fpAttr(), 1.5);
  EXPECT_EQ(F->body().inst(3)->intAttr(), 1);
  EXPECT_TRUE(
      cast<IntType>(F->body().inst(4)->result()->type())->isIndex());
  EXPECT_TRUE(isa<PtrType>(F->body().inst(5)->result()->type()));
}

TEST(Parser, CollectionOps) {
  auto M = parseOk(R"(fn @f() {
  %m = new Map<u64, u32>
  %s = new Set<u64>
  %q = new Seq<u64>
  %k = const 1 : u64
  %v = const 2 : u32
  write %m, %k, %v
  %r = read %m, %k
  insert %s, %k
  %h = has %s, %k
  remove %s, %k
  %n = size %m
  clear %m
  reserve %m, %k
  append %q, %k
  %p = pop %q
  ret
})");
  EXPECT_NE(M, nullptr);
}

TEST(Parser, NestedCollectionsViaRead) {
  auto M = parseOk(R"(fn @f() {
  %pts = new Map<ptr, Set<ptr>>
  %p = const 1 : ptr
  %inner = new Set<ptr>
  write %pts, %p, %inner
  %got = read %pts, %p
  union %got, %inner
  ret
})");
  Function *F = M->getFunction("f");
  // The read result is the inner Set<ptr> collection.
  bool FoundRead = false;
  for (Instruction *I : F->body())
    if (I->op() == Opcode::Read) {
      EXPECT_EQ(I->result()->type()->str(), "Set<ptr>");
      FoundRead = true;
    }
  EXPECT_TRUE(FoundRead);
}

TEST(Parser, IfWithResults) {
  auto M = parseOk(R"(fn @f(%c: bool) -> u64 {
  %a = const 1 : u64
  %b = const 2 : u64
  %r = if %c {
    yield %a
  } else {
    yield %b
  }
  ret %r
})");
  EXPECT_NE(M, nullptr);
}

TEST(Parser, ForEachWithIter) {
  auto M = parseOk(R"(fn @sum(%in: Seq<u64>) -> u64 {
  %zero = const 0 : u64
  %total = foreach %in -> [%i, %v] iter(%acc = %zero) {
    %next = add %acc, %v
    yield %next
  }
  ret %total
})");
  EXPECT_NE(M, nullptr);
}

TEST(Parser, ForEachOverSetBindsOneKey) {
  auto M = parseOk(R"(fn @f(%s: Set<u64>) -> u64 {
  %zero = const 0 : u64
  %total = foreach %s -> [%k] iter(%acc = %zero) {
    %next = add %acc, %k
    yield %next
  }
  ret %total
})");
  EXPECT_NE(M, nullptr);
}

TEST(Parser, ForRangeAndDoWhile) {
  auto M = parseOk(R"(fn @f() -> u64 {
  %lo = const 0 : u64
  %hi = const 10 : u64
  %zero = const 0 : u64
  %sum = forrange %lo, %hi -> [%i] iter(%acc = %zero) {
    %next = add %acc, %i
    yield %next
  }
  %one = const 1 : u64
  %final = dowhile iter(%x = %sum) {
    %dec = sub %x, %one
    %more = gt %dec, %zero
    yield %more, %dec
  }
  ret %final
})");
  EXPECT_NE(M, nullptr);
}

TEST(Parser, GlobalsAndEnumOps) {
  auto M = parseOk(R"(global @e : Enum<u64>
global @cache : Map<u64, u64>
fn @f(%v: u64) -> u64 {
  %e = gget @e
  %id = enum.add %e, %v
  %back = dec %e, %id
  %id2 = enc %e, %back
  %c = gget @cache
  gset @cache, %c
  ret %back
})");
  EXPECT_NE(M->getGlobal("e"), nullptr);
  EXPECT_NE(M->getGlobal("cache"), nullptr);
}

TEST(Parser, CallsIncludingForwardReferences) {
  auto M = parseOk(R"(fn @main() -> u64 {
  %x = const 21 : u64
  %r = call @double(%x)
  ret %r
}

fn @double(%v: u64) -> u64 {
  %two = const 2 : u64
  %r = mul %v, %two
  ret %r
})");
  EXPECT_NE(M->getFunction("double"), nullptr);
}

TEST(Parser, ExternFunctions) {
  auto M = parseOk(R"(extern fn @sink(Set<u64>)
fn @f(%s: Set<u64>) {
  call @sink(%s)
  ret
})");
  Function *Sink = M->getFunction("sink");
  ASSERT_NE(Sink, nullptr);
  EXPECT_TRUE(Sink->isExternal());
}

TEST(Parser, SelectionAnnotatedTypes) {
  auto M = parseOk(R"(fn @f() {
  %a = new Set{SwissSet}<u64>
  %b = new Map{BitMap}<idx, u32>
  %c = new Seq{Array}<f64>
  ret
})");
  Function *F = M->getFunction("f");
  EXPECT_EQ(cast<SetType>(F->body().inst(0)->result()->type())->selection(),
            Selection::SwissSet);
}

TEST(Parser, DirectivesAttachToNextNew) {
  auto M = parseOk(R"(fn @f() {
  #pragma ade enumerate noshare
  %a = new Set<u32>
  #pragma ade noenumerate select(SwissMap)
  %b = new Map<u32, u32>
  #pragma ade share group("d+e group")
  %c = new Set<u32>
  %d = new Set<u32>
  ret
})");
  Function *F = M->getFunction("f");
  const Directive *DA = F->body().inst(0)->directive();
  ASSERT_NE(DA, nullptr);
  EXPECT_EQ(DA->EnumerateMode, Directive::Enumerate::Force);
  EXPECT_TRUE(DA->NoShare);
  const Directive *DB = F->body().inst(1)->directive();
  ASSERT_NE(DB, nullptr);
  EXPECT_EQ(DB->EnumerateMode, Directive::Enumerate::Forbid);
  EXPECT_EQ(DB->Select, Selection::SwissMap);
  const Directive *DC = F->body().inst(2)->directive();
  ASSERT_NE(DC, nullptr);
  EXPECT_EQ(DC->ShareGroup, "d+e group");
  EXPECT_EQ(F->body().inst(3)->directive(), nullptr);
}

TEST(Parser, NoShareWithNamedCollection) {
  auto M = parseOk(R"(fn @f() {
  %c = new Set<u32>
  #pragma ade noshare(%c)
  %a = new Set<u32>
  ret
})");
  const Directive *D = M->getFunction("f")->body().inst(1)->directive();
  ASSERT_NE(D, nullptr);
  ASSERT_EQ(D->NoShareWith.size(), 1u);
  EXPECT_EQ(D->NoShareWith[0], "c");
}

TEST(Parser, CommentsAreIgnored) {
  auto M = parseOk(R"(// leading comment
fn @f() { // trailing
  // inner
  ret
})");
  EXPECT_NE(M, nullptr);
}

// Error diagnostics.

TEST(ParserErrors, UndefinedValue) {
  std::string E = parseError("fn @f() {\n  %x = add %a, %a\n  ret\n}\n");
  EXPECT_NE(E.find("undefined value"), std::string::npos) << E;
  EXPECT_NE(E.find("line 2"), std::string::npos) << E;
}

TEST(ParserErrors, UnknownOperation) {
  std::string E = parseError("fn @f() {\n  frobnicate\n  ret\n}\n");
  EXPECT_NE(E.find("unknown operation"), std::string::npos) << E;
}

TEST(ParserErrors, ReserveNeedsCollAndCount) {
  std::string E = parseError(R"(fn @f() {
  %s = new Set<u64>
  reserve %s
  ret
})");
  EXPECT_NE(E.find("reserve requires coll, count"), std::string::npos) << E;
}

TEST(ParserErrors, UnknownCallee) {
  std::string E = parseError("fn @f() {\n  call @nope()\n  ret\n}\n");
  EXPECT_NE(E.find("unknown function"), std::string::npos) << E;
}

TEST(ParserErrors, DuplicateFunction) {
  std::string E = parseError("fn @f() { ret }\nfn @f() { ret }\n");
  EXPECT_NE(E.find("duplicate function"), std::string::npos) << E;
}

TEST(ParserErrors, BadType) {
  std::string E = parseError("fn @f(%x: Wibble<u64>) { ret }\n");
  EXPECT_NE(E.find("unknown type"), std::string::npos) << E;
}

TEST(ParserErrors, ResultCountMismatch) {
  std::string E = parseError(R"(fn @f(%c: bool) {
  %a, %b = if %c {
    yield
  } else {
    yield
  }
  ret
})");
  EXPECT_NE(E.find("result names"), std::string::npos) << E;
}

TEST(ParserErrors, MissingYieldCondition) {
  std::string E = parseError(R"(fn @f() {
  dowhile {
    yield
  }
  ret
})");
  EXPECT_NE(E.find("condition"), std::string::npos) << E;
}

// Round-trip: parse -> print -> parse -> print must be a fixpoint.

void expectRoundTrip(std::string_view Src) {
  auto M1 = parseOk(Src);
  ASSERT_NE(M1, nullptr);
  std::string P1 = toString(*M1);
  std::vector<std::string> Errors;
  auto M2 = parser::parseModule(P1, Errors);
  ASSERT_NE(M2, nullptr) << "reparse failed: "
                         << (Errors.empty() ? P1 : Errors[0]);
  std::string P2 = toString(*M2);
  EXPECT_EQ(P1, P2);
}

TEST(RoundTrip, ReservePreSizingHint) {
  expectRoundTrip(R"(fn @f() {
  %s = new Set<u64>
  %n = const 1024 : u64
  reserve %s, %n
  ret
})");
}

TEST(RoundTrip, Histogram) {
  expectRoundTrip(R"(fn @count(%input: Seq<f32>) {
  %hist = new Map<f32, u32>
  foreach %input -> [%i, %val] {
    %cond = has %hist, %val
    %freq0 = if %cond {
      %freq = read %hist, %val
      yield %freq
    } else {
      insert %hist, %val
      %z = const 0 : u32
      yield %z
    }
    %one = const 1 : u32
    %freq1 = add %freq0, %one
    write %hist, %val, %freq1
    yield
  }
  ret
})");
}

TEST(RoundTrip, UnionFindLoop) {
  // Listing 3: find parent in union-find.
  expectRoundTrip(R"(fn @find(%uf: Map<u64, u64>, %v: u64) -> u64 {
  %found = dowhile iter(%curr = %v) {
    %parent = read %uf, %curr
    %not_done = ne %parent, %curr
    yield %not_done, %parent
  }
  ret %found
})");
}

TEST(RoundTrip, DirectivesAndGlobals) {
  expectRoundTrip(R"(global @e : Enum<u64>
fn @f() {
  #pragma ade enumerate noshare select(SparseBitSet)
  %s = new Set<u64>
  %e = gget @e
  %k = const 3 : u64
  %id = enum.add %e, %k
  %b = dec %e, %id
  insert %s, %b
  ret
})");
}

TEST(RoundTrip, EverythingKitchenSink) {
  expectRoundTrip(R"(global @g : Map<u64, u64>
extern fn @sink(Set<u64>)
fn @main(%n: u64) -> u64 {
  %zero = const 0 : u64
  %one = const 1 : u64
  %s = new Set{FlatSet}<u64>
  %total = forrange %zero, %n -> [%i] iter(%acc = %zero) {
    insert %s, %i
    %isEven = rem %i, %one
    %c = eq %isEven, %zero
    %inc = if %c {
      yield %one
    } else {
      yield %zero
    }
    %next = add %acc, %inc
    yield %next
  }
  %sz = size %s
  %r = max %total, %sz
  ret %r
})");
}

} // namespace
