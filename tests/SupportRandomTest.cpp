//===- SupportRandomTest.cpp ----------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Hashing.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>

using ade::Rng;

namespace {

TEST(Rng, DeterministicForSeed) {
  Rng A(7), B(7);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng R(3);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng R(4);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 1000; ++I)
    Seen.insert(R.nextBelow(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(Rng, NextDoubleIsUnitInterval) {
  Rng R(5);
  double Sum = 0;
  for (int I = 0; I != 10000; ++I) {
    double D = R.nextDouble();
    ASSERT_GE(D, 0.0);
    ASSERT_LT(D, 1.0);
    Sum += D;
  }
  // Mean of U(0,1) should be close to 0.5.
  EXPECT_NEAR(Sum / 10000, 0.5, 0.02);
}

TEST(Hashing, MixedValuesSpread) {
  // Consecutive integers must not collide and should differ in many bits.
  std::set<uint64_t> Hashes;
  for (uint64_t I = 0; I != 1000; ++I)
    Hashes.insert(ade::hashU64(I));
  EXPECT_EQ(Hashes.size(), 1000u);
}

TEST(Hashing, CombineOrderSensitive) {
  uint64_t AB = ade::hashCombine(ade::hashU64(1), 2);
  uint64_t BA = ade::hashCombine(ade::hashU64(2), 1);
  EXPECT_NE(AB, BA);
}

TEST(Hashing, BytesMatchesKnownProperties) {
  EXPECT_EQ(ade::hashBytes(""), 0xcbf29ce484222325ULL); // FNV offset basis.
  EXPECT_NE(ade::hashBytes("abc"), ade::hashBytes("acb"));
}

} // namespace
