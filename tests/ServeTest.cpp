//===- ServeTest.cpp ------------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The serving runtime: fault-plan determinism, workload stream
/// generation, the bounded admission queue, the sharded concurrent
/// collections (reader/writer invariants under concurrency, epoch-based
/// reclamation torture), cooperative cancellation and wall-clock
/// deadlines, and the differential client-vs-oracle soak that must be
/// bit-identical under fault injection. The concurrency tests double as
/// the ThreadSanitizer regression suite (the tsan CI job runs this
/// binary).
///
//===----------------------------------------------------------------------===//

#include "interp/InterpError.h"
#include "parser/Parser.h"
#include "runtime/Telemetry.h"
#include "serve/Client.h"
#include "serve/Span.h"
#include "stats/Statistic.h"
#include "support/Json.h"
#include "support/RawOstream.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace ade;
using namespace ade::serve;

// File-static registered statistic the thread-safety test hammers; the
// registry and counter must tolerate concurrent bumps (TSan-checked).
ADE_STATISTIC(ServeTestHammered, "serve-test",
              "counter hammered by the telemetry thread-safety test");

namespace {

//===----------------------------------------------------------------------===//
// FaultPlan
//===----------------------------------------------------------------------===//

TEST(FaultPlan, DefaultIsOff) {
  FaultPlan P;
  EXPECT_FALSE(P.enabled());
  EXPECT_EQ(P.describe(), "off");
  FaultDecision D = P.decide(123);
  EXPECT_EQ(D.DelayMicros, 0u);
  EXPECT_EQ(D.StormSpins, 0u);
  EXPECT_FALSE(D.ExhaustBudget);
}

TEST(FaultPlan, ParseRoundTrip) {
  FaultPlan P;
  std::string Error;
  ASSERT_TRUE(FaultPlan::parse(
      "seed=42,delay=0.25:100,storm=0.5:32,budget=0.125", P, &Error))
      << Error;
  EXPECT_TRUE(P.enabled());
  EXPECT_EQ(P.seed(), 42u);
  FaultPlan Q;
  ASSERT_TRUE(FaultPlan::parse(P.describe(), Q, &Error)) << Error;
  for (uint64_t Id = 0; Id != 1000; ++Id) {
    FaultDecision A = P.decide(Id), B = Q.decide(Id);
    EXPECT_EQ(A.DelayMicros, B.DelayMicros);
    EXPECT_EQ(A.StormSpins, B.StormSpins);
    EXPECT_EQ(A.ExhaustBudget, B.ExhaustBudget);
  }
}

TEST(FaultPlan, DecisionsArePureInSeedAndId) {
  FaultPlan P;
  std::string Error;
  ASSERT_TRUE(FaultPlan::parse("seed=7,budget=0.5", P, &Error)) << Error;
  FaultPlan Same;
  ASSERT_TRUE(FaultPlan::parse("seed=7,budget=0.5", Same, &Error));
  FaultPlan Other;
  ASSERT_TRUE(FaultPlan::parse("seed=8,budget=0.5", Other, &Error));
  unsigned Differs = 0;
  for (uint64_t Id = 0; Id != 4096; ++Id) {
    EXPECT_EQ(P.decide(Id).ExhaustBudget, Same.decide(Id).ExhaustBudget);
    if (P.decide(Id).ExhaustBudget != Other.decide(Id).ExhaustBudget)
      ++Differs;
  }
  EXPECT_GT(Differs, 0u) << "seed must influence decisions";
}

TEST(FaultPlan, ObservedRateTracksProbability) {
  FaultPlan P;
  std::string Error;
  ASSERT_TRUE(FaultPlan::parse("seed=1,budget=0.02", P, &Error)) << Error;
  uint64_t Hits = 0;
  const uint64_t N = 100000;
  for (uint64_t Id = 0; Id != N; ++Id)
    Hits += P.decide(Id).ExhaustBudget;
  EXPECT_GT(Hits, N / 100 / 2);   // > 1%
  EXPECT_LT(Hits, N * 4 / 100);   // < 4%
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  FaultPlan P;
  std::string Error;
  EXPECT_FALSE(FaultPlan::parse("bogus=1", P, &Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(FaultPlan::parse("delay=notanumber", P, &Error));
  EXPECT_FALSE(FaultPlan::parse("budget=2.5", P, &Error));
}

//===----------------------------------------------------------------------===//
// Workload streams
//===----------------------------------------------------------------------===//

TEST(Workload, StreamsAreDeterministic) {
  WorkloadSpec Spec;
  Spec.Seed = 99;
  std::vector<Request> A = buildStream(Spec, 3);
  std::vector<Request> B = buildStream(Spec, 3);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Id, B[I].Id);
    EXPECT_EQ(A[I].Op, B[I].Op);
    EXPECT_EQ(A[I].Key, B[I].Key);
  }
  Spec.Seed = 100;
  std::vector<Request> C = buildStream(Spec, 3);
  bool Same = true;
  for (size_t I = 0; I != A.size() && Same; ++I)
    Same = A[I].Key == C[I].Key;
  EXPECT_FALSE(Same) << "seed must influence the stream";
}

TEST(Workload, PhaseStructure) {
  WorkloadSpec Spec;
  std::vector<Request> S = buildStream(Spec, 0);
  ASSERT_EQ(S.size(), size_t(Spec.InsertsPerStream + Spec.ReadsPerStream));
  uint32_t Boundary = phaseBoundary(Spec);
  for (uint32_t I = 0; I != Boundary; ++I)
    EXPECT_EQ(S[I].Op, RequestOp::BulkInsert);
  for (uint32_t I = Boundary; I != S.size(); ++I) {
    EXPECT_NE(S[I].Op, RequestOp::BulkInsert);
    EXPECT_LT(S[I].Key, Spec.Geo.KeyUniverse);
  }
  // Ids encode (stream, seq) uniquely.
  for (uint32_t I = 0; I != S.size(); ++I) {
    EXPECT_EQ(S[I].Stream, 0u);
    EXPECT_EQ(S[I].SeqInStream, I);
    EXPECT_EQ(S[I].Id, requestId(0, I));
  }
}

TEST(Workload, DigestSensitivity) {
  std::vector<Response> A(3), B(3);
  for (unsigned I = 0; I != 3; ++I) {
    A[I].Id = B[I].Id = I;
    A[I].Status = B[I].Status = ResponseStatus::Ok;
    A[I].Value = B[I].Value = I * 10;
  }
  EXPECT_EQ(streamDigest(A), streamDigest(B));
  B[1].Value ^= 1;
  EXPECT_NE(streamDigest(A), streamDigest(B));
  B[1].Value ^= 1;
  B[2].Status = ResponseStatus::Budget;
  EXPECT_NE(streamDigest(A), streamDigest(B));
}

//===----------------------------------------------------------------------===//
// BoundedQueue
//===----------------------------------------------------------------------===//

TEST(BoundedQueue, CapacityAndOrder) {
  BoundedQueue<int> Q(2);
  size_t Depth = 0;
  EXPECT_TRUE(Q.tryPush(1, &Depth));
  EXPECT_TRUE(Q.tryPush(2, &Depth));
  EXPECT_FALSE(Q.tryPush(3, &Depth)) << "full queue must shed";
  EXPECT_EQ(Q.depth(), 2u);
  int V = 0;
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 1);
  EXPECT_TRUE(Q.tryPush(3, &Depth));
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 2);
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 3);
}

TEST(BoundedQueue, CloseDrainsThenStops) {
  BoundedQueue<int> Q(4);
  EXPECT_TRUE(Q.tryPush(7, nullptr));
  Q.close();
  EXPECT_FALSE(Q.tryPush(8, nullptr)) << "closed queue rejects pushes";
  int V = 0;
  EXPECT_TRUE(Q.pop(V)) << "close drains queued items first";
  EXPECT_EQ(V, 7);
  EXPECT_FALSE(Q.pop(V)) << "empty closed queue returns false";
}

TEST(BoundedQueue, PopBlocksUntilPush) {
  BoundedQueue<int> Q(1);
  std::atomic<int> Got{0};
  std::thread T([&] {
    int V = 0;
    if (Q.pop(V))
      Got.store(V);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(Q.tryPush(42, nullptr));
  T.join();
  EXPECT_EQ(Got.load(), 42);
}

//===----------------------------------------------------------------------===//
// Sharded concurrent collections
//===----------------------------------------------------------------------===//

TEST(ShardedSwissMap, Basics) {
  EpochDomain D;
  ShardedSwissMap M(D, 8);
  uint64_t V = 0;
  EXPECT_FALSE(M.get(1, V));
  EXPECT_TRUE(M.insert(1, 100));
  EXPECT_FALSE(M.insert(1, 200)) << "duplicate insert must not overwrite";
  ASSERT_TRUE(M.get(1, V));
  EXPECT_EQ(V, 100u);
  M.set(1, 300);
  ASSERT_TRUE(M.get(1, V));
  EXPECT_EQ(V, 300u);
  EXPECT_EQ(M.size(), 1u);
  EXPECT_TRUE(M.remove(1));
  EXPECT_FALSE(M.remove(1));
  EXPECT_FALSE(M.has(1));
  EXPECT_EQ(M.size(), 0u);
  // Reinsert after remove (tombstones are skipped, never reused).
  EXPECT_TRUE(M.insert(1, 400));
  ASSERT_TRUE(M.get(1, V));
  EXPECT_EQ(V, 400u);
}

TEST(ShardedSwissMap, GrowthKeepsEveryKey) {
  EpochDomain D;
  ShardedSwissMap M(D, 4);
  const uint64_t N = 20000;
  for (uint64_t K = 0; K != N; ++K)
    M.set(K, valueOf(K));
  EXPECT_EQ(M.size(), N);
  EXPECT_GT(M.rehashes(), 0u);
  for (uint64_t K = 0; K != N; ++K) {
    uint64_t V = 0;
    ASSERT_TRUE(M.get(K, V)) << "key " << K;
    EXPECT_EQ(V, valueOf(K));
  }
  // With no pinned readers, repeated collects reclaim every retired
  // table (3 rounds: observe, advance past, free).
  for (int I = 0; I != 4; ++I)
    D.collect();
  EXPECT_EQ(D.retiredCount(), 0u);
}

TEST(ShardedSwissMap, TombstoneChurnTriggersRehash) {
  EpochDomain D;
  ShardedSwissMap M(D, 1);
  // Insert/remove cycles accumulate tombstones that count toward the
  // 7/8 growth trigger, so the table rehashes even at tiny live size.
  for (uint64_t Round = 0; Round != 2000; ++Round) {
    M.set(Round, Round);
    EXPECT_TRUE(M.remove(Round));
  }
  EXPECT_EQ(M.size(), 0u);
  EXPECT_GT(M.rehashes(), 0u);
  M.set(5, 55);
  uint64_t V = 0;
  ASSERT_TRUE(M.get(5, V));
  EXPECT_EQ(V, 55u);
}

TEST(ShardedHashSet, Basics) {
  EpochDomain D;
  ShardedHashSet S(D, 8);
  EXPECT_FALSE(S.has(9));
  EXPECT_TRUE(S.insert(9));
  EXPECT_FALSE(S.insert(9));
  EXPECT_TRUE(S.has(9));
  EXPECT_EQ(S.size(), 1u);
  EXPECT_TRUE(S.remove(9));
  EXPECT_FALSE(S.has(9));
}

TEST(AtomicBitSet, BasicsAndGrowth) {
  EpochDomain D;
  AtomicBitSet B(D, 64);
  EXPECT_FALSE(B.contains(3));
  B.insert(3);
  EXPECT_TRUE(B.contains(3));
  // Grow well past the initial universe.
  B.insert(100000);
  EXPECT_TRUE(B.contains(100000));
  EXPECT_TRUE(B.contains(3)) << "growth must preserve existing bits";
  EXPECT_FALSE(B.contains(99999));
  B.remove(3);
  EXPECT_FALSE(B.contains(3));
}

// The central reader invariant: a lock-free get() that hits must return
// the exact value the key was published with, even while other shards
// rehash and this shard's writers insert — no torn or re-keyed slots.
TEST(ShardedSwissMap, ReadersSeeConsistentValuesUnderWriters) {
  EpochDomain D;
  ShardedSwissMap M(D, 8);
  const unsigned Writers = 4, Readers = 4;
  const uint64_t PerWriter = 8000;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Violations{0}, Hits{0};

  std::vector<std::thread> Threads;
  for (unsigned W = 0; W != Writers; ++W)
    Threads.emplace_back([&, W] {
      for (uint64_t I = 0; I != PerWriter; ++I) {
        uint64_t Key = W * PerWriter + I;
        M.set(Key, valueOf(Key));
      }
    });
  for (unsigned R = 0; R != Readers; ++R)
    Threads.emplace_back([&, R] {
      EpochDomain::Participant *P = D.registerThread();
      uint64_t X = R + 1;
      while (!Stop.load(std::memory_order_relaxed)) {
        X = X * 6364136223846793005ull + 1442695040888963407ull;
        uint64_t Key = X % (Writers * PerWriter);
        uint64_t V = 0;
        EpochDomain::Guard G(D, P);
        if (M.get(Key, V)) {
          Hits.fetch_add(1, std::memory_order_relaxed);
          if (V != valueOf(Key))
            Violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
      D.unregisterThread(P);
    });
  for (unsigned W = 0; W != Writers; ++W)
    Threads[W].join();
  Stop.store(true);
  for (unsigned R = 0; R != Readers; ++R)
    Threads[Writers + R].join();

  EXPECT_EQ(Violations.load(), 0u);
  EXPECT_GT(Hits.load(), 0u);
  EXPECT_EQ(M.size(), Writers * PerWriter);
  for (int I = 0; I != 4; ++I)
    D.collect();
  EXPECT_EQ(D.retiredCount(), 0u);
}

// Epoch reclamation torture: a writer keeps republishing an array and
// retiring the old one while pinned readers dereference whichever
// version they loaded. Every array carries a self-consistent stamp; a
// use-after-free or early reclaim shows up as a stamp mismatch (and
// under ASan as a hard error).
TEST(EpochDomain, ReclamationTorture) {
  EpochDomain D;
  constexpr size_t Words = 32;
  std::atomic<uint64_t *> Current{nullptr};
  auto makeArray = [](uint64_t Stamp) {
    uint64_t *A = new uint64_t[Words];
    for (size_t I = 0; I != Words; ++I)
      A[I] = Stamp;
    return A;
  };
  Current.store(makeArray(1), std::memory_order_release);

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Violations{0};
  const unsigned Readers = 3;
  std::vector<std::thread> Threads;
  for (unsigned R = 0; R != Readers; ++R)
    Threads.emplace_back([&] {
      EpochDomain::Participant *P = D.registerThread();
      while (!Stop.load(std::memory_order_relaxed)) {
        EpochDomain::Guard G(D, P);
        uint64_t *A = Current.load(std::memory_order_acquire);
        uint64_t First = A[0];
        for (size_t I = 1; I != Words; ++I)
          if (A[I] != First)
            Violations.fetch_add(1, std::memory_order_relaxed);
      }
      D.unregisterThread(P);
    });

  for (uint64_t Stamp = 2; Stamp != 2000; ++Stamp) {
    uint64_t *Fresh = makeArray(Stamp);
    uint64_t *Old = Current.exchange(Fresh, std::memory_order_acq_rel);
    D.retireArray(Old);
  }
  Stop.store(true);
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Violations.load(), 0u);
  for (int I = 0; I != 4; ++I)
    D.collect();
  EXPECT_EQ(D.retiredCount(), 0u);
  delete[] Current.load(std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Cooperative cancellation and wall-clock deadlines (engine level)
//===----------------------------------------------------------------------===//

const char *kSpinForever = R"(fn @main() -> u64 {
  %zero = const 0 : u64
  %one = const 1 : u64
  %r = dowhile iter(%x = %one) {
    %nx = add %x, %one
    %cont = ne %nx, %zero
    yield %cont, %nx
  }
  ret %r
})";

TEST(Cancellation, WallClockBudgetTripsBothEngines) {
  auto M = parser::parseModuleOrDie(kSpinForever);
  for (vm::EngineKind K : {vm::EngineKind::Tree, vm::EngineKind::Vm}) {
    interp::InterpOptions Opts;
    Opts.MaxWallMs = 30;
    vm::Engine E(K, *M, Opts);
    try {
      E.callByName("main", {});
      FAIL() << "unbounded loop must trip the wall-clock budget ("
             << vm::engineName(K) << ")";
    } catch (const interp::InterpError &Err) {
      EXPECT_EQ(Err.kind(), interp::InterpErrorKind::Deadline)
          << vm::engineName(K);
    }
  }
}

TEST(Cancellation, CancelCellStopsBothEngines) {
  auto M = parser::parseModuleOrDie(kSpinForever);
  for (vm::EngineKind K : {vm::EngineKind::Tree, vm::EngineKind::Vm}) {
    interp::CancelCell Cell;
    interp::InterpOptions Opts;
    Opts.Cancel = &Cell;
    vm::Engine E(K, *M, Opts);
    std::thread Canceller([&Cell] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      Cell.Cancel.store(true, std::memory_order_relaxed);
    });
    try {
      E.callByName("main", {});
      FAIL() << "cancel must stop the loop (" << vm::engineName(K) << ")";
    } catch (const interp::InterpError &Err) {
      EXPECT_EQ(Err.kind(), interp::InterpErrorKind::Deadline)
          << vm::engineName(K);
    }
    Canceller.join();
  }
}

TEST(Cancellation, ExpiredDeadlineNsTripsPromptly) {
  auto M = parser::parseModuleOrDie(kSpinForever);
  interp::CancelCell Cell;
  Cell.DeadlineNs.store(1, std::memory_order_relaxed); // long past
  interp::InterpOptions Opts;
  Opts.Cancel = &Cell;
  vm::Engine E(vm::EngineKind::Vm, *M, Opts);
  EXPECT_THROW(E.callByName("main", {}), interp::InterpError);
}

//===----------------------------------------------------------------------===//
// Server + differential oracle
//===----------------------------------------------------------------------===//

// A serve function whose step count depends on its key: keys with a
// small (key % 64) finish under tight budgets, large ones trip — the
// parity check that tree and vm count steps identically.
const char *kServeModule = R"(fn @serve(%key: u64) -> u64 {
  %m = new Map<u64, u64>
  %zero = const 0 : u64
  %mod = const 64 : u64
  %n = rem %key, %mod
  forrange %zero, %n -> [%i] {
    %v = mul %i, %key
    write %m, %i, %v
    yield
  }
  %sz = size %m
  ret %sz
}

fn @main() -> u64 {
  %k = const 100 : u64
  %r = call @serve(%k)
  ret %r
})";

WorkloadSpec smallSpec(bool ProgramCalls) {
  WorkloadSpec Spec;
  Spec.Streams = 4;
  Spec.InsertsPerStream = 16;
  Spec.BulkCount = 8;
  Spec.ReadsPerStream = 96;
  Spec.ProgramCalls = ProgramCalls;
  return Spec;
}

TEST(Server, DifferentialSoakMatchesOracle) {
  auto M = parser::parseModuleOrDie(kServeModule);
  ServeConfig Cfg;
  Cfg.Threads = 4;
  std::string Error;
  ASSERT_TRUE(FaultPlan::parse("seed=11,budget=0.05,storm=0.02:16",
                               Cfg.Faults, &Error))
      << Error;
  WorkloadSpec Spec = smallSpec(/*ProgramCalls=*/true);
  Spec.Seed = 5;

  Server S(*M, Cfg);
  ASSERT_TRUE(S.hasProgramFunction());
  ClientResult Got = runClient(S, Spec);
  S.stop();
  std::vector<uint64_t> Want = runOracle(*M, Spec, Cfg);
  EXPECT_EQ(Got.Digests, Want);
  ServerStats Stats = S.stats();
  EXPECT_EQ(Stats.Completed,
            uint64_t(Spec.Streams) *
                (Spec.InsertsPerStream + Spec.ReadsPerStream));
  EXPECT_GT(Stats.ByStatus[size_t(ResponseStatus::Budget)], 0u)
      << "a 5% budget fault plan over 448 requests should trip";
}

TEST(Server, StepBudgetParityAcrossEngines) {
  auto M = parser::parseModuleOrDie(kServeModule);
  ServeConfig Cfg;
  Cfg.Threads = 4;
  Cfg.Engine = vm::EngineKind::Vm;
  // Mid-range budget: ~half the keys finish, half trip StepBudget. The
  // digests only match if tree and vm count steps identically.
  Cfg.MaxSteps = 150;
  WorkloadSpec Spec = smallSpec(/*ProgramCalls=*/true);
  Spec.Seed = 9;
  Spec.LookupFrac = 0.3;
  Spec.GraphFrac = 0.1; // 60% program calls

  Server S(*M, Cfg);
  ClientResult Got = runClient(S, Spec);
  S.stop();
  std::vector<uint64_t> Want =
      runOracle(*M, Spec, Cfg, vm::EngineKind::Tree);
  EXPECT_EQ(Got.Digests, Want);
  uint64_t Budgets = Got.ByStatus[size_t(ResponseStatus::Budget)];
  uint64_t Oks = Got.ByStatus[size_t(ResponseStatus::Ok)];
  EXPECT_GT(Budgets, 0u) << "budget must trip for large keys";
  EXPECT_GT(Oks, 0u) << "budget must not trip for small keys";
}

TEST(Server, TreeAndVmServersAgree) {
  auto M = parser::parseModuleOrDie(kServeModule);
  WorkloadSpec Spec = smallSpec(/*ProgramCalls=*/true);
  Spec.Seed = 21;
  std::vector<uint64_t> Digests[2];
  int I = 0;
  for (vm::EngineKind K : {vm::EngineKind::Tree, vm::EngineKind::Vm}) {
    ServeConfig Cfg;
    Cfg.Threads = 2;
    Cfg.Engine = K;
    Server S(*M, Cfg);
    Digests[I++] = runClient(S, Spec).Digests;
  }
  EXPECT_EQ(Digests[0], Digests[1]);
}

TEST(Server, DeadlineExpiryIsDiagnosedNotFatal) {
  auto M = parser::parseModuleOrDie(kServeModule);
  ServeConfig Cfg;
  Cfg.Threads = 2;
  Cfg.DeadlineMs = 1;
  // Every request sleeps 5ms before executing, so every accepted
  // request is already past its 1ms deadline when it runs.
  std::string Error;
  ASSERT_TRUE(FaultPlan::parse("seed=1,delay=1.0:5000", Cfg.Faults, &Error))
      << Error;
  runtime::Telemetry Tel;
  Cfg.Tel = &Tel;
  WorkloadSpec Spec = smallSpec(/*ProgramCalls=*/false);
  Spec.Streams = 2;
  Spec.InsertsPerStream = 4;
  Spec.ReadsPerStream = 12;

  Server S(*M, Cfg);
  ClientResult Got = runClient(S, Spec);
  S.stop();
  uint64_t Total = uint64_t(Spec.Streams) *
                   (Spec.InsertsPerStream + Spec.ReadsPerStream);
  EXPECT_EQ(Got.ByStatus[size_t(ResponseStatus::Deadline)], Total)
      << "every delayed request must expire, as a response, not a crash";
  EXPECT_GT(Tel.eventCount(runtime::EventKind::GuardRail), 0u)
      << "deadline trips must reach the telemetry journal";
}

TEST(Server, SubmitAfterStopSheds) {
  auto M = parser::parseModuleOrDie(kServeModule);
  ServeConfig Cfg;
  Cfg.Threads = 1;
  Server S(*M, Cfg);
  S.stop();
  Request R;
  R.Id = 1;
  R.Op = RequestOp::PointLookup;
  EXPECT_FALSE(S.submit(R, [](const Response &) {
    FAIL() << "shed requests must not get a callback";
  }));
  EXPECT_EQ(S.stats().Shed, 1u);
}

TEST(Server, OverloadShedsAtAdmission) {
  auto M = parser::parseModuleOrDie(kServeModule);
  ServeConfig Cfg;
  Cfg.Threads = 1;
  Cfg.QueueCapacity = 1;
  // 1ms per request with a 1-deep queue: concurrent submitters outrun
  // the worker and must hit the full-queue shed path.
  std::string Error;
  ASSERT_TRUE(FaultPlan::parse("seed=1,delay=1.0:1000", Cfg.Faults, &Error))
      << Error;
  WorkloadSpec Spec = smallSpec(/*ProgramCalls=*/false);
  Spec.Streams = 2;
  Spec.InsertsPerStream = 8;
  Spec.ReadsPerStream = 56;
  ClientOptions Opts;
  Opts.RetryShed = false; // terminal sheds, counted per response
  Opts.SubmitThreads = 2;

  Server S(*M, Cfg);
  ClientResult Got = runClient(S, Spec, Opts);
  S.stop();
  ServerStats Stats = S.stats();
  EXPECT_GT(Got.ByStatus[size_t(ResponseStatus::Shed)], 0u);
  EXPECT_EQ(Stats.Shed, Got.Sheds);
  uint64_t Total = uint64_t(Spec.Streams) *
                   (Spec.InsertsPerStream + Spec.ReadsPerStream);
  EXPECT_EQ(Stats.Accepted + Got.ByStatus[size_t(ResponseStatus::Shed)],
            Total)
      << "every request either completes or sheds, exactly once";
  EXPECT_EQ(Stats.Completed, Stats.Accepted);
}

TEST(Server, ShedRetriesConvergeToOracle) {
  auto M = parser::parseModuleOrDie(kServeModule);
  ServeConfig Cfg;
  Cfg.Threads = 2;
  Cfg.QueueCapacity = 2; // tiny queue: admission rejections guaranteed
  WorkloadSpec Spec = smallSpec(/*ProgramCalls=*/false);
  Spec.Seed = 31;

  Server S(*M, Cfg);
  ClientResult Got = runClient(S, Spec); // RetryShed = true
  S.stop();
  std::vector<uint64_t> Want = runOracle(*M, Spec, Cfg);
  EXPECT_EQ(Got.Digests, Want)
      << "sheds are retried until accepted, so digests see no Shed";
  EXPECT_EQ(Got.ByStatus[size_t(ResponseStatus::Shed)], 0u);
}

//===----------------------------------------------------------------------===//
// Telemetry / statistics thread-safety (the TSan regression)
//===----------------------------------------------------------------------===//

TEST(TelemetryThreadSafety, ConcurrentCountersAndJournal) {
  runtime::Telemetry Tel;
  ServeTestHammered.reset();
  const unsigned Threads = 8;
  const uint64_t PerThread = 10000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&, T] {
      for (uint64_t I = 0; I != PerThread; ++I) {
        ++ServeTestHammered;
        if ((I & 63) == 0)
          Tel.recordShed(/*QueueDepth=*/I & 255,
                         /*RequestId=*/(uint64_t(T) << 32) | I);
        if ((I & 255) == 0)
          Tel.recordGuardRail(runtime::GuardRailKind::Wall, 100);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(ServeTestHammered.value(), Threads * PerThread);
  EXPECT_GT(Tel.eventCount(runtime::EventKind::Shed), 0u);
  EXPECT_GT(Tel.eventCount(runtime::EventKind::GuardRail), 0u);
}

TEST(TelemetryThreadSafety, StatisticRegistryIterationDuringBumps) {
  ServeTestHammered.reset();
  std::atomic<bool> Stop{false};
  std::thread Bumper([&] {
    while (!Stop.load(std::memory_order_relaxed))
      ++ServeTestHammered;
  });
  // On a single core the bumper may not have been scheduled yet; make
  // sure the iteration below genuinely overlaps live bumps.
  while (ServeTestHammered.value() == 0)
    std::this_thread::yield();
  // Concurrent registry iteration (what --time-report does) must not
  // race with counter bumps.
  for (int I = 0; I != 100; ++I) {
    uint64_t Sum = 0;
    stats::forEachStatistic(
        [&Sum](const stats::Statistic &S) { Sum += S.value(); });
    EXPECT_GE(Sum, 0u);
  }
  Stop.store(true);
  Bumper.join();
  EXPECT_GT(ServeTestHammered.value(), 0u);
}

//===----------------------------------------------------------------------===//
// Request tracing and the flight recorder
//===----------------------------------------------------------------------===//

/// A recorder that traces every request (head sampling off), sized for
/// \p Workers worker lanes.
FlightRecorder::Options fullRateOptions(unsigned Workers) {
  FlightRecorder::Options FO;
  FO.Workers = Workers;
  FO.SampleEvery = 1;
  return FO;
}

TEST(Tracing, BuilderLifecycleAndOverflow) {
  Request R;
  R.Id = 99;
  R.Op = RequestOp::PointLookup;
  TraceBuilder TB;
  EXPECT_FALSE(TB.opened());
  TB.open(R, 1000);
  EXPECT_TRUE(TB.opened());
  EXPECT_FALSE(TB.closed());
  // Spans beyond the fixed tree size must be counted, not stored — and
  // the returned scratch span must still be writable.
  for (unsigned I = 0; I != Trace::MaxSpans + 3; ++I)
    TB.addSpan(SpanKind::TableOp, 1000 + I, 1).A = I;
  TB.close(ResponseStatus::Ok, 5000);
  EXPECT_TRUE(TB.closed());
  const Trace &T = TB.trace();
  EXPECT_EQ(T.NumSpans, Trace::MaxSpans);
  EXPECT_EQ(T.DroppedSpans, 3u);
  EXPECT_EQ(T.TotalNs, 4000u);
  EXPECT_EQ(T.Id, 99u);
}

TEST(Tracing, HeadSamplingIsDeterministic) {
  FlightRecorder::Options FO;
  FO.Workers = 1;
  FO.SampleEvery = 8;
  FlightRecorder FR(FO);
  unsigned Hits = 0;
  for (uint64_t Id = 0; Id != 4096; ++Id) {
    bool First = FR.shouldTrace(Id);
    EXPECT_EQ(First, FR.shouldTrace(Id)) << "decision must be pure in id";
    Hits += First;
  }
  // Hash-keyed 1-in-8: the exact count is fixed by the hash, but it
  // must be in the right ballpark (ids are not raw-modulo'd).
  EXPECT_GT(Hits, 4096u / 16);
  EXPECT_LT(Hits, 4096u / 4);
}

TEST(Tracing, TailSamplerKeepsInterestingOutcomes) {
  FlightRecorder FR(fullRateOptions(1));
  Trace T;
  T.Status = ResponseStatus::Ok;
  EXPECT_FALSE(FR.interesting(T));
  T.Status = ResponseStatus::Shed;
  EXPECT_TRUE(FR.interesting(T));
  T.Status = ResponseStatus::Deadline;
  EXPECT_TRUE(FR.interesting(T));
  T.Status = ResponseStatus::Ok;
  T.Flags = Trace::FaultDelay;
  EXPECT_TRUE(FR.interesting(T));
  T.Flags = 0;
  // Latency above the rolling tail threshold is interesting; below is
  // not; with no threshold installed nothing is slow.
  T.TotalNs = 1000000;
  EXPECT_FALSE(FR.interesting(T));
  FR.noteTailLatency(500000);
  EXPECT_TRUE(FR.interesting(T));
  T.TotalNs = 400000;
  EXPECT_FALSE(FR.interesting(T));
}

TEST(Tracing, ShedRequestsGetCompleteTraces) {
  auto M = parser::parseModuleOrDie(kServeModule);
  ServeConfig Cfg;
  Cfg.Threads = 1;
  Cfg.QueueCapacity = 1;
  std::string Error;
  ASSERT_TRUE(FaultPlan::parse("seed=1,delay=1.0:1000", Cfg.Faults, &Error))
      << Error;
  FlightRecorder FR(fullRateOptions(Cfg.Threads));
  Cfg.Flight = &FR;
  WorkloadSpec Spec = smallSpec(/*ProgramCalls=*/false);
  Spec.Streams = 2;
  Spec.InsertsPerStream = 8;
  Spec.ReadsPerStream = 56;
  ClientOptions Opts;
  Opts.RetryShed = false;
  Opts.SubmitThreads = 2;

  Server S(*M, Cfg);
  ClientResult Got = runClient(S, Spec, Opts);
  S.stop();
  ServerStats Stats = S.stats();
  ASSERT_GT(Stats.Shed, 0u) << "overload config must shed";

  // Every submission got exactly one closed trace: completed requests
  // on worker lanes, shed requests on the admission lane.
  EXPECT_EQ(FR.tracesRecorded(), Stats.Completed + Stats.Shed);
  (void)Got;

  unsigned ShedTraces = 0;
  for (const Trace &T : FR.sampledTraces()) {
    if (T.Status != ResponseStatus::Shed)
      continue;
    ++ShedTraces;
    // A shed trace's whole tree is the admission decision.
    ASSERT_GE(T.NumSpans, 1u);
    EXPECT_EQ(T.Spans[0].Kind, SpanKind::Admission);
    EXPECT_EQ(T.Spans[0].B, 1u) << "admission span must mark the shed";
    EXPECT_EQ(T.Worker, FR.admissionLane());
  }
  EXPECT_GT(ShedTraces, 0u)
      << "shed outcomes are interesting and must be tail-sampled";
}

TEST(Tracing, DeadlineRequestsGetCompleteTraces) {
  auto M = parser::parseModuleOrDie(kServeModule);
  ServeConfig Cfg;
  Cfg.Threads = 2;
  Cfg.DeadlineMs = 1;
  std::string Error;
  ASSERT_TRUE(FaultPlan::parse("seed=1,delay=1.0:5000", Cfg.Faults, &Error))
      << Error;
  FlightRecorder FR(fullRateOptions(Cfg.Threads));
  Cfg.Flight = &FR;
  WorkloadSpec Spec = smallSpec(/*ProgramCalls=*/false);
  Spec.Streams = 2;
  Spec.InsertsPerStream = 4;
  Spec.ReadsPerStream = 12;

  Server S(*M, Cfg);
  runClient(S, Spec);
  S.stop();

  uint64_t Total = uint64_t(Spec.Streams) *
                   (Spec.InsertsPerStream + Spec.ReadsPerStream);
  EXPECT_EQ(FR.tracesRecorded(), Total);
  unsigned DeadlineTraces = 0;
  for (const Trace &T : FR.sampledTraces()) {
    if (T.Status != ResponseStatus::Deadline)
      continue;
    ++DeadlineTraces;
    // A worker saw the request: admission + queue-wait prefix, and the
    // fault plan's delay must be stamped.
    ASSERT_GE(T.NumSpans, 2u);
    EXPECT_EQ(T.Spans[0].Kind, SpanKind::Admission);
    EXPECT_EQ(T.Spans[1].Kind, SpanKind::QueueWait);
    EXPECT_TRUE(T.Flags & Trace::FaultDelay);
    EXPECT_LT(T.Worker, FR.workerLanes());
  }
  EXPECT_GT(DeadlineTraces, 0u)
      << "every request deadlines; the tail sampler must keep them";
}

TEST(Tracing, FlightDumpRoundTripsThroughJson) {
  auto M = parser::parseModuleOrDie(kServeModule);
  ServeConfig Cfg;
  Cfg.Threads = 2;
  // Storm faults perturb timing only (no outcome changes) but flag
  // every request, so the tail sampler deterministically keeps traces
  // for the merge assertion below.
  std::string Error;
  ASSERT_TRUE(FaultPlan::parse("seed=3,storm=1.0:16", Cfg.Faults, &Error))
      << Error;
  FlightRecorder FR(fullRateOptions(Cfg.Threads));
  Cfg.Flight = &FR;
  WorkloadSpec Spec = smallSpec(/*ProgramCalls=*/true);

  Server S(*M, Cfg);
  runClient(S, Spec);
  S.stop();
  ASSERT_GT(FR.tracesRecorded(), 0u);

  std::string Out;
  {
    RawStringOstream OS(Out);
    json::Writer W(OS);
    FR.writeJson(W, "on-demand");
  }
  std::unique_ptr<json::Value> Doc = json::parse(Out, &Error);
  ASSERT_TRUE(Doc) << Error << "\n" << Out;
  ASSERT_TRUE(Doc->isObject());
  EXPECT_EQ(Doc->find("flightSchemaVersion")->asUint(), 1u);
  EXPECT_EQ(Doc->find("reason")->asString(), "on-demand");
  EXPECT_EQ(Doc->find("tracesRecorded")->asUint(), FR.tracesRecorded());
  const json::Value *Lanes = Doc->find("lanes");
  ASSERT_TRUE(Lanes && Lanes->isArray());
  // Worker lanes plus the admission lane.
  EXPECT_EQ(Lanes->elements().size(), size_t(Cfg.Threads) + 1);
  const json::Value *Stages = Doc->find("stages");
  ASSERT_TRUE(Stages && Stages->isArray());
  // ProgramCalls ran, so the engine-exec stage must have samples with
  // step budgets and cancellation polls attached.
  bool SawEngine = false;
  for (const json::Value &St : Stages->elements())
    if (St.find("stage")->asString() == "engine-exec" &&
        St.find("count")->asUint() > 0)
      SawEngine = true;
  EXPECT_TRUE(SawEngine);

  // The Chrome-trace merge must add one complete event per span plus
  // one per trace, in the "serve" category.
  TraceRecorder TR;
  size_t Before = TR.eventCount();
  FR.mergeIntoTrace(TR);
  EXPECT_GT(TR.eventCount(), Before);
}

TEST(Tracing, OnOffDigestsAreBitIdentical) {
  auto M = parser::parseModuleOrDie(kServeModule);
  std::string Error;
  WorkloadSpec Spec = smallSpec(/*ProgramCalls=*/true);
  Spec.Seed = 17;

  auto digests = [&](bool TraceOn) {
    ServeConfig Cfg;
    Cfg.Threads = 4;
    EXPECT_TRUE(FaultPlan::parse("seed=11,budget=0.05,storm=0.02:16",
                                 Cfg.Faults, &Error))
        << Error;
    FlightRecorder FR(fullRateOptions(Cfg.Threads));
    if (TraceOn)
      Cfg.Flight = &FR;
    Server S(*M, Cfg);
    ClientResult Got = runClient(S, Spec);
    S.stop();
    return Got.Digests;
  };

  // Tracing only reads clocks and counters; request semantics — and so
  // the per-stream response digests — must be bit-identical with the
  // recorder attached and detached.
  std::vector<uint64_t> On = digests(true);
  std::vector<uint64_t> Off = digests(false);
  EXPECT_EQ(On, Off);
  std::vector<uint64_t> Oracle;
  {
    ServeConfig Cfg;
    Cfg.Threads = 4;
    ASSERT_TRUE(FaultPlan::parse("seed=11,budget=0.05,storm=0.02:16",
                                 Cfg.Faults, &Error))
        << Error;
    Oracle = runOracle(*M, Spec, Cfg);
  }
  EXPECT_EQ(On, Oracle);
}

TEST(Tracing, RecentRingKeepsOnlyLastN) {
  FlightRecorder::Options FO;
  FO.Workers = 1;
  FO.SampleEvery = 1;
  FO.RecentPerLane = 4;
  FO.SampledPerLane = 4;
  FlightRecorder FR(FO);
  Request R;
  for (uint64_t Id = 0; Id != 32; ++Id) {
    R.Id = Id;
    TraceBuilder TB;
    TB.open(R, Id * 100);
    TB.addSpan(SpanKind::Admission, Id * 100, 5);
    TB.close(ResponseStatus::Ok, Id * 100 + 50);
    FR.recordCompleted(0, TB.trace());
  }
  EXPECT_EQ(FR.tracesRecorded(), 32u);
  std::vector<Trace> Recent = FR.recentTraces();
  ASSERT_EQ(Recent.size(), 4u);
  // Oldest first, and only the tail of the stream survives the wrap.
  EXPECT_EQ(Recent.front().Id, 28u);
  EXPECT_EQ(Recent.back().Id, 31u);
  // Nothing was interesting, so the sampled ring stays empty.
  EXPECT_TRUE(FR.sampledTraces().empty());
}

} // namespace
