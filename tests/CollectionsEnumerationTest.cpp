//===- CollectionsEnumerationTest.cpp -------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The enumeration runtime invariants of SIII-B: identifiers are unique,
/// contiguous, first-encounter ordered, and stable; decode inverts encode.
///
//===----------------------------------------------------------------------===//

#include "collections/Enumeration.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

using namespace ade;

namespace {

TEST(Enumeration, AddAssignsContiguousIds) {
  Enumeration<uint64_t> E;
  auto [Id0, New0] = E.add(1000);
  auto [Id1, New1] = E.add(5);
  auto [Id2, New2] = E.add(99999);
  EXPECT_TRUE(New0 && New1 && New2);
  EXPECT_EQ(Id0, 0u);
  EXPECT_EQ(Id1, 1u);
  EXPECT_EQ(Id2, 2u);
  EXPECT_EQ(E.size(), 3u);
}

TEST(Enumeration, AddIsIdempotent) {
  Enumeration<uint64_t> E;
  auto [IdA, NewA] = E.add(7);
  auto [IdB, NewB] = E.add(7);
  EXPECT_TRUE(NewA);
  EXPECT_FALSE(NewB);
  EXPECT_EQ(IdA, IdB);
  EXPECT_EQ(E.size(), 1u);
}

TEST(Enumeration, DecodeInvertsEncode) {
  Enumeration<uint64_t> E;
  Rng R(17);
  std::vector<uint64_t> Keys;
  std::set<uint64_t> Unique;
  for (int I = 0; I != 1000; ++I) {
    uint64_t Key = R.nextBelow(500);
    E.add(Key);
    if (Unique.insert(Key).second)
      Keys.push_back(Key);
  }
  EXPECT_EQ(E.size(), Unique.size());
  for (uint64_t Key : Keys) {
    uint64_t Id = E.encode(Key);
    EXPECT_LT(Id, E.size());
    EXPECT_EQ(E.decode(Id), Key);
  }
}

TEST(Enumeration, FirstEncounterOrder) {
  Enumeration<std::string> E;
  E.add("foo");
  E.add("bar");
  E.add("foo"); // Listing from the introduction: ["foo","bar","foo"].
  EXPECT_EQ(E.size(), 2u);
  EXPECT_EQ(E.encode("foo"), 0u);
  EXPECT_EQ(E.encode("bar"), 1u);
  EXPECT_EQ(E.decode(0), "foo");
  EXPECT_EQ(E.decode(1), "bar");
}

TEST(Enumeration, ContainsTracksMembership) {
  Enumeration<uint64_t> E;
  EXPECT_FALSE(E.contains(3));
  E.add(3);
  EXPECT_TRUE(E.contains(3));
}

TEST(Enumeration, IdsAreStableAcrossGrowth) {
  Enumeration<uint64_t> E;
  E.add(42);
  uint64_t Id = E.encode(42);
  for (uint64_t I = 0; I != 100000; ++I)
    E.add(I + 1000000);
  EXPECT_EQ(E.encode(42), Id);
  EXPECT_EQ(E.decode(Id), 42u);
}

TEST(Enumeration, ClearResets) {
  Enumeration<uint64_t> E;
  E.add(1);
  E.clear();
  EXPECT_TRUE(E.empty());
  auto [Id, New] = E.add(2);
  EXPECT_TRUE(New);
  EXPECT_EQ(Id, 0u);
}

TEST(Enumeration, MemoryGrowsWithKeys) {
  Enumeration<uint64_t> E;
  size_t Before = E.memoryBytes();
  for (uint64_t I = 0; I != 10000; ++I)
    E.add(I * 977);
  EXPECT_GT(E.memoryBytes(), Before);
}

} // namespace
