//===- IrCoreTest.cpp -----------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// IR structure tests: type uniquing, use lists, RAUW, builder output and
/// the verifier's acceptance/rejection behavior.
///
//===----------------------------------------------------------------------===//

#include "ir/IR.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace ade;
using namespace ade::ir;

namespace {

TEST(Types, ScalarUniquing) {
  Module M;
  TypeContext &TC = M.types();
  EXPECT_EQ(TC.intTy(32, false), TC.intTy(32, false));
  EXPECT_NE(TC.intTy(32, false), TC.intTy(32, true));
  EXPECT_NE(TC.intTy(32, false), TC.intTy(64, false));
  EXPECT_EQ(TC.floatTy(32), TC.floatTy(32));
  EXPECT_EQ(TC.indexTy(), TC.indexTy());
  // idx is distinct from u64 even though both are 64-bit unsigned.
  EXPECT_NE(static_cast<Type *>(TC.indexTy()),
            static_cast<Type *>(TC.intTy(64, false)));
}

TEST(Types, CollectionUniquingIncludesSelection) {
  Module M;
  TypeContext &TC = M.types();
  Type *F32 = TC.floatTy(32);
  EXPECT_EQ(TC.setTy(F32), TC.setTy(F32));
  EXPECT_NE(TC.setTy(F32), TC.setTy(F32, Selection::BitSet));
  EXPECT_EQ(TC.mapTy(F32, F32, Selection::BitMap),
            TC.mapTy(F32, F32, Selection::BitMap));
}

TEST(Types, Rendering) {
  Module M;
  TypeContext &TC = M.types();
  EXPECT_EQ(TC.setTy(TC.floatTy(32))->str(), "Set<f32>");
  EXPECT_EQ(TC.mapTy(TC.indexTy(), TC.intTy(32, false),
                     Selection::BitMap)->str(),
            "Map{BitMap}<idx,u32>");
  EXPECT_EQ(TC.seqTy(TC.setTy(TC.ptrTy()))->str(), "Seq<Set<ptr>>");
  EXPECT_EQ(TC.enumTy(TC.floatTy(32))->str(), "Enum<f32>");
}

TEST(Types, WithSelectionRewrites) {
  Module M;
  TypeContext &TC = M.types();
  Type *Plain = TC.setTy(TC.indexTy());
  Type *Bit = TC.withSelection(Plain, Selection::BitSet);
  EXPECT_EQ(cast<SetType>(Bit)->selection(), Selection::BitSet);
  EXPECT_EQ(cast<SetType>(Bit)->key(), TC.indexTy());
}

TEST(Types, Predicates) {
  Module M;
  TypeContext &TC = M.types();
  EXPECT_TRUE(TC.setTy(TC.indexTy())->isAssociative());
  EXPECT_TRUE(TC.mapTy(TC.indexTy(), TC.indexTy())->isAssociative());
  EXPECT_FALSE(TC.seqTy(TC.indexTy())->isAssociative());
  EXPECT_TRUE(TC.seqTy(TC.indexTy())->isCollection());
  EXPECT_TRUE(TC.ptrTy()->isScalar());
  EXPECT_TRUE(selectionRequiresEnumeration(Selection::BitSet));
  EXPECT_TRUE(selectionRequiresEnumeration(Selection::SparseBitSet));
  EXPECT_FALSE(selectionRequiresEnumeration(Selection::SwissSet));
}

TEST(UseLists, OperandsRecordUses) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Value *A = B.constU64(1);
  Value *C = B.add(A, A);
  EXPECT_EQ(A->uses().size(), 2u);
  EXPECT_EQ(C->uses().size(), 0u);
  Instruction *AddInst = cast<InstResult>(C)->parent();
  EXPECT_EQ(AddInst->operand(0), A);
  EXPECT_EQ(AddInst->operand(1), A);
}

TEST(UseLists, ReplaceAllUsesWith) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Value *A = B.constU64(1);
  Value *C = B.constU64(2);
  Value *Sum = B.add(A, A);
  A->replaceAllUsesWith(C);
  EXPECT_TRUE(A->uses().empty());
  EXPECT_EQ(C->uses().size(), 2u);
  Instruction *AddInst = cast<InstResult>(Sum)->parent();
  EXPECT_EQ(AddInst->operand(0), C);
}

TEST(UseLists, EraseRemovesUses) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Value *A = B.constU64(1);
  Value *Sum = B.add(A, A);
  cast<InstResult>(Sum)->parent()->eraseFromParent();
  EXPECT_TRUE(A->uses().empty());
}

TEST(Regions, CrossSiblingRegionReferenceSurvivesTeardown) {
  // Regression (found by ade-fuzz --hostile): an instruction in a later
  // sibling region referencing a value defined in an earlier one — a
  // scope violation the verifier rejects, but one the parser can build
  // before diagnosing it. Module teardown used to destroy sibling
  // regions in declaration order, so unregistering the user's use-list
  // entry touched the already-freed definition.
  {
    Module M;
    Function *F = M.createFunction("f", M.types().intTy(64, false));
    IRBuilder B(M, &F->body());
    Value *Cond = B.lt(B.constU64(0), B.constU64(1));
    Instruction *If = B.create(Opcode::If, {}, {Cond}, /*NumRegions=*/2);
    B.setInsertionPoint(If->region(0));
    Value *X = B.constU64(7);
    B.yield({X});
    B.setInsertionPoint(If->region(1));
    B.yield({B.add(X, X)}); // Illegal cross-region use, on purpose.
    B.setInsertionPoint(&F->body());
    B.ret(Cond);
  } // Destruction must not touch freed values (crashes pre-fix).
}

TEST(Regions, InsertBeforeAndAfter) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Value *A = B.constU64(1);
  B.ret();
  Instruction *RetInst = F->body().back();
  B.setInsertionPointBefore(RetInst);
  Value *C = B.constU64(2);
  (void)A;
  (void)C;
  EXPECT_EQ(F->body().size(), 3u);
  EXPECT_EQ(F->body().inst(1), cast<InstResult>(C)->parent());
  EXPECT_EQ(F->body().back(), RetInst);
}

TEST(Builder, HistogramProgramVerifies) {
  // Listing 1: histogram of a sequence.
  Module M;
  TypeContext &TC = M.types();
  Type *F32 = TC.floatTy(32);
  Type *U32 = TC.intTy(32, false);
  Function *F = M.createFunction("count", TC.voidTy());
  Argument *Input = F->addArg(TC.seqTy(F32), "input");
  IRBuilder B(M, &F->body());
  Value *Hist = B.newColl(TC.mapTy(F32, U32), "hist");
  B.forEach(Input, {},
            [&](IRBuilder &B2, std::vector<Value *> Args) {
              Value *Val = Args[1];
              Value *Cond = B2.has(Hist, Val);
              auto Freq = B2.createIf(
                  Cond,
                  [&](IRBuilder &B3) {
                    return std::vector<Value *>{B3.read(Hist, Val)};
                  },
                  [&](IRBuilder &B3) {
                    B3.insert(Hist, Val);
                    return std::vector<Value *>{B3.constU32(0)};
                  });
              Value *Freq1 = B2.add(Freq[0], B2.constU32(1));
              B2.write(Hist, Val, Freq1);
              return std::vector<Value *>{};
            });
  B.ret();
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(M, Errors)) << (Errors.empty() ? "" : Errors[0]);
}

TEST(Verifier, RejectsMissingRet) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  B.constU64(1);
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
}

TEST(Verifier, RejectsTypeMismatchedArithmetic) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Value *A = B.constU64(1);
  Value *C = B.constU32(2);
  B.create(Opcode::Add, {A->type()}, {A, C});
  B.ret();
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
}

TEST(Verifier, RejectsWrongKeyType) {
  Module M;
  TypeContext &TC = M.types();
  Function *F = M.createFunction("f", TC.voidTy());
  IRBuilder B(M, &F->body());
  Value *Set = B.newColl(TC.setTy(TC.floatTy(32)));
  Value *Key = B.constU64(1); // u64 key on a Set<f32>.
  B.create(Opcode::Insert, {}, {Set, Key});
  B.ret();
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
}

TEST(Verifier, RejectsUseBeforeDef) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Value *A = B.constU64(1);
  Value *Sum = B.add(A, A);
  B.ret();
  // Move the add before its operand's definition.
  Instruction *AddInst = cast<InstResult>(Sum)->parent();
  Instruction *ConstInst = cast<InstResult>(A)->parent();
  (void)AddInst;
  // Swap by erasing the const and re-inserting after the add is tricky;
  // instead check the dominance rule across regions: a value defined in a
  // then-region cannot be used in the else-region.
  Module M2;
  Function *F2 = M2.createFunction("g", M2.types().voidTy());
  IRBuilder B2(M2, &F2->body());
  Value *Cond = B2.constBool(true);
  Value *Leak = nullptr;
  B2.createIf(
      Cond,
      [&](IRBuilder &B3) {
        Leak = B3.constU64(7);
        return std::vector<Value *>{};
      },
      [&](IRBuilder &B3) { return std::vector<Value *>{}; });
  // Illegally reference the then-region value afterwards.
  B2.add(Leak, Leak);
  B2.ret();
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M2, Errors));
  (void)ConstInst;
}

TEST(Verifier, RejectsBadYieldArity) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Value *Cond = B.constBool(true);
  Instruction *IfInst = B.create(Opcode::If, {}, {Cond}, 2);
  {
    IRBuilder BT(M, IfInst->region(0));
    BT.yield({BT.constU64(1)});
    IRBuilder BE(M, IfInst->region(1));
    BE.yield({}); // Arity mismatch with then-region.
  }
  IfInst->addResult(M.types().intTy(64, false));
  B.ret();
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
}

TEST(Verifier, AcceptsLoopsWithCarriedValues) {
  Module M;
  TypeContext &TC = M.types();
  Function *F = M.createFunction("sum", TC.intTy(64, false));
  Argument *Input = F->addArg(TC.seqTy(TC.intTy(64, false)), "in");
  IRBuilder B(M, &F->body());
  auto Result = B.forEach(Input, {B.constU64(0)},
                          [&](IRBuilder &B2, std::vector<Value *> Args) {
                            return std::vector<Value *>{
                                B2.add(Args[2], Args[1])};
                          });
  B.ret(Result[0]);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(M, Errors)) << (Errors.empty() ? "" : Errors[0]);
}

TEST(Module, GlobalsAndUniqueNames) {
  Module M;
  GlobalVariable *G =
      M.createGlobal("adj", M.types().mapTy(M.types().intTy(64, false),
                                            M.types().intTy(64, false)));
  EXPECT_EQ(M.getGlobal("adj"), G);
  EXPECT_EQ(M.getGlobal("nope"), nullptr);
  std::string N1 = M.uniqueName("enum");
  std::string N2 = M.uniqueName("enum");
  EXPECT_NE(N1, N2);
}

TEST(Printer, EmitsHistogramShape) {
  Module M;
  TypeContext &TC = M.types();
  Function *F = M.createFunction("count", TC.voidTy());
  Argument *Input = F->addArg(TC.seqTy(TC.floatTy(32)), "input");
  IRBuilder B(M, &F->body());
  Value *Hist = B.newColl(TC.mapTy(TC.floatTy(32), TC.intTy(32, false)),
                          "hist");
  (void)Input;
  B.insert(Hist, B.castTo(B.constF64(1.5), TC.floatTy(32)));
  B.ret();
  std::string Text = toString(M);
  EXPECT_NE(Text.find("fn @count(%input: Seq<f32>) {"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("%hist = new Map<f32,u32>"), std::string::npos) << Text;
  EXPECT_NE(Text.find("insert %hist"), std::string::npos) << Text;
}

} // namespace
