//===- SupportTimerTest.cpp -----------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Wall-clock timers, timer groups and the Chrome trace-event recorder.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/RawOstream.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

using namespace ade;

namespace {

TEST(Timer, AccumulatesAcrossRuns) {
  Timer T;
  EXPECT_FALSE(T.isRunning());
  EXPECT_EQ(T.seconds(), 0.0);
  T.start();
  EXPECT_TRUE(T.isRunning());
  T.stop();
  T.start();
  T.stop();
  EXPECT_EQ(T.runs(), 2u);
  EXPECT_GE(T.seconds(), 0.0);
  T.reset();
  EXPECT_EQ(T.runs(), 0u);
  EXPECT_EQ(T.seconds(), 0.0);
}

TEST(TimerGroup, PhasesKeepInsertionOrderAndAccumulate) {
  TimerGroup G;
  { TimerGroup::Scope S(G, "parse"); }
  { TimerGroup::Scope S(G, "transform"); }
  { TimerGroup::Scope S(G, "parse"); }
  ASSERT_EQ(G.phases().size(), 2u);
  EXPECT_EQ(G.phases()[0].Name, "parse");
  EXPECT_EQ(G.phases()[0].Runs, 2u);
  EXPECT_EQ(G.phases()[1].Name, "transform");
  EXPECT_EQ(G.phases()[1].Runs, 1u);
  EXPECT_GE(G.totalSeconds(),
            G.phases()[0].Seconds); // total covers every phase
}

TEST(TimerGroup, ReportListsPhasesAndTotal) {
  TimerGroup G;
  G.charge(G.phaseIndex("analysis"), 0.25);
  G.charge(G.phaseIndex("planning"), 0.75);
  std::string Text;
  RawStringOstream OS(Text);
  G.printReport(OS, "test timing");
  EXPECT_NE(Text.find("test timing"), std::string::npos);
  EXPECT_NE(Text.find("analysis"), std::string::npos);
  EXPECT_NE(Text.find("25.0%"), std::string::npos);
  EXPECT_NE(Text.find("total"), std::string::npos);
}

TEST(TimerGroup, JsonRendersPhaseSeconds) {
  TimerGroup G;
  G.charge(G.phaseIndex("verify"), 0.5);
  std::string Text;
  RawStringOstream OS(Text);
  json::Writer W(OS);
  G.writeJson(W);
  std::string Error;
  auto V = json::parse(Text, &Error);
  ASSERT_NE(V, nullptr) << Error;
  ASSERT_TRUE(V->isObject());
  EXPECT_DOUBLE_EQ(V->find("verify")->asNumber(), 0.5);
}

TEST(Trace, RecordsCompleteEventsAsValidJson) {
  TraceRecorder Rec;
  Rec.addComplete("compile", "phase", 10, 25);
  Rec.addComplete("run \"main\"", "interp", 40, 5);
  EXPECT_EQ(Rec.eventCount(), 2u);
  std::string Text;
  RawStringOstream OS(Text);
  Rec.write(OS);
  std::string Error;
  auto V = json::parse(Text, &Error);
  ASSERT_NE(V, nullptr) << Error;
  const json::Value *Events = V->find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  ASSERT_EQ(Events->size(), 2u);
  const json::Value &E0 = (*Events)[0];
  EXPECT_EQ(E0.find("name")->asString(), "compile");
  EXPECT_EQ(E0.find("ph")->asString(), "X");
  EXPECT_EQ(E0.find("ts")->asUint(), 10u);
  EXPECT_EQ(E0.find("dur")->asUint(), 25u);
  EXPECT_EQ((*Events)[1].find("name")->asString(), "run \"main\"");
}

TEST(Trace, ScopeIsNoOpWithoutActiveRecorder) {
  ASSERT_EQ(TraceRecorder::active(), nullptr);
  { TraceScope S("ignored", "test"); } // must not crash
  TraceRecorder Rec;
  TraceRecorder::setActive(&Rec);
  { TraceScope S("observed", "test"); }
  TraceRecorder::setActive(nullptr);
  { TraceScope S("ignored again", "test"); }
  ASSERT_EQ(Rec.eventCount(), 1u);
}

} // namespace
