//===- InterpTest.cpp -----------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Interpreter semantics: every opcode, control flow, collections, nested
/// collections, enumerations, globals, calls/recursion and statistics.
/// Programs are written in the textual syntax (also exercising the
/// parser-to-execution path end to end).
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace ade;
using namespace ade::interp;
using namespace ade::runtime;

namespace {

uint64_t runMain(const char *Src, std::vector<uint64_t> Args = {}) {
  auto M = parser::parseModuleOrDie(Src);
  Interpreter I(*M);
  return I.callByName("main", Args);
}

TEST(Interp, ConstantsAndArithmetic) {
  EXPECT_EQ(runMain(R"(fn @main() -> u64 {
  %a = const 20 : u64
  %b = const 3 : u64
  %add = add %a, %b
  %mul = mul %add, %b     // 69
  %div = div %mul, %a     // 3
  %rem = rem %mul, %a     // 9
  %sum = add %div, %rem   // 12
  ret %sum
})"),
            12u);
}

TEST(Interp, SignedArithmeticWrapsAndCompares) {
  EXPECT_EQ(runMain(R"(fn @main() -> u64 {
  %a = const -5 : i64
  %b = const 3 : i64
  %c = add %a, %b          // -2
  %isNeg = lt %c, %b
  %one = const 1 : u64
  %zero = const 0 : u64
  %r = select %isNeg, %one, %zero
  ret %r
})"),
            1u);
}

TEST(Interp, NarrowIntegerWidthWraps) {
  EXPECT_EQ(runMain(R"(fn @main() -> u64 {
  %a = const 250 : u8
  %b = const 10 : u8
  %c = add %a, %b          // 260 wraps to 4 in u8
  %r = cast %c : u64
  ret %r
})"),
            4u);
}

TEST(Interp, FloatArithmeticAndCasts) {
  EXPECT_EQ(runMain(R"(fn @main() -> u64 {
  %a = const 2.5 : f64
  %b = const 4.0 : f64
  %c = mul %a, %b          // 10.0
  %r = cast %c : u64
  ret %r
})"),
            10u);
}

TEST(Interp, MinMaxNegNot) {
  EXPECT_EQ(runMain(R"(fn @main() -> u64 {
  %a = const 7 : u64
  %b = const 9 : u64
  %mn = min %a, %b
  %mx = max %a, %b
  %d = sub %mx, %mn       // 2
  %t = const true
  %f = not %t
  %one = const 1 : u64
  %zero = const 0 : u64
  %nv = select %f, %one, %zero  // 0
  %r = add %d, %nv
  ret %r
})"),
            2u);
}

TEST(Interp, IfTakesCorrectBranch) {
  const char *Src = R"(fn @main(%x: u64) -> u64 {
  %ten = const 10 : u64
  %big = gt %x, %ten
  %r = if %big {
    %a = const 1 : u64
    yield %a
  } else {
    %b = const 2 : u64
    yield %b
  }
  ret %r
})";
  EXPECT_EQ(runMain(Src, {100}), 1u);
  EXPECT_EQ(runMain(Src, {5}), 2u);
}

TEST(Interp, ForRangeAccumulates) {
  EXPECT_EQ(runMain(R"(fn @main() -> u64 {
  %lo = const 0 : u64
  %hi = const 10 : u64
  %zero = const 0 : u64
  %sum = forrange %lo, %hi -> [%i] iter(%acc = %zero) {
    %next = add %acc, %i
    yield %next
  }
  ret %sum
})"),
            45u);
}

TEST(Interp, DoWhileCountsDown) {
  EXPECT_EQ(runMain(R"(fn @main() -> u64 {
  %n = const 5 : u64
  %one = const 1 : u64
  %zero = const 0 : u64
  %fin, %steps = dowhile iter(%x = %n, %count = %zero) {
    %dec = sub %x, %one
    %c2 = add %count, %one
    %more = gt %dec, %zero
    yield %more, %dec, %c2
  }
  %r = add %fin, %steps // Final %x is 0 after 5 iterations.
  ret %r
})"),
            5u);
}

TEST(Interp, SequencesAppendPopReadWrite) {
  EXPECT_EQ(runMain(R"(fn @main() -> u64 {
  %q = new Seq<u64>
  %a = const 10 : u64
  %b = const 20 : u64
  %i0 = const 0 : u64
  append %q, %a
  append %q, %b
  %first = read %q, %i0
  write %q, %i0, %b
  %updated = read %q, %i0
  %popped = pop %q
  %sz = size %q
  %s1 = add %first, %updated  // 10 + 20
  %s2 = add %popped, %sz      // 20 + 1
  %r = add %s1, %s2           // 51
  ret %r
})"),
            51u);
}

TEST(Interp, ReserveIsSemanticallyTransparent) {
  // A pre-sizing hint must not change a collection's contents: size stays
  // 0 right after the reserve, and later operations behave identically.
  EXPECT_EQ(runMain(R"(fn @main() -> u64 {
  %m = new Map<u64, u64>
  %cap = const 1000 : u64
  reserve %m, %cap
  %empty = size %m
  %k = const 7 : u64
  %v = const 40 : u64
  write %m, %k, %v
  %got = read %m, %k
  %one = size %m
  %s = add %got, %one   // 41
  %r = add %s, %empty   // 41
  ret %r
})"),
            41u);
}

TEST(Interp, MapInsertWriteReadHasRemove) {
  EXPECT_EQ(runMain(R"(fn @main() -> u64 {
  %m = new Map<u64, u64>
  %k = const 5 : u64
  %v = const 50 : u64
  insert %m, %k        // 5 -> 0
  %h1 = has %m, %k
  write %m, %k, %v     // 5 -> 50
  %got = read %m, %k
  remove %m, %k
  %h2 = has %m, %k
  %one = const 1 : u64
  %zero = const 0 : u64
  %a = select %h1, %one, %zero
  %b = select %h2, %one, %zero
  %s = add %got, %a    // 51
  %r = sub %s, %b      // 51
  ret %r
})"),
            51u);
}

TEST(Interp, HistogramProgram) {
  // Listing 1 shape: count element frequencies.
  auto M = parser::parseModuleOrDie(R"(fn @count(%input: Seq<u64>) -> u64 {
  %hist = new Map<u64, u32>
  foreach %input -> [%i, %val] {
    %cond = has %hist, %val
    %freq0 = if %cond {
      %f = read %hist, %val
      yield %f
    } else {
      insert %hist, %val
      %z = const 0 : u32
      yield %z
    }
    %one = const 1 : u32
    %freq1 = add %freq0, %one
    write %hist, %val, %freq1
    yield
  }
  %five = const 5 : u64
  %r32 = read %hist, %five
  %r = cast %r32 : u64
  ret %r
})");
  Interpreter I(*M);
  auto *Seq = static_cast<RtSeq *>(
      I.newCollection(M->types().seqTy(M->types().intTy(64, false))));
  for (uint64_t V : {5u, 3u, 5u, 5u, 9u, 3u})
    Seq->append(V);
  uint64_t Freq =
      I.callByName("count", {Interpreter::collToBits(Seq)});
  EXPECT_EQ(Freq, 3u);
}

TEST(Interp, ForEachOverSetAndMap) {
  EXPECT_EQ(runMain(R"(fn @main() -> u64 {
  %s = new Set<u64>
  %a = const 3 : u64
  %b = const 4 : u64
  insert %s, %a
  insert %s, %b
  %zero = const 0 : u64
  %sum = foreach %s -> [%k] iter(%acc = %zero) {
    %n = add %acc, %k
    yield %n
  }
  %m = new Map<u64, u64>
  write %m, %a, %b
  %msum = foreach %m -> [%k, %v] iter(%acc2 = %zero) {
    %kv = add %k, %v
    %n2 = add %acc2, %kv
    yield %n2
  }
  %r = add %sum, %msum   // (3+4) + (3+4) = 14
  ret %r
})"),
            14u);
}

TEST(Interp, NestedCollections) {
  EXPECT_EQ(runMain(R"(fn @main() -> u64 {
  %adj = new Map<u64, Set<u64>>
  %u = const 1 : u64
  %v = const 2 : u64
  %w = const 3 : u64
  %s = new Set<u64>
  write %adj, %u, %s
  %inner = read %adj, %u
  insert %inner, %v
  insert %inner, %w
  %again = read %adj, %u
  %sz = size %again
  ret %sz
})"),
            2u);
}

TEST(Interp, UnionMergesSets) {
  EXPECT_EQ(runMain(R"(fn @main() -> u64 {
  %a = new Set<u64>
  %b = new Set<u64>
  %one = const 1 : u64
  %two = const 2 : u64
  %three = const 3 : u64
  insert %a, %one
  insert %a, %two
  insert %b, %two
  insert %b, %three
  union %a, %b
  %sz = size %a
  ret %sz
})"),
            3u);
}

TEST(Interp, MixedImplementationUnion) {
  // Union across different selections exercises the generic path.
  EXPECT_EQ(runMain(R"(fn @main() -> u64 {
  %a = new Set{BitSet}<u64>
  %b = new Set{FlatSet}<u64>
  %x = const 100 : u64
  %y = const 200 : u64
  insert %a, %x
  insert %b, %y
  union %a, %b
  %sz = size %a
  ret %sz
})"),
            2u);
}

TEST(Interp, EnumerationGlobals) {
  EXPECT_EQ(runMain(R"(global @e : Enum<u64>
fn @main() -> u64 {
  %e = gget @e
  %a = const 1000 : u64
  %b = const 2000 : u64
  %id_a = enum.add %e, %a     // 0
  %id_b = enum.add %e, %b     // 1
  %id_a2 = enum.add %e, %a    // still 0
  %back = dec %e, %id_b       // 2000
  %enc_a = enc %e, %a         // 0
  %s1 = add %id_a, %id_b      // 1
  %s2 = add %id_a2, %enc_a    // 0
  %s3 = add %s1, %s2          // 1
  %s3u = cast %s3 : u64
  %r = add %s3u, %back        // 2001
  ret %r
})"),
            2001u);
}

TEST(Interp, CollectionGlobalsPersistAcrossCalls) {
  auto M = parser::parseModuleOrDie(R"(global @cache : Map<u64, u64>
fn @put(%k: u64, %v: u64) {
  %c = gget @cache
  write %c, %k, %v
  ret
}
fn @get(%k: u64) -> u64 {
  %c = gget @cache
  %v = read %c, %k
  ret %v
})");
  Interpreter I(*M);
  I.callByName("put", {7, 77});
  EXPECT_EQ(I.callByName("get", {7}), 77u);
}

TEST(Interp, CallsAndRecursion) {
  EXPECT_EQ(runMain(R"(fn @main() -> u64 {
  %n = const 10 : u64
  %r = call @fib(%n)
  ret %r
}
fn @fib(%n: u64) -> u64 {
  %two = const 2 : u64
  %small = lt %n, %two
  %r = if %small {
    yield %n
  } else {
    %one = const 1 : u64
    %n1 = sub %n, %one
    %n2 = sub %n, %two
    %a = call @fib(%n1)
    %b = call @fib(%n2)
    %s = add %a, %b
    yield %s
  }
  ret %r
})"),
            55u);
}

TEST(Interp, SelectionAnnotationsPickImplementations) {
  auto M = parser::parseModuleOrDie(R"(fn @main() -> u64 {
  %a = new Set{BitSet}<idx>
  %b = new Set{SwissSet}<u64>
  %k = const 3 : idx
  %k2 = const 3 : u64
  insert %a, %k
  insert %b, %k2
  ret %k2
})");
  Interpreter I(*M);
  I.callByName("main", {});
  // Dense (BitSet) and sparse (SwissSet) inserts recorded separately.
  EXPECT_EQ(I.stats().Dense, 1u);
  EXPECT_EQ(I.stats().Sparse, 1u);
}

TEST(Interp, DefaultImplementationsFollowOptions) {
  auto M = parser::parseModuleOrDie(R"(fn @main() -> u64 {
  %s = new Set<u64>
  %k = const 1 : u64
  insert %s, %k
  ret %k
})");
  InterpOptions Opts;
  Opts.Defaults.SetImpl = ir::Selection::SwissSet;
  Interpreter I(*M, Opts);
  I.callByName("main", {});
  EXPECT_EQ(I.stats().Sparse, 1u);
}

TEST(Interp, StatsClassifyDenseAndSparse) {
  auto M = parser::parseModuleOrDie(R"(fn @main() -> u64 {
  %dense = new Map{BitMap}<idx, u64>
  %sparse = new Map{HashMap}<u64, u64>
  %k = const 2 : idx
  %k2 = const 2 : u64
  %v = const 5 : u64
  write %dense, %k, %v
  write %sparse, %k2, %v
  %a = read %dense, %k
  %b = read %sparse, %k2
  %r = add %a, %b
  ret %r
})");
  Interpreter I(*M);
  EXPECT_EQ(I.callByName("main", {}), 10u);
  EXPECT_EQ(I.stats().Dense, 2u);  // BitMap write + read.
  EXPECT_EQ(I.stats().Sparse, 2u); // HashMap write + read.
  EXPECT_EQ(I.stats().category(OpCategory::Write), 2u);
  EXPECT_EQ(I.stats().category(OpCategory::Read), 2u);
}

TEST(Interp, IterateStatsCountElements) {
  auto M = parser::parseModuleOrDie(R"(fn @main() -> u64 {
  %s = new Set<u64>
  %lo = const 0 : u64
  %hi = const 100 : u64
  forrange %lo, %hi -> [%i] {
    insert %s, %i
    yield
  }
  %zero = const 0 : u64
  %sum = foreach %s -> [%k] iter(%acc = %zero) {
    %n = add %acc, %k
    yield %n
  }
  ret %sum
})");
  Interpreter I(*M);
  EXPECT_EQ(I.callByName("main", {}), 4950u);
  EXPECT_EQ(I.stats().category(OpCategory::Iterate), 100u);
  EXPECT_EQ(I.stats().category(OpCategory::Insert), 100u);
}

TEST(Interp, MutationDuringIterationUsesSnapshot) {
  // Inserting into the iterated set mid-loop must not iterate new items.
  EXPECT_EQ(runMain(R"(fn @main() -> u64 {
  %s = new Set<u64>
  %one = const 1 : u64
  %two = const 2 : u64
  insert %s, %one
  insert %s, %two
  %hundred = const 100 : u64
  %zero = const 0 : u64
  %count = foreach %s -> [%k] iter(%acc = %zero) {
    %shifted = add %k, %hundred
    insert %s, %shifted
    %n = add %acc, %one
    yield %n
  }
  ret %count
})"),
            2u);
}

TEST(Interp, EarlyReturnFromLoop) {
  EXPECT_EQ(runMain(R"(fn @main() -> u64 {
  %lo = const 0 : u64
  %hi = const 1000 : u64
  %limit = const 5 : u64
  forrange %lo, %hi -> [%i] {
    %hit = eq %i, %limit
    if %hit {
      ret %i
    } else {
      yield
    }
    yield
  }
  %zero = const 0 : u64
  ret %zero
})"),
            5u);
}

} // namespace
