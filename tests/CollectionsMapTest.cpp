//===- CollectionsMapTest.cpp ---------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Differential tests of HashMap, SwissMap and BitMap against std::map.
///
//===----------------------------------------------------------------------===//

#include "collections/BitMap.h"
#include "collections/HashMap.h"
#include "collections/SwissMap.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

using namespace ade;

namespace {

template <typename MapT> class MapApiTest : public ::testing::Test {};

using MapTypes =
    ::testing::Types<HashMap<uint64_t, uint64_t>, SwissMap<uint64_t, uint64_t>,
                     BitMap<uint64_t>>;
TYPED_TEST_SUITE(MapApiTest, MapTypes);

TYPED_TEST(MapApiTest, StartsEmpty) {
  TypeParam Map;
  EXPECT_TRUE(Map.empty());
  EXPECT_EQ(Map.lookup(3), nullptr);
  EXPECT_FALSE(Map.contains(3));
}

TYPED_TEST(MapApiTest, InsertOrAssignOverwrites) {
  TypeParam Map;
  EXPECT_TRUE(Map.insertOrAssign(1, 10));
  EXPECT_FALSE(Map.insertOrAssign(1, 20));
  EXPECT_EQ(Map.at(1), 20u);
  EXPECT_EQ(Map.size(), 1u);
}

TYPED_TEST(MapApiTest, TryInsertKeepsFirstValue) {
  TypeParam Map;
  EXPECT_TRUE(Map.tryInsert(1, 10));
  EXPECT_FALSE(Map.tryInsert(1, 20));
  EXPECT_EQ(Map.at(1), 10u);
}

TYPED_TEST(MapApiTest, RemoveErasesMapping) {
  TypeParam Map;
  Map.insertOrAssign(5, 50);
  EXPECT_TRUE(Map.remove(5));
  EXPECT_FALSE(Map.remove(5));
  EXPECT_EQ(Map.lookup(5), nullptr);
}

TYPED_TEST(MapApiTest, LookupIsMutable) {
  TypeParam Map;
  Map.insertOrAssign(2, 7);
  *Map.lookup(2) += 1;
  EXPECT_EQ(Map.at(2), 8u);
}

TYPED_TEST(MapApiTest, ForEachVisitsAllMappings) {
  TypeParam Map;
  std::map<uint64_t, uint64_t> Ref;
  Rng R(31);
  for (int I = 0; I != 400; ++I) {
    uint64_t Key = R.nextBelow(1000), Value = R.next();
    Map.insertOrAssign(Key, Value);
    Ref[Key] = Value;
  }
  std::map<uint64_t, uint64_t> Seen;
  Map.forEach([&](uint64_t Key, uint64_t &Value) {
    EXPECT_TRUE(Seen.emplace(Key, Value).second) << "duplicate key " << Key;
  });
  EXPECT_EQ(Seen, Ref);
}

TYPED_TEST(MapApiTest, ClearAllowsReuse) {
  TypeParam Map;
  for (uint64_t I = 0; I != 64; ++I)
    Map.insertOrAssign(I, I);
  Map.clear();
  EXPECT_TRUE(Map.empty());
  Map.insertOrAssign(1, 2);
  EXPECT_EQ(Map.at(1), 2u);
}

/// Randomized differential sweep against std::map.
struct MapWorkload {
  const char *Name;
  size_t Ops;
  uint64_t KeyRange;
};

class MapDifferentialTest : public ::testing::TestWithParam<MapWorkload> {};

template <typename MapT> void runMapDifferential(const MapWorkload &W,
                                                 uint64_t Seed) {
  MapT Map;
  std::map<uint64_t, uint64_t> Ref;
  Rng R(Seed);
  for (size_t I = 0; I != W.Ops; ++I) {
    uint64_t Key = R.nextBelow(W.KeyRange);
    switch (R.nextBelow(5)) {
    case 0:
    case 1: {
      uint64_t Value = R.nextBelow(1 << 20);
      EXPECT_EQ(Map.insertOrAssign(Key, Value), Ref.count(Key) == 0);
      Ref[Key] = Value;
      break;
    }
    case 2: {
      auto It = Ref.find(Key);
      uint64_t *Found = Map.lookup(Key);
      if (It == Ref.end()) {
        EXPECT_EQ(Found, nullptr);
      } else {
        ASSERT_NE(Found, nullptr);
        EXPECT_EQ(*Found, It->second);
      }
      break;
    }
    case 3:
      EXPECT_EQ(Map.remove(Key), Ref.erase(Key) != 0);
      break;
    case 4:
      EXPECT_EQ(Map.contains(Key), Ref.count(Key) != 0);
      break;
    }
    ASSERT_EQ(Map.size(), Ref.size()) << "op " << I;
  }
}

TEST_P(MapDifferentialTest, HashMap) {
  runMapDifferential<HashMap<uint64_t, uint64_t>>(GetParam(), 201);
}
TEST_P(MapDifferentialTest, SwissMap) {
  runMapDifferential<SwissMap<uint64_t, uint64_t>>(GetParam(), 202);
}
TEST_P(MapDifferentialTest, BitMap) {
  runMapDifferential<BitMap<uint64_t>>(GetParam(), 203);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, MapDifferentialTest,
    ::testing::Values(MapWorkload{"tiny", 500, 16},
                      MapWorkload{"small", 2000, 256},
                      MapWorkload{"medium", 8000, 1 << 14},
                      MapWorkload{"sparse", 4000, 1 << 22}),
    [](const ::testing::TestParamInfo<MapWorkload> &Info) {
      return Info.param.Name;
    });

// getOrInsert is the histogram-update primitive (Listing 1).

TEST(HashMapImpl, GetOrInsertDefaultConstructs) {
  HashMap<uint64_t, uint64_t> Map;
  EXPECT_EQ(Map.getOrInsert(9), 0u);
  Map.getOrInsert(9) += 5;
  EXPECT_EQ(Map.at(9), 5u);
  EXPECT_EQ(Map.size(), 1u);
}

TEST(SwissMapImpl, GetOrInsertDefaultConstructs) {
  SwissMap<uint64_t, uint64_t> Map;
  Map.getOrInsert(9) += 5;
  Map.getOrInsert(9) += 5;
  EXPECT_EQ(Map.at(9), 10u);
}

TEST(HashMapImpl, StringKeysAndValues) {
  HashMap<std::string, std::string> Map;
  Map.insertOrAssign("k", "v");
  EXPECT_EQ(Map.at("k"), "v");
  Map.getOrInsert("other") = "x";
  EXPECT_EQ(Map.size(), 2u);
}

TEST(HashMapImpl, CopySemantics) {
  HashMap<uint64_t, uint64_t> A;
  A.insertOrAssign(1, 1);
  HashMap<uint64_t, uint64_t> B = A;
  B.insertOrAssign(1, 99);
  EXPECT_EQ(A.at(1), 1u);
  EXPECT_EQ(B.at(1), 99u);
}

TEST(BitMapImpl, DenseStorageIndexedByKey) {
  BitMap<uint64_t> Map;
  Map.insertOrAssign(100, 7);
  EXPECT_EQ(Map.size(), 1u);
  // Storage spans the key universe (Table I: k * (1 + bits(T))).
  EXPECT_GE(Map.memoryBytes(), 100 * sizeof(uint64_t));
  Map.insertOrAssign(3, 1);
  std::vector<uint64_t> Keys;
  Map.forEach([&](uint64_t Key, uint64_t &) { Keys.push_back(Key); });
  EXPECT_EQ(Keys, (std::vector<uint64_t>{3, 100})); // Ordered iteration.
}

TEST(BitMapImpl, RemoveClearsValue) {
  BitMap<uint64_t> Map;
  Map.insertOrAssign(4, 44);
  Map.remove(4);
  Map.insertOrAssign(4, 0);
  EXPECT_EQ(Map.at(4), 0u);
}

} // namespace
