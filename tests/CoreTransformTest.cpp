//===- CoreTransformTest.cpp ----------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end tests of the enumeration transform: the paper's listings
/// transformed and differentially executed against their originals, RTE
/// and ablation behaviors, selection, directives, and union expansion.
///
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace ade;
using namespace ade::core;
using namespace ade::interp;
using namespace ade::ir;

namespace {

/// Runs @main on a fresh parse of \p Src, optionally after ADE.
uint64_t runProgram(const std::string &Src, bool WithADE,
                    PipelineConfig Config = {}) {
  auto M = parser::parseModuleOrDie(Src);
  if (WithADE)
    runADE(*M, Config);
  Interpreter I(*M);
  return I.callByName("main", {});
}

/// Asserts that ADE preserves @main's result under every ablation.
void expectSemanticsPreserved(const std::string &Src) {
  uint64_t Baseline = runProgram(Src, /*WithADE=*/false);
  EXPECT_EQ(runProgram(Src, true), Baseline) << "full ADE changed semantics";
  PipelineConfig NoRTE;
  NoRTE.EnableRTE = false;
  EXPECT_EQ(runProgram(Src, true, NoRTE), Baseline) << "no-RTE changed";
  PipelineConfig NoShare;
  NoShare.EnableSharing = false;
  EXPECT_EQ(runProgram(Src, true, NoShare), Baseline) << "no-share changed";
  PipelineConfig NoProp;
  NoProp.EnablePropagation = false;
  EXPECT_EQ(runProgram(Src, true, NoProp), Baseline) << "no-prop changed";
}

const char *HistogramSrc = R"(fn @main() -> u64 {
  %input = new Seq<u64>
  %a = const 500 : u64
  %b = const 900 : u64
  %c = const 123456789 : u64
  append %input, %a
  append %input, %b
  append %input, %a
  append %input, %c
  append %input, %a
  %r = call @count(%input)
  ret %r
}
fn @count(%input: Seq<u64>) -> u64 {
  %hist = new Map<u64, u32>
  foreach %input -> [%i, %val] {
    %cond = has %hist, %val
    %freq0 = if %cond {
      %f = read %hist, %val
      yield %f
    } else {
      insert %hist, %val
      %z = const 0 : u32
      yield %z
    }
    %one = const 1 : u32
    %freq1 = add %freq0, %one
    write %hist, %val, %freq1
    yield
  }
  %five = const 500 : u64
  %f32v = read %hist, %five
  %freqA = cast %f32v : u64
  %sz = size %hist
  %r = mul %freqA, %sz
  ret %r
})";

const char *UnionFindSrc = R"(fn @main() -> u64 {
  %uf = new Map<u64, u64>
  %a = const 1000 : u64
  %b = const 2000 : u64
  %c = const 3000 : u64
  %d = const 4000 : u64
  write %uf, %a, %b
  write %uf, %b, %c
  write %uf, %c, %c
  write %uf, %d, %d
  %ra = call @find(%uf, %a)
  %rd = call @find(%uf, %d)
  %r = add %ra, %rd
  ret %r
}
fn @find(%uf: Map<u64, u64>, %v: u64) -> u64 {
  %found = dowhile iter(%curr = %v) {
    %parent = read %uf, %curr
    %not_done = ne %parent, %curr
    yield %not_done, %parent
  }
  ret %found
})";

TEST(Transform, HistogramSemanticsPreserved) {
  expectSemanticsPreserved(HistogramSrc);
}

TEST(Transform, PipelineRecordsPhaseTiming) {
  auto M = parser::parseModuleOrDie(HistogramSrc);
  PipelineResult R = runADE(*M);
  // Each pass charges one run to its own phase, in execution order.
  std::vector<std::string> Names;
  for (const TimerGroup::Phase &P : R.Timing.phases()) {
    Names.push_back(P.Name);
    EXPECT_EQ(P.Runs, 1u);
    EXPECT_GE(P.Seconds, 0.0);
  }
  EXPECT_EQ(Names, (std::vector<std::string>{"cloning", "analysis",
                                             "planning", "absint",
                                             "transform", "selection",
                                             "verify"}));
}

TEST(Transform, HistogramIsFullyEnumerated) {
  auto M = parser::parseModuleOrDie(HistogramSrc);
  PipelineResult R = runADE(*M);
  EXPECT_EQ(R.Transform.EnumerationsCreated, 1u);
  std::string Text = toString(*M);
  // The histogram map is retyped to idx keys and a BitMap selection.
  EXPECT_NE(Text.find("Map{BitMap}<idx,u32>"), std::string::npos) << Text;
  // The input sequence propagates identifiers.
  EXPECT_NE(Text.find("Seq<idx>"), std::string::npos) << Text;
  // An enumeration global exists.
  EXPECT_NE(Text.find("Enum<u64>"), std::string::npos) << Text;
}

TEST(Transform, HistogramLoopHasNoTranslationsWithRTE) {
  auto M = parser::parseModuleOrDie(HistogramSrc);
  PipelineResult R = runADE(*M);
  // All translations in @count's hot loop are eliminated; the remaining
  // translations are the enum.add at each append in @main and one enc for
  // the raw constant key looked up after the loop.
  EXPECT_EQ(R.Transform.AddInserted, 5u);
  EXPECT_EQ(R.Transform.EncInserted, 1u);
  EXPECT_EQ(R.Transform.DecInserted, 0u);
  EXPECT_GT(R.Transform.TranslationsSkipped, 0u);
}

TEST(Transform, HistogramNoRTEInsertsNaiveIndirection) {
  auto M = parser::parseModuleOrDie(HistogramSrc);
  PipelineConfig Config;
  Config.EnableRTE = false;
  PipelineResult R = runADE(*M, Config);
  // Listing 2 shape: translations at every use.
  EXPECT_GT(R.Transform.EncInserted, 0u);
  EXPECT_GT(R.Transform.DecInserted, 0u);
  EXPECT_EQ(R.Transform.TranslationsSkipped, 0u);
}

TEST(Transform, UnionFindSemanticsPreserved) {
  expectSemanticsPreserved(UnionFindSrc);
}

TEST(Transform, UnionFindPropagationRemovesLoopTranslations) {
  // Listing 4: with propagation the loop carries identifiers; the only
  // translations are the adds at construction and one dec of the result.
  auto M = parser::parseModuleOrDie(UnionFindSrc);
  PipelineResult R = runADE(*M);
  EXPECT_EQ(R.Transform.EnumerationsCreated, 1u);
  EXPECT_EQ(R.Transform.EncInserted, 0u);
  // Two call sites pass raw %v values; they are encoded on entry... as
  // adds or encs depending on ToAdd membership; the loop itself carries
  // ids, so the read inside the dowhile needs no translation.
  std::string Text = toString(*M);
  size_t FindPos = Text.find("fn @find");
  ASSERT_NE(FindPos, std::string::npos);
  std::string FindText = Text.substr(FindPos);
  size_t LoopPos = FindText.find("dowhile");
  size_t LoopEnd = FindText.find("ret");
  std::string LoopText = FindText.substr(LoopPos, LoopEnd - LoopPos);
  EXPECT_EQ(LoopText.find(" enc "), std::string::npos) << FindText;
  EXPECT_EQ(LoopText.find("enum.add"), std::string::npos) << FindText;
  // Map is retyped to idx->idx with a BitMap implementation.
  EXPECT_NE(Text.find("Map{BitMap}<idx,idx>"), std::string::npos) << Text;
}

TEST(Transform, UnionFindWithoutPropagationKeepsValueType) {
  auto M = parser::parseModuleOrDie(UnionFindSrc);
  PipelineConfig Config;
  Config.EnablePropagation = false;
  runADE(*M, Config);
  std::string Text = toString(*M);
  // Keys may still be enumerated via sharing, but values stay u64.
  EXPECT_EQ(Text.find("Map{BitMap}<idx,idx>"), std::string::npos) << Text;
}

TEST(Transform, EnumerationPopulatedAtRuntime) {
  auto M = parser::parseModuleOrDie(HistogramSrc);
  runADE(*M);
  Interpreter I(*M);
  EXPECT_EQ(I.callByName("main", {}), 9u); // freq(500)=3 * size=3.
  // Three distinct values were enumerated.
  const GlobalVariable *EnumGlobal = nullptr;
  for (const auto &G : M->globals())
    if (isa<EnumType>(G->Ty))
      EnumGlobal = G.get();
  ASSERT_NE(EnumGlobal, nullptr);
  auto *E = reinterpret_cast<runtime::RtEnum *>(
      I.globalValue(EnumGlobal->Name));
  EXPECT_EQ(E->size(), 3u);
}

TEST(Transform, AccessesBecomeDense) {
  auto Run = [&](bool WithADE) {
    auto M = parser::parseModuleOrDie(HistogramSrc);
    if (WithADE)
      runADE(*M);
    Interpreter I(*M);
    I.callByName("main", {});
    return std::pair<uint64_t, uint64_t>(I.stats().Sparse,
                                         I.stats().Dense);
  };
  auto [BaseSparse, BaseDense] = Run(false);
  auto [AdeSparse, AdeDense] = Run(true);
  EXPECT_GT(BaseSparse, 0u);
  EXPECT_EQ(BaseDense, 0u);
  // After ADE the histogram accesses are dense; only the enum.add calls
  // (and enumeration growth) remain sparse.
  EXPECT_LT(AdeSparse, BaseSparse);
  EXPECT_GT(AdeDense, 0u);
}

TEST(Transform, SelectionConfigSparseBitSet) {
  const char *Src = R"(fn @main() -> u64 {
  %s = new Set<u64>
  %t = new Set<u64>
  %lo = const 0 : u64
  %hi = const 10 : u64
  forrange %lo, %hi -> [%i] {
    insert %s, %i
    yield
  }
  %zero = const 0 : u64
  %n = foreach %s -> [%k] iter(%acc = %zero) {
    insert %t, %k
    %h = has %s, %k
    %one = const 1 : u64
    %next = add %acc, %one
    yield %next
  }
  ret %n
})";
  auto M = parser::parseModuleOrDie(Src);
  PipelineConfig Config;
  Config.Selection.EnumeratedSet = Selection::SparseBitSet;
  runADE(*M, Config);
  std::string Text = toString(*M);
  EXPECT_NE(Text.find("Set{SparseBitSet}<idx>"), std::string::npos) << Text;
  Interpreter I(*M);
  EXPECT_EQ(I.callByName("main", {}), 10u);
}

TEST(Transform, SelectDirectiveOverridesDefault) {
  const char *Src = R"(fn @main() -> u64 {
  %s = new Set<u64>
  #pragma ade select(FlatSet)
  %t = new Set<u64>
  %lo = const 0 : u64
  %hi = const 10 : u64
  forrange %lo, %hi -> [%i] {
    insert %s, %i
    yield
  }
  %zero = const 0 : u64
  %n = foreach %s -> [%k] iter(%acc = %zero) {
    insert %t, %k
    %h = has %s, %k
    %one = const 1 : u64
    %next = add %acc, %one
    yield %next
  }
  ret %n
})";
  auto M = parser::parseModuleOrDie(Src);
  runADE(*M);
  std::string Text = toString(*M);
  EXPECT_NE(Text.find("Set{FlatSet}<idx>"), std::string::npos) << Text;
  Interpreter I(*M);
  EXPECT_EQ(I.callByName("main", {}), 10u);
}

TEST(Transform, SelectDirectiveOnNonEnumerated) {
  const char *Src = R"(fn @main() -> u64 {
  #pragma ade noenumerate select(SwissMap)
  %m = new Map<u64, u64>
  %k = const 1 : u64
  write %m, %k, %k
  %sz = size %m
  ret %sz
})";
  auto M = parser::parseModuleOrDie(Src);
  runADE(*M);
  std::string Text = toString(*M);
  EXPECT_NE(Text.find("Map{SwissMap}<u64,u64>"), std::string::npos) << Text;
}

TEST(Transform, NestedCollectionsShareInnerEnumeration) {
  // PTA shape: points-to map with nested sets; inner sets iterate and
  // union among themselves.
  const char *Src = R"(fn @main() -> u64 {
  %pts = new Map<u64, Set<u64>>
  %p1 = const 11 : u64
  %p2 = const 22 : u64
  %o1 = const 111 : u64
  %o2 = const 222 : u64
  %s1 = new Set<u64>
  insert %s1, %o1
  insert %s1, %o2
  write %pts, %p1, %s1
  %s2 = new Set<u64>
  insert %s2, %o2
  write %pts, %p2, %s2
  %a = read %pts, %p1
  %b = read %pts, %p2
  union %b, %a
  %zero = const 0 : u64
  %total = foreach %b -> [%o] iter(%acc = %zero) {
    %h = has %a, %o
    %one = const 1 : u64
    %z2 = const 0 : u64
    %inc = select %h, %one, %z2
    %next = add %acc, %inc
    yield %next
  }
  ret %total
})";
  uint64_t Baseline = runProgram(Src, false);
  EXPECT_EQ(Baseline, 2u);
  EXPECT_EQ(runProgram(Src, true), Baseline);
  auto M = parser::parseModuleOrDie(Src);
  runADE(*M);
  std::string Text = toString(*M);
  // Inner sets are enumerated (shared one enumeration at the nesting
  // level, SIII-G).
  EXPECT_NE(Text.find("Set{BitSet}<idx>"), std::string::npos) << Text;
}

TEST(Transform, UnionAcrossEnumerationsExpands) {
  // noshare forces the two sets into distinct enumerations; the union
  // must be expanded into an element-wise translate-insert loop.
  const char *Src = R"(fn @main() -> u64 {
  #pragma ade enumerate noshare
  %a = new Set<u64>
  #pragma ade enumerate noshare
  %b = new Set<u64>
  %x = const 5 : u64
  %y = const 6 : u64
  insert %a, %x
  insert %a, %y
  insert %b, %y
  union %b, %a
  %sz = size %b
  ret %sz
})";
  uint64_t Baseline = runProgram(Src, false);
  EXPECT_EQ(Baseline, 2u);
  auto M = parser::parseModuleOrDie(Src);
  PipelineResult R = runADE(*M);
  EXPECT_EQ(R.Transform.EnumerationsCreated, 2u);
  EXPECT_EQ(R.Transform.UnionsExpanded, 1u);
  Interpreter I(*M);
  EXPECT_EQ(I.callByName("main", {}), Baseline);
}

TEST(Transform, GlobalsBasedBuildKernelSplit) {
  const char *Src = R"(global @adj : Map<u64, u64>
fn @build() {
  %m = new Map<u64, u64>
  %a = const 100 : u64
  %b = const 200 : u64
  write %m, %a, %b
  write %m, %b, %b
  gset @adj, %m
  ret
}
fn @kernel() -> u64 {
  %m = gget @adj
  %zero = const 0 : u64
  %count = foreach %m -> [%k, %v] iter(%acc = %zero) {
    %h = has %m, %v
    %one = const 1 : u64
    %z = const 0 : u64
    %inc = select %h, %one, %z
    %next = add %acc, %inc
    yield %next
  }
  ret %count
}
fn @main() -> u64 {
  call @build()
  %r = call @kernel()
  ret %r
})";
  uint64_t Baseline = runProgram(Src, false);
  EXPECT_EQ(Baseline, 2u);
  EXPECT_EQ(runProgram(Src, true), Baseline);
  auto M = parser::parseModuleOrDie(Src);
  PipelineResult R = runADE(*M);
  EXPECT_EQ(R.Transform.EnumerationsCreated, 1u);
  std::string Text = toString(*M);
  EXPECT_NE(Text.find("global @adj : Map{BitMap}<idx,idx>"),
            std::string::npos)
      << Text;
}

TEST(Transform, TransformedModuleStillVerifies) {
  for (const char *Src : {HistogramSrc, UnionFindSrc}) {
    auto M = parser::parseModuleOrDie(Src);
    runADE(*M); // runADE verifies internally (Config.Verify).
    std::vector<std::string> Errors;
    EXPECT_TRUE(verifyModule(*M, Errors))
        << (Errors.empty() ? "?" : Errors[0]);
  }
}

TEST(Transform, MemoryShrinksWithSharing) {
  // Several collections over one shared key domain: one enumeration plus
  // dense bitmaps/bitsets beats per-collection hash tables (the sharing
  // memory effect behind Figure 8).
  std::string Src = R"(fn @main() -> u64 {
  %input = new Seq<u64>
  %lo = const 0 : u64
  %hi = const 30000 : u64
  %mod = const 2000 : u64
  %scramble = const 2654435761 : u64
  forrange %lo, %hi -> [%i] {
    %r = rem %i, %mod
    %k = mul %r, %scramble
    append %input, %k
    yield
  }
  %r = call @count(%input)
  ret %r
}
fn @count(%input: Seq<u64>) -> u64 {
  %freq = new Map<u64, u32>
  %last = new Map<u64, u64>
  %seen = new Set<u64>
  %dups = new Set<u64>
  foreach %input -> [%i, %val] {
    %cond = has %seen, %val
    if %cond {
      insert %dups, %val
      yield
    } else {
      insert %seen, %val
      yield
    }
    %has_f = has %freq, %val
    %freq0 = if %has_f {
      %f = read %freq, %val
      yield %f
    } else {
      %z = const 0 : u32
      yield %z
    }
    %one = const 1 : u32
    %freq1 = add %freq0, %one
    write %freq, %val, %freq1
    write %last, %val, %i
    yield
  }
  %sz = size %seen
  ret %sz
})";
  auto RunPeak = [&](bool WithADE) {
    auto M = parser::parseModuleOrDie(Src);
    if (WithADE)
      runADE(*M);
    MemoryTracker::instance().reset();
    Interpreter I(*M);
    uint64_t Result = I.callByName("main", {});
    EXPECT_EQ(Result, 2000u);
    return MemoryTracker::instance().peakBytes();
  };
  uint64_t BasePeak = RunPeak(false);
  uint64_t AdePeak = RunPeak(true);
  // BitMap over 10k dense ids + enumeration beats chained hash nodes.
  EXPECT_LT(AdePeak, BasePeak);
}

} // namespace
