//===- CoreAnalysisTest.cpp -----------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests of the ADE analyses: root discovery, Algorithm 1/4 use sets,
/// Algorithm 2 redundancy and benefit, Algorithm 3 candidates, escape
/// rules, and Algorithm 5 unification edges.
///
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "core/Plan.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace ade;
using namespace ade::core;
using namespace ade::ir;

namespace {

/// The histogram program (Listing 1) with a locally built input sequence.
const char *HistogramSrc = R"(fn @main() -> u64 {
  %input = new Seq<u64>
  %a = const 500 : u64
  %b = const 900 : u64
  append %input, %a
  append %input, %b
  append %input, %a
  %r = call @count(%input)
  ret %r
}
fn @count(%input: Seq<u64>) -> u64 {
  %hist = new Map<u64, u32>
  foreach %input -> [%i, %val] {
    %cond = has %hist, %val
    %freq0 = if %cond {
      %f = read %hist, %val
      yield %f
    } else {
      insert %hist, %val
      %z = const 0 : u32
      yield %z
    }
    %one = const 1 : u32
    %freq1 = add %freq0, %one
    write %hist, %val, %freq1
    yield
  }
  %sz = size %hist
  ret %sz
})";

/// Union-find parent chase (Listing 3) plus a driver.
const char *UnionFindSrc = R"(fn @main() -> u64 {
  %uf = new Map<u64, u64>
  %a = const 10 : u64
  %b = const 20 : u64
  %c = const 30 : u64
  write %uf, %a, %b
  write %uf, %b, %c
  write %uf, %c, %c
  %r = call @find(%uf, %a)
  ret %r
}
fn @find(%uf: Map<u64, u64>, %v: u64) -> u64 {
  %found = dowhile iter(%curr = %v) {
    %parent = read %uf, %curr
    %not_done = ne %parent, %curr
    yield %not_done, %parent
  }
  ret %found
})";

RootInfo *findAllocRoot(ModuleAnalysis &MA, const std::string &Name) {
  for (const auto &R : MA.roots())
    if (R->TheKind == RootInfo::Kind::Alloc && R->Anchor->name() == Name)
      return R.get();
  return nullptr;
}

RootInfo *findParamRoot(ModuleAnalysis &MA, const std::string &Name) {
  for (const auto &R : MA.roots())
    if (R->TheKind == RootInfo::Kind::Param && R->Anchor->name() == Name)
      return R.get();
  return nullptr;
}

TEST(Analysis, DiscoversRootsAndRefs) {
  auto M = parser::parseModuleOrDie(HistogramSrc);
  ModuleAnalysis MA(*M);
  RootInfo *Hist = findAllocRoot(MA, "hist");
  ASSERT_NE(Hist, nullptr);
  EXPECT_TRUE(Hist->isAssociative());
  EXPECT_EQ(Hist->keyType()->str(), "u64");
  EXPECT_EQ(Hist->Refs.size(), 1u);
  RootInfo *Input = findAllocRoot(MA, "input");
  ASSERT_NE(Input, nullptr);
  EXPECT_EQ(Input->elemType()->str(), "u64");
}

TEST(Analysis, Algorithm1UseSets) {
  auto M = parser::parseModuleOrDie(HistogramSrc);
  ModuleAnalysis MA(*M);
  RootInfo *Hist = findAllocRoot(MA, "hist");
  ASSERT_NE(Hist, nullptr);
  // has, read keys -> ToEnc; insert and (upserting) write keys -> ToAdd.
  EXPECT_EQ(Hist->ToEnc.size(), 2u);
  EXPECT_EQ(Hist->ToAdd.size(), 2u);
  // No for-each over %hist: no produced keys.
  EXPECT_TRUE(Hist->ProducedKeys.empty());
  EXPECT_TRUE(Hist->ToDec.empty());
}

TEST(Analysis, Algorithm4PropagatorSets) {
  auto M = parser::parseModuleOrDie(HistogramSrc);
  ModuleAnalysis MA(*M);
  RootInfo *Input = findAllocRoot(MA, "input");
  ASSERT_NE(Input, nullptr);
  // Three appends of raw values in @main land on the alloc root.
  EXPECT_EQ(Input->PropToAdd.size(), 3u);
  // The for-each in @count runs over the unified parameter root: the
  // element binding %val is produced there, and its uses (has, read,
  // insert, write keys) form PropToDec.
  RootInfo *Param = findParamRoot(MA, "input");
  ASSERT_NE(Param, nullptr);
  ASSERT_EQ(Param->ProducedElems.size(), 1u);
  EXPECT_EQ(Param->PropToDec.size(), 4u);
}

TEST(Analysis, ParamUnifiesWithCallerAlloc) {
  auto M = parser::parseModuleOrDie(HistogramSrc);
  ModuleAnalysis MA(*M);
  RootInfo *Alloc = findAllocRoot(MA, "input");
  RootInfo *Param = findParamRoot(MA, "input");
  ASSERT_NE(Alloc, nullptr);
  ASSERT_NE(Param, nullptr);
  EXPECT_EQ(MA.aliasClassOf(Alloc), MA.aliasClassOf(Param));
}

TEST(Analysis, UncalledFunctionParamsEscape) {
  auto M = parser::parseModuleOrDie(R"(fn @entry(%s: Set<u64>) {
  %k = const 1 : u64
  insert %s, %k
  ret
})");
  ModuleAnalysis MA(*M);
  RootInfo *Param = findParamRoot(MA, "s");
  ASSERT_NE(Param, nullptr);
  EXPECT_TRUE(Param->Escapes);
}

TEST(Analysis, ExternCalleeEscapesArgument) {
  auto M = parser::parseModuleOrDie(R"(extern fn @sink(Set<u64>)
fn @main() {
  %s = new Set<u64>
  call @sink(%s)
  ret
})");
  ModuleAnalysis MA(*M);
  RootInfo *S = findAllocRoot(MA, "s");
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->Escapes);
}

TEST(Analysis, GlobalsUnifyAcrossFunctions) {
  auto M = parser::parseModuleOrDie(R"(global @adj : Map<u64, u64>
fn @build() {
  %m = new Map<u64, u64>
  gset @adj, %m
  ret
}
fn @kernel() -> u64 {
  %m = gget @adj
  %sz = size %m
  ret %sz
}
fn @main() -> u64 {
  call @build()
  %r = call @kernel()
  ret %r
})");
  ModuleAnalysis MA(*M);
  RootInfo *Alloc = findAllocRoot(MA, "m");
  ASSERT_NE(Alloc, nullptr);
  RootInfo *GlobalRoot = nullptr;
  for (const auto &R : MA.roots())
    if (R->TheKind == RootInfo::Kind::Global)
      GlobalRoot = R.get();
  ASSERT_NE(GlobalRoot, nullptr);
  EXPECT_EQ(MA.aliasClassOf(Alloc), MA.aliasClassOf(GlobalRoot));
  // The gget result in @kernel is a ref of the unified class.
  EXPECT_GE(GlobalRoot->Refs.size() + Alloc->Refs.size(), 2u);
}

TEST(Analysis, NestedCollectionsFormChildRoots) {
  auto M = parser::parseModuleOrDie(R"(fn @main() -> u64 {
  %pts = new Map<ptr, Set<ptr>>
  %p = const 1 : ptr
  %inner = new Set<ptr>
  write %pts, %p, %inner
  %got = read %pts, %p
  %q = const 2 : ptr
  insert %got, %q
  %sz = size %got
  ret %sz
})");
  ModuleAnalysis MA(*M);
  RootInfo *Pts = findAllocRoot(MA, "pts");
  ASSERT_NE(Pts, nullptr);
  ASSERT_NE(Pts->Child, nullptr);
  RootInfo *Inner = findAllocRoot(MA, "inner");
  ASSERT_NE(Inner, nullptr);
  // The written inner set and the read result are the same nesting level.
  EXPECT_EQ(MA.aliasClassOf(Inner), MA.aliasClassOf(Pts->Child));
  // The nested level gathered the insert use.
  bool FoundInsert = false;
  for (RootInfo *R : MA.aliasClasses()[MA.aliasClassOf(Inner)])
    FoundInsert |= !R->ToAdd.empty();
  EXPECT_TRUE(FoundInsert);
}

// Algorithm 2 on synthetic sets.

TEST(Redundancy, EncodeOfDecodedTrimsBoth) {
  auto M = parser::parseModuleOrDie(HistogramSrc);
  ModuleAnalysis MA(*M);
  RootInfo *Hist = findAllocRoot(MA, "hist");
  RootInfo *Param = findParamRoot(MA, "input");
  UseSet ToEnc = Hist->ToEnc;
  UseSet ToAdd = Hist->ToAdd;
  UseSet ToDec = Param->PropToDec;
  TrimSets Trims = findRedundant(ToEnc, ToDec, ToAdd);
  // Both enc sites and both add sites coincide with decoded uses.
  EXPECT_EQ(Trims.TrimEnc.size(), 2u);
  EXPECT_EQ(Trims.TrimAdd.size(), 2u);
  EXPECT_EQ(Trims.TrimDec.size(), 4u);
  EXPECT_EQ(Trims.benefit(), 8);
}

TEST(Redundancy, EqualityOfDecodedValues) {
  auto M = parser::parseModuleOrDie(UnionFindSrc);
  ModuleAnalysis MA(*M);
  RootInfo *Uf = findParamRoot(MA, "uf");
  ASSERT_NE(Uf, nullptr);
  // In @find: read key (%curr) is a use of the carried value; the read
  // result (%parent) is produced; ne compares produced against carried.
  TrimSets Trims = findRedundant(Uf->ToEnc, Uf->PropToDec, Uf->ToAdd);
  EXPECT_GT(Trims.benefit(), 0);
}

TEST(Redundancy, NoRedundancyNoBenefit) {
  UseSet Empty;
  TrimSets Trims = findRedundant(Empty, Empty, Empty);
  EXPECT_EQ(Trims.benefit(), 0);
}

// Algorithm 3 planning.

TEST(Plan, HistogramSharesSeqPropagatorWithMap) {
  auto M = parser::parseModuleOrDie(HistogramSrc);
  ModuleAnalysis MA(*M);
  EnumerationPlan Plan = planEnumeration(MA);
  ASSERT_EQ(Plan.Candidates.size(), 1u);
  const Candidate &C = Plan.Candidates[0];
  EXPECT_EQ(C.KeyTy->str(), "u64");
  // hist enumerated by key; input (and its param alias) propagate.
  EXPECT_GE(C.KeyMembers.size(), 1u);
  EXPECT_GE(C.ElemMembers.size(), 1u);
  EXPECT_GT(C.Benefit, 0);
}

TEST(Plan, UnionFindMapIsKeyAndElemMember) {
  auto M = parser::parseModuleOrDie(UnionFindSrc);
  ModuleAnalysis MA(*M);
  EnumerationPlan Plan = planEnumeration(MA);
  ASSERT_EQ(Plan.Candidates.size(), 1u);
  const Candidate &C = Plan.Candidates[0];
  RootInfo *UfAlloc = findAllocRoot(MA, "uf");
  EXPECT_TRUE(C.isKeyMember(UfAlloc));
  EXPECT_TRUE(C.isElemMember(UfAlloc));
}

TEST(Plan, NoSharingDisablesPropagation) {
  auto M = parser::parseModuleOrDie(HistogramSrc);
  ModuleAnalysis MA(*M);
  PlannerConfig Config;
  Config.EnableSharing = false;
  Config.EnablePropagation = false;
  EnumerationPlan Plan = planEnumeration(MA, Config);
  // Without sharing, the lone histogram map has no redundancy: no
  // enumeration at all.
  EXPECT_TRUE(Plan.Candidates.empty());
}

TEST(Plan, EscapedCollectionsAreNeverCandidates) {
  auto M = parser::parseModuleOrDie(R"(extern fn @sink(Map<u64, u64>)
fn @main() -> u64 {
  %m = new Map<u64, u64>
  %k = const 1 : u64
  write %m, %k, %k
  foreach %m -> [%a, %b] {
    %c = has %m, %b
    yield
  }
  call @sink(%m)
  %sz = size %m
  ret %sz
})");
  ModuleAnalysis MA(*M);
  EnumerationPlan Plan = planEnumeration(MA);
  EXPECT_TRUE(Plan.Candidates.empty());
}

TEST(Plan, ForceDirectiveOverridesBenefit) {
  auto M = parser::parseModuleOrDie(R"(fn @main() -> u64 {
  #pragma ade enumerate
  %s = new Set<u64>
  %k = const 7 : u64
  insert %s, %k
  %sz = size %s
  ret %sz
})");
  ModuleAnalysis MA(*M);
  EnumerationPlan Plan = planEnumeration(MA);
  ASSERT_EQ(Plan.Candidates.size(), 1u);
  EXPECT_TRUE(Plan.Candidates[0].Forced);
}

TEST(Plan, ForbidDirectiveBlocksEnumeration) {
  std::string Src = HistogramSrc;
  // Forbid the histogram map.
  size_t Pos = Src.find("%hist = new");
  Src.insert(Pos, "#pragma ade noenumerate\n  ");
  auto M = parser::parseModuleOrDie(Src);
  ModuleAnalysis MA(*M);
  EnumerationPlan Plan = planEnumeration(MA);
  EXPECT_TRUE(Plan.Candidates.empty());
}

TEST(Plan, NoShareKeepsUnitsApart) {
  auto M = parser::parseModuleOrDie(R"(fn @main() -> u64 {
  %a = new Set<u64>
  #pragma ade noshare
  %b = new Set<u64>
  %lo = const 0 : u64
  %hi = const 50 : u64
  forrange %lo, %hi -> [%i] {
    insert %a, %i
    yield
  }
  %zero = const 0 : u64
  %n = foreach %a -> [%k] iter(%acc = %zero) {
    insert %b, %k
    %h = has %a, %k
    %one = const 1 : u64
    %next = add %acc, %one
    yield %next
  }
  ret %n
})");
  ModuleAnalysis MA(*M);
  EnumerationPlan Plan = planEnumeration(MA);
  // %b refuses to share; only %a can form a candidate (self-redundancy
  // via foreach keys re-queried with has).
  for (const Candidate &C : Plan.Candidates)
    EXPECT_EQ(C.KeyMembers.size() + C.ElemMembers.size(), 1u);
}

TEST(Plan, ShareGroupForcesMerge) {
  auto M = parser::parseModuleOrDie(R"(fn @main() -> u64 {
  #pragma ade enumerate share group("g")
  %a = new Set<u64>
  #pragma ade share group("g")
  %b = new Set<u64>
  %k = const 5 : u64
  insert %a, %k
  insert %b, %k
  %sz = size %a
  ret %sz
})");
  ModuleAnalysis MA(*M);
  EnumerationPlan Plan = planEnumeration(MA);
  ASSERT_EQ(Plan.Candidates.size(), 1u);
  EXPECT_EQ(Plan.Candidates[0].KeyMembers.size(), 2u);
}

TEST(Plan, UnionPartnersWeldIntoOneCandidate) {
  auto M = parser::parseModuleOrDie(R"(fn @main() -> u64 {
  %a = new Set<u64>
  %b = new Set<u64>
  %lo = const 0 : u64
  %hi = const 10 : u64
  forrange %lo, %hi -> [%i] {
    insert %a, %i
    yield
  }
  %zero = const 0 : u64
  %n = foreach %a -> [%k] iter(%acc = %zero) {
    %h = has %a, %k
    insert %b, %k
    %one = const 1 : u64
    %next = add %acc, %one
    yield %next
  }
  union %b, %a
  ret %n
})");
  ModuleAnalysis MA(*M);
  EnumerationPlan Plan = planEnumeration(MA);
  ASSERT_EQ(Plan.Candidates.size(), 1u);
  EXPECT_EQ(Plan.Candidates[0].KeyMembers.size(), 2u);
}

} // namespace
