//===- CollectionsRoaringTest.cpp -----------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Roaring-specific invariants: container promotion/demotion at the 4096
/// threshold, multi-chunk behavior, run optimization, and union fast paths.
///
//===----------------------------------------------------------------------===//

#include "collections/RoaringBitSet.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace ade;

namespace {

TEST(Roaring, ArrayContainerBelowCutoff) {
  RoaringBitSet Set;
  for (uint64_t I = 0; I != roaring::ArrayCutoff; ++I)
    Set.insert(I * 2);
  // Exactly ArrayCutoff members of one chunk: stays an array container.
  auto Counts = Set.containerCounts();
  EXPECT_EQ(Counts.Array, 1u);
  EXPECT_EQ(Counts.Bitmap, 0u);
}

TEST(Roaring, PromotesToBitmapAboveCutoff) {
  RoaringBitSet Set;
  for (uint64_t I = 0; I != roaring::ArrayCutoff + 1; ++I)
    Set.insert(I); // Single chunk, cardinality 4097.
  auto Counts = Set.containerCounts();
  EXPECT_EQ(Counts.Array, 0u);
  EXPECT_EQ(Counts.Bitmap, 1u);
  EXPECT_EQ(Set.size(), roaring::ArrayCutoff + 1);
}

TEST(Roaring, DemotesToArrayOnRemoval) {
  RoaringBitSet Set;
  for (uint64_t I = 0; I != 5000; ++I)
    Set.insert(I);
  ASSERT_EQ(Set.containerCounts().Bitmap, 1u);
  for (uint64_t I = 4096; I != 5000; ++I)
    Set.remove(I);
  EXPECT_EQ(Set.containerCounts().Array, 1u);
  EXPECT_EQ(Set.size(), 4096u);
  EXPECT_TRUE(Set.contains(0));
  EXPECT_FALSE(Set.contains(4096));
}

TEST(Roaring, EmptyChunkIsFreed) {
  RoaringBitSet Set;
  Set.insert(1);
  Set.insert(1ULL << 20); // Second chunk.
  EXPECT_EQ(Set.containerCounts().Array, 2u);
  Set.remove(1ULL << 20);
  EXPECT_EQ(Set.containerCounts().Array, 1u);
}

TEST(Roaring, SparseKeysAcrossChunks) {
  RoaringBitSet Set;
  std::vector<uint64_t> Keys;
  for (uint64_t I = 0; I != 64; ++I)
    Keys.push_back(I << 16 | (I * 7 & 0xffff));
  for (uint64_t Key : Keys)
    EXPECT_TRUE(Set.insert(Key));
  EXPECT_EQ(Set.containerCounts().Array, 64u);
  for (uint64_t Key : Keys)
    EXPECT_TRUE(Set.contains(Key));
  std::vector<uint64_t> Iterated;
  Set.forEach([&](uint64_t Key) { Iterated.push_back(Key); });
  EXPECT_TRUE(std::is_sorted(Iterated.begin(), Iterated.end()));
  EXPECT_EQ(Iterated.size(), Keys.size());
}

TEST(Roaring, RunOptimizeCompressesContiguousRange) {
  RoaringBitSet Set;
  for (uint64_t I = 0; I != 60000; ++I)
    Set.insert(I); // One dense chunk: bitmap.
  ASSERT_EQ(Set.containerCounts().Bitmap, 1u);
  size_t Before = Set.memoryBytes();
  EXPECT_EQ(Set.runOptimize(), 1u);
  EXPECT_EQ(Set.containerCounts().Run, 1u);
  EXPECT_LT(Set.memoryBytes(), Before);
  // Contents are preserved.
  EXPECT_EQ(Set.size(), 60000u);
  EXPECT_TRUE(Set.contains(0));
  EXPECT_TRUE(Set.contains(59999));
  EXPECT_FALSE(Set.contains(60000));
}

TEST(Roaring, RunOptimizeSkipsIncompressible) {
  RoaringBitSet Set;
  for (uint64_t I = 0; I != 1000; ++I)
    Set.insert(I * 2); // No adjacent pairs: runs would be larger.
  EXPECT_EQ(Set.runOptimize(), 0u);
  EXPECT_EQ(Set.containerCounts().Array, 1u);
}

TEST(Roaring, MutatingRunContainerMaterializes) {
  RoaringBitSet Set;
  for (uint64_t I = 100; I != 50000; ++I)
    Set.insert(I);
  Set.runOptimize();
  ASSERT_EQ(Set.containerCounts().Run, 1u);
  // Insert of a present key leaves the run container untouched.
  EXPECT_FALSE(Set.insert(500));
  EXPECT_EQ(Set.containerCounts().Run, 1u);
  // Insert of a new key materializes.
  EXPECT_TRUE(Set.insert(50));
  EXPECT_EQ(Set.containerCounts().Run, 0u);
  EXPECT_TRUE(Set.contains(50));
  EXPECT_TRUE(Set.contains(49999));
  EXPECT_EQ(Set.size(), 49901u);
}

TEST(Roaring, RemoveFromRunContainer) {
  RoaringBitSet Set;
  for (uint64_t I = 0; I != 30000; ++I)
    Set.insert(I);
  Set.runOptimize();
  EXPECT_FALSE(Set.remove(40000));
  EXPECT_EQ(Set.containerCounts().Run, 1u); // Absent key: no materialize.
  EXPECT_TRUE(Set.remove(15000));
  EXPECT_FALSE(Set.contains(15000));
  EXPECT_EQ(Set.size(), 29999u);
}

TEST(Roaring, UnionBitmapBitmapFastPath) {
  RoaringBitSet A, B;
  for (uint64_t I = 0; I != 10000; ++I) {
    A.insert(I * 2);
    B.insert(I * 2 + 1);
  }
  ASSERT_EQ(A.containerCounts().Bitmap, 1u);
  ASSERT_EQ(B.containerCounts().Bitmap, 1u);
  A.unionWith(B);
  EXPECT_EQ(A.size(), 20000u);
  for (uint64_t I = 0; I != 20000; ++I)
    ASSERT_TRUE(A.contains(I));
}

TEST(Roaring, UnionPromotesArrays) {
  RoaringBitSet A, B;
  for (uint64_t I = 0; I != 3000; ++I) {
    A.insert(I * 2);
    B.insert(I * 2 + 1);
  }
  A.unionWith(B);
  EXPECT_EQ(A.size(), 6000u);
  EXPECT_EQ(A.containerCounts().Bitmap, 1u); // 6000 > 4096 promotes.
}

TEST(Roaring, UnionCopiesMissingChunksDeeply) {
  RoaringBitSet A, B;
  B.insert(1ULL << 24);
  A.unionWith(B);
  EXPECT_TRUE(A.contains(1ULL << 24));
  // Mutating A afterwards must not affect B.
  A.insert((1ULL << 24) + 1);
  EXPECT_FALSE(B.contains((1ULL << 24) + 1));
}

TEST(Roaring, UnionWithRunOperand) {
  RoaringBitSet A, B;
  for (uint64_t I = 0; I != 20000; ++I)
    B.insert(I);
  B.runOptimize();
  A.insert(5);
  A.insert(100000);
  A.unionWith(B);
  EXPECT_EQ(A.size(), 20001u); // 5 was already a member of B's range.
  EXPECT_TRUE(A.contains(19999));
  EXPECT_TRUE(A.contains(100000));
}

TEST(Roaring, RandomizedDifferentialWithChurn) {
  RoaringBitSet Set;
  std::set<uint64_t> Ref;
  Rng R(55);
  for (int I = 0; I != 20000; ++I) {
    // Bias keys into a few chunks to exercise promotion and demotion.
    uint64_t Key = (R.nextBelow(3) << 16) | R.nextBelow(6000);
    if (R.nextBool(0.65)) {
      EXPECT_EQ(Set.insert(Key), Ref.insert(Key).second);
    } else {
      EXPECT_EQ(Set.remove(Key), Ref.erase(Key) != 0);
    }
    ASSERT_EQ(Set.size(), Ref.size());
  }
  std::vector<uint64_t> Contents;
  Set.forEach([&](uint64_t Key) { Contents.push_back(Key); });
  EXPECT_TRUE(std::equal(Contents.begin(), Contents.end(), Ref.begin(),
                         Ref.end()));
}

TEST(Roaring, CopyAssignIsDeep) {
  RoaringBitSet A;
  for (uint64_t I = 0; I != 100; ++I)
    A.insert(I);
  RoaringBitSet B;
  B = A;
  B.insert(200);
  EXPECT_EQ(A.size(), 100u);
  EXPECT_EQ(B.size(), 101u);
}

TEST(Roaring, MemoryFavorsSparseData) {
  // The RQ4 case study: a bitset over a 2^20 universe with 100 members
  // wastes its bits; roaring stores them compactly.
  RoaringBitSet Sparse;
  for (uint64_t I = 0; I != 100; ++I)
    Sparse.insert(I * 10000);
  // 100 members spread over ~15 chunks of arrays: well under the 128 KiB a
  // flat bitset over [0, 10^6) would take.
  EXPECT_LT(Sparse.memoryBytes(), 16384u);
}

} // namespace
