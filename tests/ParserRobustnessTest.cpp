//===- ParserRobustnessTest.cpp -------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Fuzz-lite robustness: random mutations of valid programs must never
/// crash the lexer/parser/verifier — they either parse (and then verify
/// or produce diagnostics) or fail with a diagnostic. Also covers
/// truncation at every prefix length of a representative program.
///
//===----------------------------------------------------------------------===//

#include "bench/Benchmarks.h"
#include "ir/IR.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace ade;

namespace {

/// Parses and, when parsing succeeds, verifies. Must not crash.
void parseCalmly(const std::string &Src) {
  std::vector<std::string> Errors;
  auto M = parser::parseModule(Src, Errors);
  if (!M) {
    EXPECT_FALSE(Errors.empty()) << "failure without diagnostics";
    return;
  }
  std::vector<std::string> VErrors;
  ir::verifyModule(*M, VErrors); // Either outcome is acceptable.
}

std::string baseProgram() {
  return bench::findBenchmark("BFS")->Source;
}

TEST(ParserRobustness, TruncationAtEveryChunk) {
  std::string Src = baseProgram();
  for (size_t Len = 0; Len < Src.size(); Len += 37)
    parseCalmly(Src.substr(0, Len));
}

TEST(ParserRobustness, RandomCharacterSubstitution) {
  std::string Base = baseProgram();
  const char Alphabet[] = "abz%@{}()<>,=:0198 \n\"#-";
  Rng R(31337);
  for (int Trial = 0; Trial != 300; ++Trial) {
    std::string Src = Base;
    int Edits = 1 + static_cast<int>(R.nextBelow(4));
    for (int E = 0; E != Edits; ++E)
      Src[R.nextBelow(Src.size())] =
          Alphabet[R.nextBelow(sizeof(Alphabet) - 1)];
    parseCalmly(Src);
  }
}

TEST(ParserRobustness, RandomLineDeletion) {
  std::string Base = baseProgram();
  Rng R(777);
  for (int Trial = 0; Trial != 100; ++Trial) {
    std::vector<std::string> Lines;
    size_t Pos = 0;
    while (Pos < Base.size()) {
      size_t Nl = Base.find('\n', Pos);
      if (Nl == std::string::npos)
        Nl = Base.size();
      Lines.push_back(Base.substr(Pos, Nl - Pos));
      Pos = Nl + 1;
    }
    // Drop a few lines.
    std::string Src;
    for (const std::string &Line : Lines)
      if (!R.nextBool(0.1))
        Src += Line + "\n";
    parseCalmly(Src);
  }
}

TEST(ParserRobustness, TokenSoup) {
  const char *Tokens[] = {"fn",   "@f",    "(",      ")",    "{",
                          "}",    "%x",    "=",      "const", "1",
                          ":",    "u64",   "yield",  "ret",   "if",
                          "else", "new",   "Set",    "<",     ">",
                          "read", "write", "#pragma", "ade",  "dowhile"};
  Rng R(4242);
  for (int Trial = 0; Trial != 200; ++Trial) {
    std::string Src;
    int Len = 5 + static_cast<int>(R.nextBelow(60));
    for (int T = 0; T != Len; ++T) {
      Src += Tokens[R.nextBelow(std::size(Tokens))];
      Src += R.nextBool(0.2) ? "\n" : " ";
    }
    parseCalmly(Src);
  }
}

TEST(ParserRobustness, DeepNestingDoesNotOverflowQuickly) {
  // 200 nested ifs parse and verify fine (recursion depth is modest).
  std::string Src = "fn @f(%c: bool) {\n";
  for (int I = 0; I != 200; ++I)
    Src += "if %c {\n";
  Src += "yield\n";
  for (int I = 0; I != 200; ++I)
    Src += "} else {\nyield\n}\nyield\n";
  // The outermost construct needs ret instead of yield; just check we
  // do not crash — diagnostics are acceptable.
  Src += "ret\n}\n";
  parseCalmly(Src);
}

TEST(ParserRobustness, EmptyAndWhitespaceOnly) {
  parseCalmly("");
  parseCalmly("   \n\t  \n");
  parseCalmly("// only a comment\n");
}

//===----------------------------------------------------------------------===//
// Error recovery: one run reports every diagnostic, not just the first
//===----------------------------------------------------------------------===//

std::vector<std::string> collectErrors(const std::string &Src) {
  std::vector<std::string> Errors;
  auto M = parser::parseModule(Src, Errors);
  EXPECT_EQ(M, nullptr);
  return Errors;
}

bool anyContains(const std::vector<std::string> &Errors, const char *Needle) {
  for (const std::string &E : Errors)
    if (E.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(ParserRecovery, AllStatementErrorsInOneFunctionReported) {
  std::vector<std::string> Errors = collectErrors(R"(fn @f() -> u64 {
  %a = frobnicate
  %b = const 1 : u64
  %c = wibble
  %d = add %b, %b
  %e = pop %d
  ret %d
})");
  EXPECT_GE(Errors.size(), 3u);
  EXPECT_TRUE(anyContains(Errors, "frobnicate"));
  EXPECT_TRUE(anyContains(Errors, "wibble"));
  EXPECT_TRUE(anyContains(Errors, "pop requires a Seq"));
}

TEST(ParserRecovery, ErrorsAcrossFunctionsReported) {
  std::vector<std::string> Errors = collectErrors(R"(fn @a() -> u64 {
  %x = bogus_op
  ret %x
}
fn @b() -> u64 {
  %y = another_bogus
  ret %y
}
global 42
fn @c() -> u64 {
  %z = const 3 : u64
  ret %z
})");
  EXPECT_TRUE(anyContains(Errors, "bogus_op"));
  EXPECT_TRUE(anyContains(Errors, "another_bogus"));
  EXPECT_TRUE(anyContains(Errors, "expected global name"));
}

TEST(ParserRecovery, StatementErrorInsideLoopBodyRecovers) {
  std::vector<std::string> Errors = collectErrors(R"(fn @f(%s: Set<u64>) {
  foreach %s -> [%k] {
    %t = nonsense
    yield
  }
  %u = more_nonsense
  ret
})");
  EXPECT_TRUE(anyContains(Errors, "nonsense"));
  EXPECT_TRUE(anyContains(Errors, "more_nonsense"));
}

TEST(ParserRecovery, ErrorCountIsCapped) {
  std::string Src = "fn @f() -> u64 {\n";
  for (int I = 0; I != 60; ++I)
    Src += "  %v" + std::to_string(I) + " = junk_op_" + std::to_string(I) +
           "\n";
  Src += "  %r = const 0 : u64\n  ret %r\n}\n";
  std::vector<std::string> Errors = collectErrors(Src);
  EXPECT_LE(Errors.size(), 21u); // 20 diagnostics + the cap note.
  EXPECT_TRUE(anyContains(Errors, "too many errors"));
}

TEST(ParserRecovery, DuplicateFunctionBodyIsNotParsedTwice) {
  std::vector<std::string> Errors = collectErrors(R"(fn @f() -> u64 {
  %a = const 1 : u64
  ret %a
}
fn @f() -> u64 {
  %b = const 2 : u64
  ret %b
})");
  EXPECT_TRUE(anyContains(Errors, "duplicate function"));
}

} // namespace
