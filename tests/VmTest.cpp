//===- VmTest.cpp - Bytecode VM differential and unit tests ---------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The bytecode VM against the tree-walking reference: every observable
/// — termination status, diagnostic text, @main's result, scalar
/// globals, and the charged instruction count — must be bit-identical
/// on the shipped examples, on generated fuzz programs, and on programs
/// picked to exercise each superinstruction, the inline caches and the
/// guard rails.
///
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "fuzz/Generator.h"
#include "interp/InterpError.h"
#include "ir/IR.h"
#include "ir/Printer.h"
#include "parser/Parser.h"
#include "support/Casting.h"
#include "support/RawOstream.h"
#include "vm/Engine.h"
#include "vm/VM.h"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace ade;
using namespace ade::vm;

namespace {

std::string readFixture(const char *Rel) {
  std::ifstream In(std::string(ADE_SOURCE_DIR) + "/" + Rel);
  EXPECT_TRUE(In.good()) << Rel;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Everything one engine run exposes.
struct Run {
  bool Ok = false;
  std::string Error;
  uint64_t Result = 0;
  uint64_t Instructions = 0;
  std::vector<uint64_t> Globals;
};

std::vector<std::string> scalarGlobals(const ir::Module &M) {
  std::vector<std::string> Out;
  for (const auto &G : M.globals())
    if (!G->Ty->isCollection() && !isa<ir::EnumType>(G->Ty))
      Out.push_back(G->Name);
  return Out;
}

Run runEngine(EngineKind K, const ir::Module &M,
              const interp::InterpOptions &Opts,
              const std::vector<uint64_t> &Args) {
  Run R;
  Engine E(K, M, Opts);
  try {
    R.Result = E.callByName("main", Args);
  } catch (const interp::InterpError &Err) {
    R.Error = Err.what();
    return R;
  }
  R.Ok = true;
  R.Instructions = E.stats().InstructionsExecuted;
  for (const std::string &Name : scalarGlobals(M))
    R.Globals.push_back(E.globalValue(Name));
  return R;
}

/// Runs \p Src under both engines and asserts bit-equal observables,
/// including the charged instruction count on clean runs.
void expectEngineParity(const std::string &Src,
                        const interp::InterpOptions &Opts = {},
                        const std::vector<uint64_t> &Args = {},
                        const char *Tag = "") {
  auto M = parser::parseModuleOrDie(Src);
  Run Tree = runEngine(EngineKind::Tree, *M, Opts, Args);
  Run Vm = runEngine(EngineKind::Vm, *M, Opts, Args);
  ASSERT_EQ(Tree.Ok, Vm.Ok) << Tag << ": tree '" << Tree.Error << "' vm '"
                            << Vm.Error << "'";
  if (!Tree.Ok) {
    EXPECT_EQ(Tree.Error, Vm.Error) << Tag;
    return;
  }
  EXPECT_EQ(Tree.Result, Vm.Result) << Tag;
  EXPECT_EQ(Tree.Instructions, Vm.Instructions)
      << Tag << ": charge accounting diverged";
  EXPECT_EQ(Tree.Globals, Vm.Globals) << Tag;
}

//===----------------------------------------------------------------------===//
// Differential suites
//===----------------------------------------------------------------------===//

TEST(VmDifferential, ShippedExamples) {
  for (const char *Rel :
       {"examples/histogram.memoir", "examples/unionfind.memoir"}) {
    std::string Src = readFixture(Rel);
    expectEngineParity(Src, {}, {}, Rel);
    // And after the full ADE pipeline, which rewrites the collection
    // implementations the inline caches classify.
    auto M = parser::parseModuleOrDie(Src);
    core::runADE(*M);
    std::string Lowered;
    {
      RawStringOstream OS(Lowered);
      ir::printModule(*M, OS);
    }
    expectEngineParity(Lowered, {}, {}, Rel);
  }
}

TEST(VmDifferential, ThreeHundredFuzzSeeds) {
  interp::InterpOptions Opts;
  Opts.MaxSteps = 50'000'000;
  Opts.MaxBytes = 512ull << 20;
  Opts.MaxDepth = 512;
  for (uint64_t Seed = 0; Seed != 300; ++Seed) {
    fuzz::GeneratorOptions GO;
    GO.Seed = Seed;
    std::string Program = fuzz::generateProgram(GO);
    expectEngineParity(Program, Opts, {},
                       ("seed " + std::to_string(Seed)).c_str());
  }
}

TEST(VmDifferential, FuzzSeedsWithStepBudgetDisablesFusion) {
  // A step budget turns fusion off (fused pairs would charge their two
  // steps atomically and move the trap point); the unfused bytecode must
  // still match the tree-walker exactly.
  interp::InterpOptions Opts;
  Opts.MaxSteps = 50'000'000;
  for (uint64_t Seed = 300; Seed != 340; ++Seed) {
    fuzz::GeneratorOptions GO;
    GO.Seed = Seed;
    expectEngineParity(fuzz::generateProgram(GO), Opts, {},
                       ("seed " + std::to_string(Seed)).c_str());
  }
}

//===----------------------------------------------------------------------===//
// Superinstructions
//===----------------------------------------------------------------------===//

TEST(VmFusion, ArithmeticLoopCompilesToSuperinstructions) {
  const char *Src = R"(fn @main(%n: u64) -> u64 {
  %zero = const 0 : u64
  %one = const 1 : u64
  %sum = forrange %zero, %n -> [%i] iter(%acc = %zero) {
    %x = xor %i, %one
    %y = add %x, %one
    %z = add %acc, %y
    yield %z
  }
  ret %sum
})";
  auto M = parser::parseModuleOrDie(Src);
  VM V(*M);
  // sum of (i ^ 1) + 1 for i in [0, 100): xor with 1 only swaps pair
  // members, so the xor'd terms sum like i itself.
  EXPECT_EQ(V.callByName("main", {100}), 5050u);
  std::string Dis = disassemble(V.compiled(M->getFunction("main")));
  // xor+add pair into one dispatch, the accumulate folded into the
  // rotated back edge.
  EXPECT_NE(Dis.find("BinPairXorAdd"), std::string::npos) << Dis;
  EXPECT_NE(Dis.find("AddIncJumpLt"), std::string::npos) << Dis;
  expectEngineParity(Src, {}, {100}, "fused arithmetic");
}

TEST(VmFusion, StepBudgetKeepsChargesUnfused) {
  const char *Src = R"(fn @main(%n: u64) -> u64 {
  %zero = const 0 : u64
  %one = const 1 : u64
  %sum = forrange %zero, %n -> [%i] iter(%acc = %zero) {
    %x = xor %i, %one
    %y = add %x, %one
    %z = add %acc, %y
    yield %z
  }
  ret %sum
})";
  auto M = parser::parseModuleOrDie(Src);
  interp::InterpOptions Opts;
  Opts.MaxSteps = 1'000'000;
  VM V(*M, Opts);
  V.callByName("main", {100});
  std::string Dis = disassemble(V.compiled(M->getFunction("main")));
  EXPECT_EQ(Dis.find("BinPair"), std::string::npos) << Dis;
  EXPECT_EQ(Dis.find("AddIncJumpLt"), std::string::npos) << Dis;
  expectEngineParity(Src, Opts, {100}, "unfused arithmetic");
}

TEST(VmFusion, HasBranchReadAddAndEncInsert) {
  // One program exercising the collection superinstructions: has+branch,
  // read+add and enc+insert, against the tree-walker.
  const char *Src = R"(global @e : Enum<u64>
fn @main() -> u64 {
  %zero = const 0 : u64
  %n = const 64 : u64
  %one = const 1 : u64
  %s = new Set{HashSet}<u64>
  %m = new Map{HashMap}<u64, u64>
  %q = new Seq<u64>
  %e = gget @e
  %es = new Set{BitSet}<idx>
  forrange %zero, %n -> [%i] {
    %bit = and %i, %one
    insert %s, %bit
    write %m, %i, %i
    append %q, %i
    %added = enum.add %e, %i
    %id = enc %e, %i
    insert %es, %id
    yield
  }
  %sum = forrange %zero, %n -> [%i] iter(%acc = %zero) {
    %hit = has %s, %i
    %r = if %hit {
      %v = read %m, %i
      %a = add %v, %one
      yield %a
    } else {
      yield %zero
    }
    %sv = read %q, %i
    %t = add %r, %sv
    %next = add %acc, %t
    yield %next
  }
  %count = size %es
  %total = add %sum, %count
  ret %total
})";
  auto M = parser::parseModuleOrDie(Src);
  VM V(*M);
  uint64_t Result = V.callByName("main", {});
  std::string Dis = disassemble(V.compiled(M->getFunction("main")));
  EXPECT_NE(Dis.find("HasBrFalse"), std::string::npos) << Dis;
  EXPECT_NE(Dis.find("MapReadAdd"), std::string::npos) << Dis;
  EXPECT_NE(Dis.find("SeqReadAdd"), std::string::npos) << Dis;
  EXPECT_NE(Dis.find("EncInsert"), std::string::npos) << Dis;
  // has hits only for i in {0, 1}: r = m[i]+1 = i+1 there, else 0;
  // sv = i each iteration; enc'd identifiers count 64.
  uint64_t Expect = (1 + 2) + (64 * 63) / 2 + 64;
  EXPECT_EQ(Result, Expect);
  expectEngineParity(Src, {}, {}, "collection superinstructions");
}

//===----------------------------------------------------------------------===//
// Inline caches
//===----------------------------------------------------------------------===//

TEST(VmInlineCache, PolymorphicSiteRefills) {
  // One insert site alternating between two collections every iteration:
  // the monomorphic cache misses and refills each time, and must never
  // apply a stale classification.
  const char *Src = R"(fn @main() -> u64 {
  %zero = const 0 : u64
  %one = const 1 : u64
  %n = const 100 : u64
  %s1 = new Set{HashSet}<u64>
  %s2 = new Set{HashSet}<u64>
  forrange %zero, %n -> [%i] {
    %bit = and %i, %one
    %odd = eq %bit, %one
    %s = select %odd, %s1, %s2
    insert %s, %i
    yield
  }
  %a = size %s1
  %b = size %s2
  %total = add %a, %b
  ret %total
})";
  auto M = parser::parseModuleOrDie(Src);
  VM V(*M);
  EXPECT_EQ(V.callByName("main", {}), 100u);
  expectEngineParity(Src, {}, {}, "polymorphic cache site");
}

TEST(VmInlineCache, RepeatedCallsReuseCompiledCode) {
  const char *Src = R"(fn @main(%n: u64) -> u64 {
  %zero = const 0 : u64
  %s = new Set{SwissSet}<u64>
  forrange %zero, %n -> [%i] {
    insert %s, %i
    yield
  }
  %c = size %s
  ret %c
})";
  auto M = parser::parseModuleOrDie(Src);
  VM V(*M);
  // Fresh collections per call, same cached bytecode and cache slots.
  EXPECT_EQ(V.callByName("main", {10}), 10u);
  EXPECT_EQ(V.callByName("main", {20}), 20u);
  EXPECT_EQ(V.callByName("main", {0}), 0u);
}

//===----------------------------------------------------------------------===//
// Guard rails and traps
//===----------------------------------------------------------------------===//

TEST(VmGuardRails, StepBudgetMatchesTreeWalker) {
  const char *Src = R"(fn @main() -> u64 {
  %zero = const 0 : u64
  %lots = const 1000000 : u64
  %sum = forrange %zero, %lots -> [%i] iter(%acc = %zero) {
    %next = add %acc, %i
    yield %next
  }
  ret %sum
})";
  interp::InterpOptions Opts;
  Opts.MaxSteps = 1000;
  expectEngineParity(Src, Opts, {}, "step budget");
  auto M = parser::parseModuleOrDie(Src);
  Engine E(EngineKind::Vm, *M, Opts);
  try {
    E.callByName("main", {});
    FAIL() << "expected a step-budget trap";
  } catch (const interp::InterpError &Err) {
    EXPECT_NE(std::string(Err.what())
                  .find("instruction budget (--max-steps) exceeded"),
              std::string::npos)
        << Err.what();
  }
}

TEST(VmGuardRails, DepthAndDivisionTrapsMatch) {
  const char *Recurse = R"(fn @spin(%n: u64) -> u64 {
  %r = call @spin(%n)
  ret %r
}
fn @main() -> u64 {
  %zero = const 0 : u64
  %r = call @spin(%zero)
  ret %r
})";
  interp::InterpOptions Opts;
  Opts.MaxDepth = 64;
  expectEngineParity(Recurse, Opts, {}, "depth budget");

  const char *DivZero = R"(fn @main() -> u64 {
  %a = const 7 : u64
  %b = const 0 : u64
  %c = div %a, %b
  ret %c
})";
  expectEngineParity(DivZero, {}, {}, "division by zero");

  const char *MissingKey = R"(fn @main() -> u64 {
  %m = new Map{HashMap}<u64, u64>
  %k = const 9 : u64
  %v = read %m, %k
  ret %v
})";
  expectEngineParity(MissingKey, {}, {}, "missing map key");
}

//===----------------------------------------------------------------------===//
// Engine plumbing
//===----------------------------------------------------------------------===//

TEST(VmEngine, NamesRoundTrip) {
  EngineKind K = EngineKind::Tree;
  EXPECT_TRUE(engineFromName("vm", K));
  EXPECT_EQ(K, EngineKind::Vm);
  EXPECT_TRUE(engineFromName("tree", K));
  EXPECT_EQ(K, EngineKind::Tree);
  EXPECT_FALSE(engineFromName("jit", K));
  EXPECT_STREQ(engineName(EngineKind::Vm), "vm");
  EXPECT_STREQ(engineName(EngineKind::Tree), "tree");
}

TEST(VmEngine, GlobalsAndProbeTotals) {
  const char *Src = R"(global @hits : u64
fn @main() -> u64 {
  %zero = const 0 : u64
  %n = const 32 : u64
  %s = new Set{HashSet}<u64>
  %count = forrange %zero, %n -> [%i] iter(%acc = %zero) {
    insert %s, %i
    %hit = has %s, %i
    %h = cast %hit : u64
    %inc = add %acc, %h
    yield %inc
  }
  gset @hits, %count
  ret %count
})";
  auto M = parser::parseModuleOrDie(Src);
  Engine E(EngineKind::Vm, *M, {});
  EXPECT_EQ(E.callByName("main", {}), 32u);
  EXPECT_EQ(E.globalValue("hits"), 32u);
  E.setGlobalValue("hits", 7);
  EXPECT_EQ(E.globalValue("hits"), 7u);
  // The hash set was probed; totals must be visible through the engine.
  EXPECT_GT(E.probeTotals().Probes, 0u);
}

} // namespace
