//===- SupportUnionFindTest.cpp -------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

using ade::KeyedUnionFind;
using ade::UnionFind;

namespace {

TEST(UnionFind, SingletonsAreDistinct) {
  UnionFind UF(4);
  EXPECT_EQ(UF.numSets(), 4u);
  for (uint32_t I = 0; I != 4; ++I)
    EXPECT_EQ(UF.find(I), I);
}

TEST(UnionFind, UniteMergesAndIsIdempotent) {
  UnionFind UF(4);
  UF.unite(0, 1);
  EXPECT_TRUE(UF.connected(0, 1));
  EXPECT_FALSE(UF.connected(0, 2));
  uint32_t Root = UF.find(0);
  EXPECT_EQ(UF.unite(1, 0), Root);
  EXPECT_EQ(UF.numSets(), 3u);
}

TEST(UnionFind, TransitiveUnions) {
  UnionFind UF(6);
  UF.unite(0, 1);
  UF.unite(2, 3);
  UF.unite(1, 2);
  EXPECT_TRUE(UF.connected(0, 3));
  EXPECT_FALSE(UF.connected(0, 4));
  EXPECT_EQ(UF.numSets(), 3u); // {0,1,2,3}, {4}, {5}
}

TEST(UnionFind, GrowPreservesExistingSets) {
  UnionFind UF(2);
  UF.unite(0, 1);
  UF.grow(5);
  EXPECT_TRUE(UF.connected(0, 1));
  EXPECT_FALSE(UF.connected(0, 4));
  EXPECT_EQ(UF.size(), 5u);
}

TEST(UnionFind, MakeSetAppends) {
  UnionFind UF;
  uint32_t A = UF.makeSet();
  uint32_t B = UF.makeSet();
  EXPECT_NE(A, B);
  EXPECT_FALSE(UF.connected(A, B));
}

// Differential test against a naive labeling implementation.
TEST(UnionFind, RandomizedAgainstNaiveLabels) {
  constexpr uint32_t N = 200;
  UnionFind UF(N);
  std::vector<uint32_t> Label(N);
  for (uint32_t I = 0; I != N; ++I)
    Label[I] = I;

  ade::Rng Rng(42);
  for (int Step = 0; Step != 500; ++Step) {
    uint32_t A = static_cast<uint32_t>(Rng.nextBelow(N));
    uint32_t B = static_cast<uint32_t>(Rng.nextBelow(N));
    if (Rng.nextBool(0.5)) {
      UF.unite(A, B);
      uint32_t From = Label[A], To = Label[B];
      for (uint32_t I = 0; I != N; ++I)
        if (Label[I] == From)
          Label[I] = To;
    } else {
      EXPECT_EQ(UF.connected(A, B), Label[A] == Label[B])
          << "step " << Step << " pair (" << A << "," << B << ")";
    }
  }
}

TEST(KeyedUnionFind, StringKeys) {
  KeyedUnionFind<std::string> UF;
  UF.unite("a", "b");
  UF.unite("c", "d");
  EXPECT_TRUE(UF.connected("a", "b"));
  EXPECT_FALSE(UF.connected("a", "c"));
  UF.unite("b", "c");
  EXPECT_TRUE(UF.connected("a", "d"));
  EXPECT_EQ(UF.size(), 4u);
}

TEST(KeyedUnionFind, ForEachVisitsAllKeys) {
  KeyedUnionFind<int> UF;
  UF.unite(1, 2);
  UF.unite(3, 4);
  std::map<uint32_t, int> ClassSizes;
  UF.forEach([&](int, uint32_t Rep) { ++ClassSizes[Rep]; });
  EXPECT_EQ(ClassSizes.size(), 2u);
  for (auto &[Rep, Size] : ClassSizes)
    EXPECT_EQ(Size, 2);
}

} // namespace
