# Runs ade-lint twice over every fixture in ${DIR} (all checkers, then
# JSON format) and fails unless both runs produce identical bytes.
# Guards the deterministic-iteration invariant: diagnostics and remarks
# must not depend on pointer order or hash-map iteration.
if(NOT DEFINED TOOL OR NOT DEFINED DIR)
  message(FATAL_ERROR "usage: cmake -DTOOL=<ade-lint> -DDIR=<fixtures> -P LintDeterminism.cmake")
endif()

file(GLOB FIXTURES "${DIR}/*.memoir")
list(SORT FIXTURES)
if(FIXTURES STREQUAL "")
  message(FATAL_ERROR "no .memoir fixtures under ${DIR}")
endif()

foreach(FORMAT text json)
  if(FORMAT STREQUAL "json")
    set(FLAGS --diag-format=json)
  else()
    set(FLAGS)
  endif()
  foreach(FIXTURE ${FIXTURES})
    # Outputs may contain semicolons, so keep them in scalar variables
    # (a CMake list would split them).
    foreach(RUN 1 2)
      execute_process(
        COMMAND ${TOOL} ${FLAGS} ${FIXTURE}
        OUTPUT_VARIABLE OUT
        ERROR_VARIABLE ERR
        RESULT_VARIABLE RC)
      # Lint findings exit non-zero by design; only crashes are fatal.
      if(RC GREATER 1)
        message(FATAL_ERROR "${TOOL} crashed (rc=${RC}) on ${FIXTURE}: ${ERR}")
      endif()
      set(RUN${RUN} "${OUT}\n---stderr---\n${ERR}")
    endforeach()
    set(FIRST "${RUN1}")
    set(SECOND "${RUN2}")
    if(NOT FIRST STREQUAL SECOND)
      message(FATAL_ERROR
        "non-deterministic output for ${FIXTURE} (${FORMAT}):\n"
        "--- run 1 ---\n${FIRST}\n--- run 2 ---\n${SECOND}")
    endif()
  endforeach()
endforeach()

message(STATUS "lint output deterministic across ${FIXTURES}")
