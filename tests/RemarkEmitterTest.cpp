//===- RemarkEmitterTest.cpp ----------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The IR-aware remark emission layer: builder anchoring on instructions
/// and collection roots, provenance linking, and the pipeline-level
/// guarantee that a full ADE run leaves a verifiable stream behind.
///
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "core/Pipeline.h"
#include "core/RemarkEmitter.h"
#include "core/Transform.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace ade;
using namespace ade::core;
using namespace ade::remarks;

namespace {

const char *HistogramSrc = R"(fn @count(%input: Seq<u64>) -> u64 {
  %hist = new Map<u64, u32>
  foreach %input -> [%i, %val] {
    %cond = has %hist, %val
    %freq0 = if %cond {
      %f = read %hist, %val
      yield %f
    } else {
      insert %hist, %val
      %z = const 0 : u32
      yield %z
    }
    %one = const 1 : u32
    %freq1 = add %freq0, %one
    write %hist, %val, %freq1
    yield
  }
  %sz = size %hist
  ret %sz
}

fn @main() -> u64 {
  %input = new Seq<u64>
  %lo = const 0 : u64
  %hi = const 100 : u64
  forrange %lo, %hi -> [%i] {
    append %input, %i
    yield
  }
  %distinct = call @count(%input)
  ret %distinct
})";

TEST(RemarkEmitter, BuilderTypedArgsAndIds) {
  RemarkEmitter RE;
  uint64_t First = RE.passed("plan", "enum-created")
                       .arg("keyType", "u64")
                       .arg("benefit", uint64_t(12))
                       .arg("delta", int64_t(-3))
                       .arg("forced", false)
                       .id();
  EXPECT_EQ(First, 1u);
  const Remark &R = RE.stream().remarks()[0];
  ASSERT_EQ(R.Args.size(), 4u);
  EXPECT_EQ(R.Args[0].Ty, Arg::Type::String);
  EXPECT_EQ(R.Args[1].Ty, Arg::Type::UInt);
  EXPECT_EQ(R.Args[2].Ty, Arg::Type::Int);
  EXPECT_EQ(R.Args[3].Ty, Arg::Type::Bool);
  EXPECT_EQ(RE.missed("share", "rejected").id(), 2u);
  EXPECT_EQ(RE.analysis("plan", "benefit").id(), 3u);
}

TEST(RemarkEmitter, ParentZeroMeansNoProvenance) {
  RemarkEmitter RE;
  uint64_t Root = RE.passed("plan", "enum-created").id();
  RE.passed("share", "merged").parent(0).parent(Root).parent(0);
  const Remark &R = RE.stream().remarks()[1];
  ASSERT_EQ(R.Parents.size(), 1u);
  EXPECT_EQ(R.Parents[0], Root);
  std::string Error;
  EXPECT_TRUE(RE.stream().verify(&Error)) << Error;
}

TEST(RemarkEmitter, BuilderSurvivesStreamGrowth) {
  RemarkEmitter RE;
  // Hold a builder across enough emissions to force the stream's vector
  // to reallocate; the builder indexes the stream, it must not dangle.
  auto B = RE.passed("plan", "enum-created");
  for (int I = 0; I != 100; ++I)
    RE.analysis("plan", "benefit");
  B.arg("late", true);
  ASSERT_EQ(RE.stream().remarks()[0].Args.size(), 1u);
  EXPECT_EQ(RE.stream().remarks()[0].Args[0].Key, "late");
}

TEST(RemarkEmitter, AtAnchorsInstructionLocationAndFunction) {
  auto M = parser::parseModuleOrDie(HistogramSrc);
  ModuleAnalysis MA(*M);
  // The allocation of %hist anchors the map's root.
  const RootInfo *Alloc = nullptr;
  for (const auto &R : MA.roots())
    if (R->TheKind == RootInfo::Kind::Alloc &&
        R->describe().find("%hist") != std::string::npos)
      Alloc = R.get();
  ASSERT_NE(Alloc, nullptr);

  RemarkEmitter RE;
  RE.passed("plan", "enum-created").atRoot(*Alloc);
  const Remark &R = RE.stream().remarks()[0];
  EXPECT_EQ(R.Function, "count");
  EXPECT_EQ(R.Line, 2u);
  EXPECT_EQ(R.Col, 11u);
  ASSERT_NE(R.arg("root"), nullptr);
  EXPECT_EQ(R.arg("root")->Str, Alloc->describe());
}

TEST(RemarkEmitter, ParamRootHasFunctionButNoLocation) {
  auto M = parser::parseModuleOrDie(HistogramSrc);
  ModuleAnalysis MA(*M);
  const RootInfo *Param = nullptr;
  for (const auto &R : MA.roots())
    if (R->TheKind == RootInfo::Kind::Param)
      Param = R.get();
  ASSERT_NE(Param, nullptr);

  RemarkEmitter RE;
  RE.missed("plan", "enum-rejected").atRoot(*Param);
  const Remark &R = RE.stream().remarks()[0];
  EXPECT_FALSE(R.hasLoc());
  EXPECT_EQ(R.Function, "count");
}

TEST(RemarkEmitter, FullPipelineLeavesVerifiableStream) {
  auto M = parser::parseModuleOrDie(HistogramSrc);
  RemarkEmitter RE;
  PipelineConfig PC;
  PC.Remarks = &RE;
  runADE(*M, PC);

  const RemarkStream &S = RE.stream();
  std::string Error;
  ASSERT_TRUE(S.verify(&Error)) << Error;
  EXPECT_GT(S.count(Kind::Passed), 0u);
  EXPECT_GT(S.count(Kind::Analysis), 0u);

  // The selection report is a pure view over the stream: one row per
  // selection:select remark, in emission order.
  std::vector<SelectionDecision> Rows = selectionDecisions(S);
  size_t Selects = 0;
  for (const Remark &R : S.remarks())
    Selects += R.Pass == "selection" && R.Name == "select";
  EXPECT_EQ(Rows.size(), Selects);
  bool SawEnumerated = false;
  for (const SelectionDecision &D : Rows)
    SawEnumerated |= D.KeyEnumerated;
  EXPECT_TRUE(SawEnumerated);
}

} // namespace
