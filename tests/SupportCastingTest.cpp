//===- SupportCastingTest.cpp ---------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"

#include <gtest/gtest.h>

namespace {

class Shape {
public:
  enum class Kind { Circle, Square };
  explicit Shape(Kind K) : TheKind(K) {}
  Kind kind() const { return TheKind; }

private:
  Kind TheKind;
};

class Circle : public Shape {
public:
  Circle() : Shape(Kind::Circle) {}
  static bool classof(const Shape *S) { return S->kind() == Kind::Circle; }
};

class Square : public Shape {
public:
  Square() : Shape(Kind::Square) {}
  static bool classof(const Shape *S) { return S->kind() == Kind::Square; }
};

TEST(Casting, IsaMatchesDynamicKind) {
  Circle C;
  Square S;
  Shape *AsShape = &C;
  EXPECT_TRUE(ade::isa<Circle>(AsShape));
  EXPECT_FALSE(ade::isa<Square>(AsShape));
  EXPECT_TRUE(ade::isa<Square>(&S));
}

TEST(Casting, DynCastReturnsNullOnMismatch) {
  Circle C;
  Shape *AsShape = &C;
  EXPECT_EQ(ade::dyn_cast<Square>(AsShape), nullptr);
  EXPECT_EQ(ade::dyn_cast<Circle>(AsShape), &C);
}

TEST(Casting, CastPreservesConstness) {
  const Circle C;
  const Shape *AsShape = &C;
  const Circle *Back = ade::cast<Circle>(AsShape);
  EXPECT_EQ(Back, &C);
}

TEST(Casting, IsaAndPresentToleratesNull) {
  Shape *Null = nullptr;
  EXPECT_FALSE(ade::isa_and_present<Circle>(Null));
  EXPECT_EQ(ade::dyn_cast_if_present<Circle>(Null), nullptr);
}

TEST(Casting, ReferenceForms) {
  Circle C;
  Shape &AsShape = C;
  EXPECT_TRUE(ade::isa<Circle>(AsShape));
  Circle &Back = ade::cast<Circle>(AsShape);
  EXPECT_EQ(&Back, &C);
}

} // namespace
