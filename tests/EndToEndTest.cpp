//===- EndToEndTest.cpp ---------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Cross-cutting end-to-end properties: printer/parser round-trips over
/// every benchmark source (pre- and post-transform), verification of
/// every configuration's output, interprocedural aliasing through return
/// values, recursion, and randomized differential execution of the
/// paper's listing programs.
///
//===----------------------------------------------------------------------===//

#include "bench/Benchmarks.h"
#include "core/Pipeline.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace ade;
using namespace ade::core;
using namespace ade::interp;
using namespace ade::ir;

namespace {

class BenchmarkSourceTest
    : public ::testing::TestWithParam<const bench::BenchmarkSpec *> {};

TEST_P(BenchmarkSourceTest, PrintParseRoundTripIsFixpoint) {
  auto M1 = parser::parseModuleOrDie(GetParam()->Source);
  std::string P1 = toString(*M1);
  std::vector<std::string> Errors;
  auto M2 = parser::parseModule(P1, Errors);
  ASSERT_NE(M2, nullptr) << (Errors.empty() ? P1 : Errors[0]);
  EXPECT_EQ(P1, toString(*M2));
}

TEST_P(BenchmarkSourceTest, TransformedModuleRoundTrips) {
  // The transformed program (enum globals, idx types, selections,
  // translations) must itself print, re-parse and verify.
  auto M1 = parser::parseModuleOrDie(GetParam()->Source);
  runADE(*M1);
  std::string P1 = toString(*M1);
  std::vector<std::string> Errors;
  auto M2 = parser::parseModule(P1, Errors);
  ASSERT_NE(M2, nullptr) << (Errors.empty() ? P1 : Errors[0]);
  EXPECT_TRUE(verifyModule(*M2, Errors))
      << (Errors.empty() ? P1 : Errors[0]);
  EXPECT_EQ(P1, toString(*M2));
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkSourceTest,
    ::testing::ValuesIn([] {
      std::vector<const bench::BenchmarkSpec *> Ptrs;
      for (const bench::BenchmarkSpec &B : bench::allBenchmarks())
        Ptrs.push_back(&B);
      return Ptrs;
    }()),
    [](const ::testing::TestParamInfo<const bench::BenchmarkSpec *>
           &Info) { return Info.param->Abbrev; });

TEST(EndToEnd, ReturnedCollectionsUnifyWithCallResults) {
  // A collection constructed in a callee and returned is the same object
  // as the caller's value; enumeration must span both.
  const char *Src = R"(fn @mkset() -> Set<u64> {
  %s = new Set<u64>
  ret %s
}
fn @main() -> u64 {
  %s = call @mkset()
  %lo = const 0 : u64
  %hi = const 64 : u64
  forrange %lo, %hi -> [%i] {
    insert %s, %i
    yield
  }
  %zero = const 0 : u64
  %one = const 1 : u64
  %n = foreach %s -> [%k] iter(%acc = %zero) {
    %h = has %s, %k
    %inc = select %h, %one, %zero
    %next = add %acc, %inc
    yield %next
  }
  ret %n
})";
  auto Baseline = [&] {
    auto M = parser::parseModuleOrDie(Src);
    Interpreter I(*M);
    return I.callByName("main", {});
  }();
  EXPECT_EQ(Baseline, 64u);
  auto M = parser::parseModuleOrDie(Src);
  PipelineResult R = runADE(*M);
  ASSERT_EQ(R.Plan.Candidates.size(), 1u);
  // The callee's return type was rewritten along with the caller's view.
  EXPECT_EQ(M->getFunction("mkset")->returnType()->str(),
            "Set{BitSet}<idx>");
  Interpreter I(*M);
  EXPECT_EQ(I.callByName("main", {}), Baseline);
}

TEST(EndToEnd, RecursiveFunctionsReuseTheEnumeration) {
  // SIII-F: recursion must not rebuild enumerations per invocation. With
  // module-global enumerations this holds by construction; check that a
  // recursive walk over an enumerated map works and creates exactly one
  // enumeration.
  const char *Src = R"(global @next : Map<u64, u64>
fn @chase(%v: u64, %depth: u64) -> u64 {
  %zero = const 0 : u64
  %done = eq %depth, %zero
  %r = if %done {
    yield %v
  } else {
    %m = gget @next
    %n = read %m, %v
    %one = const 1 : u64
    %d2 = sub %depth, %one
    %r2 = call @chase(%n, %d2)
    yield %r2
  }
  ret %r
}
fn @main() -> u64 {
  #pragma ade enumerate
  %m = new Map<u64, u64>
  gset @next, %m
  %a = const 111 : u64
  %b = const 222 : u64
  %c = const 333 : u64
  write %m, %a, %b
  write %m, %b, %c
  write %m, %c, %a
  %five = const 5 : u64
  %r = call @chase(%a, %five)
  ret %r
})";
  auto Baseline = [&] {
    auto M = parser::parseModuleOrDie(Src);
    Interpreter I(*M);
    return I.callByName("main", {});
  }();
  auto M = parser::parseModuleOrDie(Src);
  PipelineResult R = runADE(*M);
  EXPECT_EQ(R.Transform.EnumerationsCreated, 1u);
  Interpreter I(*M);
  EXPECT_EQ(I.callByName("main", {}), Baseline);
}

TEST(EndToEnd, RandomizedHistogramDifferential) {
  // Property test: for random input streams, the transformed histogram
  // agrees with the baseline under every configuration.
  Rng R(555);
  for (int Trial = 0; Trial != 5; ++Trial) {
    std::string Src = R"(fn @main() -> u64 {
  %input = new Seq<u64>
)";
    int Len = 20 + static_cast<int>(R.nextBelow(60));
    for (int I = 0; I != Len; ++I) {
      uint64_t V = hashU64(R.nextBelow(12)) >> 1;
      Src += "  %v" + std::to_string(I) + " = const " + std::to_string(V) +
             " : u64\n";
      Src += "  append %input, %v" + std::to_string(I) + "\n";
    }
    Src += R"(  %r = call @count(%input)
  ret %r
}
fn @count(%input: Seq<u64>) -> u64 {
  %hist = new Map<u64, u32>
  foreach %input -> [%i, %val] {
    %cond = has %hist, %val
    %f0 = if %cond {
      %f = read %hist, %val
      yield %f
    } else {
      insert %hist, %val
      %z = const 0 : u32
      yield %z
    }
    %one = const 1 : u32
    %f1 = add %f0, %one
    write %hist, %val, %f1
    yield
  }
  %zero32 = const 0 : u32
  %best = foreach %hist -> [%k, %c] iter(%mx = %zero32) {
    %m = max %mx, %c
    yield %m
  }
  %b64 = cast %best : u64
  %sz = size %hist
  %r = mul %b64, %sz
  ret %r
})";
    auto Run = [&](bool Ade, PipelineConfig Config = {}) {
      auto M = parser::parseModuleOrDie(Src);
      if (Ade)
        runADE(*M, Config);
      Interpreter I(*M);
      return I.callByName("main", {});
    };
    uint64_t Baseline = Run(false);
    EXPECT_EQ(Run(true), Baseline) << "trial " << Trial;
    PipelineConfig NoRte;
    NoRte.EnableRTE = false;
    EXPECT_EQ(Run(true, NoRte), Baseline) << "trial " << Trial;
  }
}

TEST(EndToEnd, DirectiveRoundTripThroughPrinter) {
  // Directives survive print -> parse -> transform.
  const char *Src = R"(fn @main() -> u64 {
  #pragma ade enumerate noshare select(FlatSet)
  %s = new Set<u64>
  %k = const 4 : u64
  insert %s, %k
  %n = size %s
  ret %n
})";
  auto M1 = parser::parseModuleOrDie(Src);
  auto M2 = parser::parseModuleOrDie(toString(*M1));
  runADE(*M2);
  EXPECT_NE(toString(*M2).find("Set{FlatSet}<idx>"), std::string::npos)
      << toString(*M2);
}

} // namespace
