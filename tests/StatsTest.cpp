//===- StatsTest.cpp ------------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "stats/Statistic.h"
#include "stats/Stats.h"

#include "support/Json.h"
#include "support/RawOstream.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ade;
using namespace ade::stats;

namespace {

TEST(Geomean, BasicProperties) {
  EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_EQ(geomean({}), 0.0);
}

TEST(Geomean, InverseCancellation) {
  // Speedup and slowdown of equal magnitude cancel to 1.
  EXPECT_NEAR(geomean({3.0, 1.0 / 3.0}), 1.0, 1e-12);
}

TEST(Clustering, MergesNearestFirst) {
  // Three points on a line: 0, 1, 10. The first merge must join 0 and 1.
  std::vector<std::vector<double>> Points = {{0.0}, {1.0}, {10.0}};
  auto Merges = clusterAverageLinkage(Points);
  ASSERT_EQ(Merges.size(), 2u);
  EXPECT_EQ(std::min(Merges[0].Left, Merges[0].Right), 0u);
  EXPECT_EQ(std::max(Merges[0].Left, Merges[0].Right), 1u);
  EXPECT_NEAR(Merges[0].Distance, 1.0, 1e-12);
  // Second merge joins the pair-cluster (id 3) with leaf 2 at the average
  // distance ((10-0) + (10-1)) / 2 = 9.5.
  EXPECT_NEAR(Merges[1].Distance, 9.5, 1e-12);
}

TEST(Clustering, IdenticalPointsMergeAtZero) {
  std::vector<std::vector<double>> Points = {{1.0, 2.0}, {1.0, 2.0},
                                             {5.0, 5.0}};
  auto Merges = clusterAverageLinkage(Points);
  ASSERT_EQ(Merges.size(), 2u);
  EXPECT_NEAR(Merges[0].Distance, 0.0, 1e-12);
}

TEST(Clustering, HandlesDegenerateInputs) {
  EXPECT_TRUE(clusterAverageLinkage({}).empty());
  EXPECT_TRUE(clusterAverageLinkage({{1.0}}).empty());
}

TEST(Dendrogram, RendersEveryMerge) {
  std::vector<std::vector<double>> Points = {{0.0}, {1.0}, {10.0}};
  auto Merges = clusterAverageLinkage(Points);
  std::string Out;
  RawStringOstream OS(Out);
  printDendrogram(Merges, {"A", "B", "C"}, OS);
  EXPECT_NE(Out.find("merge 1: A + B"), std::string::npos) << Out;
  EXPECT_NE(Out.find("tree:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("C"), std::string::npos) << Out;
}

TEST(TablePrinting, AlignsColumns) {
  Table T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "22"});
  std::string Out;
  RawStringOstream OS(Out);
  T.print(OS);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 4);
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("------"), std::string::npos);
}

TEST(TablePrinting, Formatting) {
  EXPECT_EQ(Table::fmt(1.234, 2), "1.23");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.9512), "95.1%");
  EXPECT_EQ(Table::pct(1.5, 0), "150%");
}

ADE_STATISTIC(TestCounterA, "stats-test", "First test-only counter");
ADE_STATISTIC(TestCounterB, "stats-test", "Second test-only counter");

TEST(Statistics, RegisterIncrementAndReset) {
  resetAllStatistics();
  EXPECT_EQ(TestCounterA.value(), 0u);
  ++TestCounterA;
  TestCounterB += 5;
  EXPECT_EQ(TestCounterA.value(), 1u);
  EXPECT_EQ(TestCounterB.value(), 5u);
  EXPECT_TRUE(hasNonZeroStatistics());
  resetAllStatistics();
  EXPECT_EQ(TestCounterA.value(), 0u);
  EXPECT_EQ(TestCounterB.value(), 0u);
}

TEST(Statistics, VisitorSeesSortedRegisteredCounters) {
  resetAllStatistics();
  ++TestCounterA;
  bool SawA = false, SawB = false;
  std::string Prev;
  forEachStatistic([&](const Statistic &S) {
    std::string Key = std::string(S.component()) + "/" + S.name();
    EXPECT_LE(Prev, Key); // sorted by (component, name)
    Prev = Key;
    if (S.name() == std::string("TestCounterA")) {
      SawA = true;
      EXPECT_EQ(S.value(), 1u);
      EXPECT_EQ(std::string(S.component()), "stats-test");
    }
    if (S.name() == std::string("TestCounterB"))
      SawB = true;
  });
  EXPECT_TRUE(SawA);
  EXPECT_TRUE(SawB);
  resetAllStatistics();
}

TEST(Statistics, TextAndJsonRenderNonZeroOnly) {
  resetAllStatistics();
  TestCounterA += 7;
  std::string Text;
  {
    RawStringOstream OS(Text);
    printStatistics(OS);
  }
  EXPECT_NE(Text.find("TestCounterA"), std::string::npos);
  EXPECT_EQ(Text.find("TestCounterB"), std::string::npos); // zero: omitted

  std::string JsonText;
  {
    RawStringOstream OS(JsonText);
    json::Writer W(OS);
    writeStatisticsJson(W);
  }
  std::string Error;
  auto V = json::parse(JsonText, &Error);
  ASSERT_NE(V, nullptr) << Error;
  const json::Value *A = V->find("stats-test/TestCounterA");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->asUint(), 7u);
  EXPECT_EQ(V->find("stats-test/TestCounterB"), nullptr);
  resetAllStatistics();
}

} // namespace
