//===- CollectionsMemoryTest.cpp ------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Memory accounting invariants: every container reports its storage to the
/// global tracker, destruction returns it, and the peak is monotone. This
/// underwrites the paper's memory figures (5c, 8, 10), for which peak
/// tracked bytes stands in for maximum resident set size.
///
//===----------------------------------------------------------------------===//

#include "collections/Collections.h"

#include <gtest/gtest.h>

using namespace ade;

namespace {

TEST(MemoryTracker, AllocAndFreeBalance) {
  MemoryTracker &T = MemoryTracker::instance();
  uint64_t Before = T.currentBytes();
  {
    HashSet<uint64_t> Set;
    for (uint64_t I = 0; I != 1000; ++I)
      Set.insert(I);
    EXPECT_GT(T.currentBytes(), Before);
  }
  EXPECT_EQ(T.currentBytes(), Before);
}

TEST(MemoryTracker, PeakIsMonotoneUntilReset) {
  MemoryTracker &T = MemoryTracker::instance();
  T.reset();
  uint64_t Peak0 = T.peakBytes();
  {
    BitSet Set;
    Set.insert(1 << 20);
    EXPECT_GE(T.peakBytes(), Peak0 + (1 << 20) / 8);
  }
  // Peak persists after the set is gone.
  EXPECT_GE(T.peakBytes(), Peak0 + (1 << 20) / 8);
  T.reset();
  EXPECT_EQ(T.peakBytes(), T.currentBytes());
}

template <typename SetT> uint64_t trackedDeltaFor(size_t N) {
  MemoryTracker &T = MemoryTracker::instance();
  uint64_t Before = T.currentBytes();
  SetT Set;
  for (uint64_t I = 0; I != N; ++I)
    Set.insert(I * 31);
  uint64_t Delta = T.currentBytes() - Before;
  // The tracker must closely agree with the container's own accounting.
  EXPECT_GE(Delta, Set.memoryBytes() / 2);
  return Delta;
}

TEST(MemoryTracker, TracksEverySetImplementation) {
  EXPECT_GT(trackedDeltaFor<HashSet<uint64_t>>(5000), 0u);
  EXPECT_GT(trackedDeltaFor<SwissSet<uint64_t>>(5000), 0u);
  EXPECT_GT(trackedDeltaFor<FlatSet<uint64_t>>(5000), 0u);
  EXPECT_GT(trackedDeltaFor<BitSet>(5000), 0u);
  EXPECT_GT(trackedDeltaFor<RoaringBitSet>(5000), 0u);
}

TEST(MemoryTracker, HashNodesAreCounted) {
  MemoryTracker &T = MemoryTracker::instance();
  uint64_t Before = T.currentBytes();
  HashMap<uint64_t, uint64_t> Map;
  for (uint64_t I = 0; I != 100; ++I)
    Map.insertOrAssign(I, I);
  // At least 100 nodes of (key, value, next).
  EXPECT_GE(T.currentBytes() - Before, 100 * 3 * sizeof(uint64_t));
  Map.clear();
  EXPECT_EQ(T.currentBytes(), Before);
}

TEST(MemoryModel, BitSetStorageTracksUniverseNotCardinality) {
  BitSet Small, Large;
  for (uint64_t I = 0; I != 1000; ++I)
    Small.insert(I); // 1000 members in [0, 1000).
  Large.insert(1000000); // 1 member, universe 10^6: Table I storage is k.
  EXPECT_GT(Large.memoryBytes(), Small.memoryBytes());
}

TEST(MemoryModel, RoaringBeatsBitSetOnSparseUniverse) {
  // The RQ4 root cause: inner sets ranging over all objects while the
  // enumeration ranges over all pointers leaves bitsets 0.009% full.
  BitSet Dense;
  RoaringBitSet Sparse;
  for (uint64_t I = 0; I != 180; ++I) {
    uint64_t Key = I * 111111; // ~2*10^7 universe, 180 members.
    Dense.insert(Key);
    Sparse.insert(Key);
  }
  EXPECT_LT(Sparse.memoryBytes(), Dense.memoryBytes() / 100);
}

TEST(MemoryModel, FlatSetStoresOnlyMembers) {
  FlatSet<uint64_t> Flat;
  for (uint64_t I = 0; I != 180; ++I)
    Flat.insert(I * 111111);
  EXPECT_LE(Flat.memoryBytes(), 2 * 180 * sizeof(uint64_t));
}

TEST(MemoryModel, SequenceTracksCapacity) {
  MemoryTracker &T = MemoryTracker::instance();
  uint64_t Before = T.currentBytes();
  {
    Sequence<uint64_t> Seq;
    for (uint64_t I = 0; I != 10000; ++I)
      Seq.append(I);
    EXPECT_GE(T.currentBytes() - Before, 10000 * sizeof(uint64_t));
    EXPECT_EQ(Seq.size(), 10000u);
    EXPECT_EQ(Seq.at(5), 5u);
  }
  EXPECT_EQ(T.currentBytes(), Before);
}

} // namespace
