//===- WorkloadsTest.cpp --------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Structural properties of the synthetic workload generators (DESIGN.md
/// substitution 4): determinism, label sparsity, connectivity,
/// bipartiteness, well-formed transaction offsets and constraint kinds.
///
//===----------------------------------------------------------------------===//

#include "bench/Workloads.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace ade;
using namespace ade::bench;

namespace {

TEST(Workloads, LabelsAreSparseAndStable) {
  // Scrambled labels are deterministic, non-zero and far from dense.
  EXPECT_EQ(scrambleLabel(0), scrambleLabel(0));
  EXPECT_NE(scrambleLabel(0), scrambleLabel(1));
  std::set<uint64_t> Labels;
  uint64_t Small = 0;
  for (uint64_t I = 0; I != 1000; ++I) {
    uint64_t L = scrambleLabel(I);
    EXPECT_NE(L, 0u);
    Labels.insert(L);
    Small += L < 100000;
  }
  EXPECT_EQ(Labels.size(), 1000u); // No collisions in practice.
  EXPECT_LT(Small, 5u);            // Not a dense range.
}

TEST(Workloads, ConnectedGraphIsConnected) {
  Workload W = connectedGraph(500, 1200, 42);
  ASSERT_EQ(W.A.size(), W.B.size());
  // Union-find over dense re-labeled nodes.
  std::map<uint64_t, uint32_t> Ids;
  UnionFind UF;
  auto IdOf = [&](uint64_t Label) {
    auto [It, Inserted] = Ids.emplace(Label, 0);
    if (Inserted)
      It->second = UF.makeSet();
    return It->second;
  };
  for (size_t I = 0; I != W.A.size(); ++I)
    UF.unite(IdOf(W.A[I]), IdOf(W.B[I]));
  EXPECT_EQ(Ids.size(), 500u);
  EXPECT_EQ(UF.numSets(), 1u);
}

TEST(Workloads, WeightedGraphHasBoundedWeights) {
  Workload W = weightedGraph(200, 600, 5);
  ASSERT_EQ(W.C.size(), W.A.size());
  for (uint64_t Weight : W.C) {
    EXPECT_GE(Weight, 1u);
    EXPECT_LE(Weight, 16u);
  }
}

TEST(Workloads, RmatHasNoSelfLoopsAndSkewedDegrees) {
  Workload W = rmatGraph(1 << 12, 20000, 9);
  std::map<uint64_t, uint64_t> Degree;
  for (size_t I = 0; I != W.A.size(); ++I) {
    EXPECT_NE(W.A[I], W.B[I]);
    ++Degree[W.A[I]];
  }
  // Power-law-ish: the max degree far exceeds the mean.
  uint64_t Max = 0;
  for (auto &[Node, D] : Degree)
    Max = std::max(Max, D);
  double Mean = static_cast<double>(W.A.size()) /
                static_cast<double>(Degree.size());
  EXPECT_GT(static_cast<double>(Max), 8 * Mean);
}

TEST(Workloads, BipartitePartitionsAreDisjoint) {
  Workload W = bipartiteGraph(300, 900, 3);
  std::set<uint64_t> Left(W.A.begin(), W.A.end());
  std::set<uint64_t> Right(W.B.begin(), W.B.end());
  for (uint64_t R : Right)
    EXPECT_EQ(Left.count(R), 0u);
}

TEST(Workloads, FlowNetworkEndpoints) {
  Workload W = flowNetwork(5, 8, 4);
  ASSERT_EQ(W.C.size(), W.A.size());
  // Source appears only as a tail, sink only as a head.
  for (size_t I = 0; I != W.A.size(); ++I) {
    EXPECT_NE(W.B[I], W.P0);
    EXPECT_NE(W.A[I], W.P1);
    EXPECT_GE(W.C[I], 1u);
  }
}

TEST(Workloads, TransactionOffsetsAreWellFormed) {
  Workload W = transactions(500, 12, 300, 8);
  ASSERT_GE(W.C.size(), 2u);
  EXPECT_EQ(W.C.front(), 0u);
  EXPECT_EQ(W.C.back(), W.A.size());
  for (size_t I = 1; I != W.C.size(); ++I)
    EXPECT_LE(W.C[I - 1], W.C[I]);
  EXPECT_GT(W.P0, 0u); // Support threshold.
}

TEST(Workloads, ConstraintKindsAreValid) {
  Workload W = pointsToConstraints(100, 10, 500, 6);
  ASSERT_EQ(W.C.size(), W.A.size());
  size_t Addr = 0;
  for (uint64_t Kind : W.C) {
    EXPECT_LE(Kind, 3u);
    Addr += Kind == 0;
  }
  // Some address-of constraints must exist or points-to sets stay empty.
  EXPECT_GT(Addr, 0u);
}

} // namespace
