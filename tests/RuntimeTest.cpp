//===- RuntimeTest.cpp ----------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The type-erased runtime layer: factory selection, adapter semantics,
/// dense/sparse classification, union fast/slow paths.
///
//===----------------------------------------------------------------------===//

#include "ir/IR.h"
#include "runtime/RtCollection.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace ade;
using namespace ade::ir;
using namespace ade::runtime;

namespace {

class RuntimeFactoryTest : public ::testing::Test {
protected:
  Module M;
  RuntimeDefaults Defaults;

  std::unique_ptr<RtCollection> make(Type *Ty) {
    return createCollection(Ty, Defaults);
  }
};

TEST_F(RuntimeFactoryTest, DefaultsAreHashImplementations) {
  auto Set = make(M.types().setTy(M.types().intTy(64, false)));
  EXPECT_EQ(Set->impl(), Selection::HashSet);
  EXPECT_FALSE(Set->isDense());
  auto Map = make(M.types().mapTy(M.types().intTy(64, false),
                                  M.types().intTy(64, false)));
  EXPECT_EQ(Map->impl(), Selection::HashMap);
  auto Seq = make(M.types().seqTy(M.types().intTy(64, false)));
  EXPECT_EQ(Seq->impl(), Selection::Array);
  EXPECT_TRUE(Seq->isDense());
}

TEST_F(RuntimeFactoryTest, SelectionAnnotationWins) {
  auto Set = make(
      M.types().setTy(M.types().indexTy(), Selection::BitSet));
  EXPECT_EQ(Set->impl(), Selection::BitSet);
  EXPECT_TRUE(Set->isDense());
  auto Sparse = make(
      M.types().setTy(M.types().indexTy(), Selection::SparseBitSet));
  EXPECT_EQ(Sparse->impl(), Selection::SparseBitSet);
  EXPECT_TRUE(Sparse->isDense());
}

TEST_F(RuntimeFactoryTest, ConfiguredDefaultsApply) {
  Defaults.SetImpl = Selection::SwissSet;
  Defaults.MapImpl = Selection::SwissMap;
  auto Set = make(M.types().setTy(M.types().intTy(64, false)));
  EXPECT_EQ(Set->impl(), Selection::SwissSet);
  auto Map = make(M.types().mapTy(M.types().intTy(64, false),
                                  M.types().intTy(64, false)));
  EXPECT_EQ(Map->impl(), Selection::SwissMap);
}

TEST_F(RuntimeFactoryTest, SetSemanticsThroughInterface) {
  for (Selection Sel : {Selection::HashSet, Selection::SwissSet,
                        Selection::FlatSet, Selection::BitSet,
                        Selection::SparseBitSet}) {
    auto C = make(M.types().setTy(M.types().indexTy(), Sel));
    auto *Set = cast<RtSet>(C.get());
    EXPECT_TRUE(Set->insert(5));
    EXPECT_FALSE(Set->insert(5));
    EXPECT_TRUE(Set->has(5));
    EXPECT_FALSE(Set->has(6));
    EXPECT_EQ(Set->size(), 1u);
    EXPECT_TRUE(Set->remove(5));
    EXPECT_FALSE(Set->remove(5));
    EXPECT_EQ(Set->size(), 0u);
  }
}

TEST_F(RuntimeFactoryTest, MapSemanticsThroughInterface) {
  for (Selection Sel :
       {Selection::HashMap, Selection::SwissMap, Selection::BitMap}) {
    auto C = make(M.types().mapTy(M.types().indexTy(),
                                  M.types().intTy(64, false), Sel));
    auto *Map = cast<RtMap>(C.get());
    EXPECT_TRUE(Map->insertDefault(3, 30));
    EXPECT_FALSE(Map->insertDefault(3, 99)); // Keeps first value.
    bool Found = false;
    EXPECT_EQ(Map->get(3, Found), 30u);
    EXPECT_TRUE(Found);
    Map->set(3, 31);
    EXPECT_EQ(Map->get(3, Found), 31u);
    Map->get(4, Found);
    EXPECT_FALSE(Found);
    EXPECT_TRUE(Map->remove(3));
    EXPECT_EQ(Map->size(), 0u);
  }
}

TEST_F(RuntimeFactoryTest, UnionAcrossImplementations) {
  // Fast path: same representation; slow path: element-wise.
  auto A = make(M.types().setTy(M.types().indexTy(), Selection::BitSet));
  auto B = make(M.types().setTy(M.types().indexTy(), Selection::BitSet));
  auto C = make(
      M.types().setTy(M.types().indexTy(), Selection::FlatSet));
  cast<RtSet>(A.get())->insert(1);
  cast<RtSet>(B.get())->insert(2);
  cast<RtSet>(C.get())->insert(3);
  cast<RtSet>(A.get())->unionWith(*cast<RtSet>(B.get()));
  cast<RtSet>(A.get())->unionWith(*cast<RtSet>(C.get()));
  EXPECT_EQ(A->size(), 3u);
  for (uint64_t K : {1u, 2u, 3u})
    EXPECT_TRUE(cast<RtSet>(A.get())->has(K));
}

TEST_F(RuntimeFactoryTest, SeqSemantics) {
  auto C = make(M.types().seqTy(M.types().intTy(64, false)));
  auto *Seq = cast<RtSeq>(C.get());
  Seq->append(10);
  Seq->append(20);
  EXPECT_EQ(Seq->get(0), 10u);
  Seq->set(0, 11);
  EXPECT_EQ(Seq->get(0), 11u);
  EXPECT_EQ(Seq->pop(), 20u);
  EXPECT_EQ(Seq->size(), 1u);
  uint64_t Visited = 0;
  Seq->forEach([&](uint64_t I, uint64_t V) { Visited += V + I; });
  EXPECT_EQ(Visited, 11u);
}

TEST_F(RuntimeFactoryTest, ClearKeepsSemantics) {
  for (Selection Sel : {Selection::HashSet, Selection::BitSet,
                        Selection::SparseBitSet}) {
    auto C = make(M.types().setTy(M.types().indexTy(), Sel));
    auto *Set = cast<RtSet>(C.get());
    for (uint64_t K = 0; K != 100; ++K)
      Set->insert(K);
    Set->clear();
    EXPECT_EQ(Set->size(), 0u);
    EXPECT_FALSE(Set->has(5));
    EXPECT_TRUE(Set->insert(5));
  }
}

TEST(RtEnumTest, MatchesEnumerationSemantics) {
  RtEnum E;
  auto [Id0, New0] = E.add(1000);
  EXPECT_TRUE(New0);
  EXPECT_EQ(Id0, 0u);
  EXPECT_EQ(E.add(1000).first, 0u);
  EXPECT_EQ(E.add(2000).first, 1u);
  EXPECT_EQ(E.decode(1), 2000u);
  EXPECT_EQ(E.encode(1000), 0u);
  EXPECT_TRUE(E.contains(2000));
  EXPECT_FALSE(E.contains(3000));
  EXPECT_EQ(E.size(), 2u);
}

TEST(DenseClassification, MatchesTableII) {
  EXPECT_TRUE(selectionIsDense(Selection::Array));
  EXPECT_TRUE(selectionIsDense(Selection::BitSet));
  EXPECT_TRUE(selectionIsDense(Selection::BitMap));
  EXPECT_TRUE(selectionIsDense(Selection::SparseBitSet));
  EXPECT_FALSE(selectionIsDense(Selection::HashSet));
  EXPECT_FALSE(selectionIsDense(Selection::SwissSet));
  EXPECT_FALSE(selectionIsDense(Selection::FlatSet));
  EXPECT_FALSE(selectionIsDense(Selection::HashMap));
  EXPECT_FALSE(selectionIsDense(Selection::SwissMap));
}

} // namespace
