//===- AnalysisTest.cpp ---------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the static-analysis subsystem: the diagnostic engine's
/// text and JSON rendering, the forward-dataflow checkers, the directive
/// lint, and the post-transform enumeration self-audit (including its
/// behavior on a deliberately corrupted plan).
///
//===----------------------------------------------------------------------===//

#include "analysis/Checkers.h"
#include "analysis/Diagnostics.h"
#include "core/Pipeline.h"
#include "ir/IR.h"
#include "ir/IRBuilder.h"
#include "parser/Parser.h"
#include "support/RawOstream.h"

#include <gtest/gtest.h>

using namespace ade;

namespace {

/// Parses \p Source and runs \p Check (or all checkers when empty) over it,
/// returning the collected diagnostics.
std::vector<analysis::Diagnostic> lint(std::string_view Source,
                                       const char *Check = nullptr) {
  std::unique_ptr<ir::Module> M = parser::parseModuleOrDie(Source);
  analysis::DiagnosticEngine DE;
  std::vector<std::string> Enabled;
  if (Check)
    Enabled.push_back(Check);
  EXPECT_TRUE(analysis::runLint(*M, DE, Enabled));
  return DE.diagnostics();
}

bool anyMessageContains(const std::vector<analysis::Diagnostic> &Ds,
                        const std::string &Substr) {
  for (const analysis::Diagnostic &D : Ds)
    if (D.Message.find(Substr) != std::string::npos)
      return true;
  return false;
}

/// Recursively finds the first instruction with opcode \p Op in \p R.
ir::Instruction *findInst(ir::Region &R, ir::Opcode Op) {
  for (size_t Idx = 0; Idx < R.size(); ++Idx) {
    ir::Instruction *I = R.inst(Idx);
    if (I->op() == Op)
      return I;
    for (unsigned RI = 0; RI < I->numRegions(); ++RI)
      if (ir::Instruction *Found = findInst(*I->region(RI), Op))
        return Found;
  }
  return nullptr;
}

const char *const TinySource = "fn @main() -> u64 {\n"
                               "  %a = const 1 : u64\n"
                               "  ret %a\n"
                               "}\n";

//===----------------------------------------------------------------------===//
// Source locations
//===----------------------------------------------------------------------===//

TEST(SrcLoc, ThreadedFromParserToInstructions) {
  std::unique_ptr<ir::Module> M = parser::parseModuleOrDie(TinySource);
  const ir::Function *F = M->getFunction("main");
  ASSERT_NE(F, nullptr);
  const ir::Instruction *Const = F->body().inst(0);
  EXPECT_TRUE(Const->loc().isValid());
  // The location points at the mnemonic, past "  %a = ".
  EXPECT_EQ(Const->loc().Line, 2u);
  EXPECT_EQ(Const->loc().Col, 8u);
}

//===----------------------------------------------------------------------===//
// DiagnosticEngine rendering
//===----------------------------------------------------------------------===//

TEST(DiagnosticEngine, TextRenderingWithCaret) {
  std::unique_ptr<ir::Module> M = parser::parseModuleOrDie(TinySource);
  ir::Instruction *Const = findInst(M->getFunction("main")->body(),
                                    ir::Opcode::ConstInt);
  ASSERT_NE(Const, nullptr);

  analysis::DiagnosticEngine DE;
  DE.setSource("tiny.memoir", TinySource);
  DE.report(analysis::Severity::Warning, "demo", "something is off", Const);

  std::string Out;
  RawStringOstream OS(Out);
  DE.render(OS, analysis::DiagFormat::Text);

  EXPECT_NE(Out.find("tiny.memoir:2:8: warning: [demo] something is off"),
            std::string::npos);
  // The offending source line, indented by two spaces.
  EXPECT_NE(Out.find("  %a = const 1 : u64\n"), std::string::npos);
  // A caret under column 8 (two spaces of indent plus seven).
  EXPECT_NE(Out.find("\n         ^\n"), std::string::npos);
  EXPECT_EQ(DE.warningCount(), 1u);
  EXPECT_EQ(DE.errorCount(), 0u);
}

TEST(DiagnosticEngine, JsonRenderingAndEscaping) {
  std::unique_ptr<ir::Module> M = parser::parseModuleOrDie(TinySource);
  ir::Instruction *Const = findInst(M->getFunction("main")->body(),
                                    ir::Opcode::ConstInt);
  ASSERT_NE(Const, nullptr);

  analysis::DiagnosticEngine DE;
  DE.setSource("tiny.memoir", TinySource);
  DE.report(analysis::Severity::Error, "demo", "quote \" and\nnewline",
            Const);

  std::string Out;
  RawStringOstream OS(Out);
  DE.render(OS, analysis::DiagFormat::Json);

  EXPECT_NE(Out.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(Out.find("\"warnings\": 0"), std::string::npos);
  EXPECT_NE(Out.find("\"check\": \"demo\""), std::string::npos);
  EXPECT_NE(Out.find("\"function\": \"main\""), std::string::npos);
  EXPECT_NE(Out.find("\"line\": 2"), std::string::npos);
  EXPECT_NE(Out.find("\"col\": 8"), std::string::npos);
  // Quotes and newlines in the message must be escaped.
  EXPECT_NE(Out.find("quote \\\" and\\nnewline"), std::string::npos);
}

TEST(DiagnosticEngine, NoLocationFallsBackToFunctionName) {
  analysis::DiagnosticEngine DE;
  DE.report(analysis::Severity::Note, "demo", "module-wide note");
  std::string Out;
  RawStringOstream OS(Out);
  DE.render(OS, analysis::DiagFormat::Text);
  EXPECT_NE(Out.find("note: [demo] module-wide note"), std::string::npos);
}

TEST(RunLint, RejectsUnknownCheckerName) {
  std::unique_ptr<ir::Module> M = parser::parseModuleOrDie(TinySource);
  analysis::DiagnosticEngine DE;
  EXPECT_FALSE(analysis::runLint(*M, DE, {"no-such-checker"}));
}

//===----------------------------------------------------------------------===//
// Definite emptiness (forward dataflow)
//===----------------------------------------------------------------------===//

TEST(DefiniteEmpty, UseAfterClearIsFlagged) {
  auto Ds = lint("fn @main() -> u64 {\n"
                 "  %m = new Map<u64, u64>\n"
                 "  %k = const 1 : u64\n"
                 "  %v = const 2 : u64\n"
                 "  write %m, %k, %v\n"
                 "  clear %m\n"
                 "  %r = read %m, %k\n"
                 "  ret %r\n"
                 "}\n",
                 "definite-empty");
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Check, "definite-empty");
  EXPECT_EQ(Ds[0].Loc.Line, 7u);
  EXPECT_NE(Ds[0].Message.find("empty on every path"), std::string::npos);
}

TEST(DefiniteEmpty, BranchJoinIsNotFlagged) {
  // The write happens on only one path, so after the join the collection
  // may or may not be empty: the checker must stay quiet.
  auto Ds = lint("fn @main() -> u64 {\n"
                 "  %m = new Map<u64, u64>\n"
                 "  %k = const 1 : u64\n"
                 "  %z = const 0 : u64\n"
                 "  %cond = eq %k, %z\n"
                 "  if %cond {\n"
                 "    write %m, %k, %k\n"
                 "    yield\n"
                 "  } else {\n"
                 "    yield\n"
                 "  }\n"
                 "  %r = read %m, %k\n"
                 "  ret %r\n"
                 "}\n",
                 "definite-empty");
  EXPECT_TRUE(Ds.empty());
}

TEST(DefiniteEmpty, DoWhileBodyRunsAtLeastOnce) {
  // A dowhile body executes at least once, so a clear inside it makes the
  // collection definitely empty afterwards.
  auto Ds = lint("fn @main() -> u64 {\n"
                 "  %m = new Map<u64, u64>\n"
                 "  %k = const 1 : u64\n"
                 "  write %m, %k, %k\n"
                 "  %z = const 0 : u64\n"
                 "  %n = dowhile iter(%i = %k) {\n"
                 "    clear %m\n"
                 "    %cont = eq %i, %z\n"
                 "    yield %cont, %i\n"
                 "  }\n"
                 "  %r = read %m, %k\n"
                 "  ret %r\n"
                 "}\n",
                 "definite-empty");
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Loc.Line, 11u);
}

TEST(DefiniteEmpty, ZeroTripRangeLoopIsNotFlagged) {
  // A forrange may execute zero times, so the clear inside it does not
  // make the collection definitely empty after the loop.
  auto Ds = lint("fn @main() -> u64 {\n"
                 "  %m = new Map<u64, u64>\n"
                 "  %k = const 1 : u64\n"
                 "  write %m, %k, %k\n"
                 "  %lo = const 0 : u64\n"
                 "  %hi = const 4 : u64\n"
                 "  forrange %lo, %hi -> [%i] {\n"
                 "    clear %m\n"
                 "    yield\n"
                 "  }\n"
                 "  %r = read %m, %k\n"
                 "  ret %r\n"
                 "}\n",
                 "definite-empty");
  EXPECT_TRUE(Ds.empty());
}

TEST(DefiniteEmpty, LoopFixpointHasNoFalsePositives) {
  // histogram reads %hist inside the loop that fills it; the fixpoint
  // must not report the optimistic first-iteration state.
  auto Ds = lint("fn @count(%input: Seq<u64>) -> u64 {\n"
                 "  %hist = new Map<u64, u32>\n"
                 "  foreach %input -> [%i, %val] {\n"
                 "    %cond = has %hist, %val\n"
                 "    %freq0 = if %cond {\n"
                 "      %f = read %hist, %val\n"
                 "      yield %f\n"
                 "    } else {\n"
                 "      insert %hist, %val\n"
                 "      %z = const 0 : u32\n"
                 "      yield %z\n"
                 "    }\n"
                 "    %one = const 1 : u32\n"
                 "    %freq1 = add %freq0, %one\n"
                 "    write %hist, %val, %freq1\n"
                 "    yield\n"
                 "  }\n"
                 "  %sz = size %hist\n"
                 "  ret %sz\n"
                 "}\n",
                 "definite-empty");
  EXPECT_TRUE(Ds.empty());
}

//===----------------------------------------------------------------------===//
// Dead writes
//===----------------------------------------------------------------------===//

TEST(DeadWrite, UnobservedLocalIsFlagged) {
  auto Ds = lint("fn @main() -> u64 {\n"
                 "  %log = new Map<u64, u64>\n"
                 "  %k = const 1 : u64\n"
                 "  write %log, %k, %k\n"
                 "  ret %k\n"
                 "}\n",
                 "dead-write");
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Check, "dead-write");
  EXPECT_NE(Ds[0].Message.find("never observed"), std::string::npos);
}

TEST(DeadWrite, ReadCountsAsObservation) {
  auto Ds = lint("fn @main() -> u64 {\n"
                 "  %log = new Map<u64, u64>\n"
                 "  %k = const 1 : u64\n"
                 "  write %log, %k, %k\n"
                 "  %r = read %log, %k\n"
                 "  ret %r\n"
                 "}\n",
                 "dead-write");
  EXPECT_TRUE(Ds.empty());
}

TEST(DeadWrite, EscapingCollectionIsNotFlagged) {
  // Once the collection reaches an external callee the checker can no
  // longer prove the writes unobserved.
  auto Ds = lint("extern fn @sink(Map<u64, u64>)\n"
                 "fn @main() -> u64 {\n"
                 "  %log = new Map<u64, u64>\n"
                 "  %k = const 1 : u64\n"
                 "  write %log, %k, %k\n"
                 "  call @sink(%log)\n"
                 "  ret %k\n"
                 "}\n",
                 "dead-write");
  EXPECT_TRUE(Ds.empty());
}

//===----------------------------------------------------------------------===//
// Directive lint
//===----------------------------------------------------------------------===//

TEST(DirectiveLint, SelectRequiresEnumerationConflict) {
  auto Ds = lint("fn @main() -> u64 {\n"
                 "  #pragma ade noenumerate select(BitSet)\n"
                 "  %s = new Set<u64>\n"
                 "  %a = const 3 : u64\n"
                 "  insert %s, %a\n"
                 "  %sz = size %s\n"
                 "  ret %sz\n"
                 "}\n",
                 "directive-lint");
  ASSERT_FALSE(Ds.empty());
  EXPECT_EQ(Ds[0].Sev, analysis::Severity::Error);
  EXPECT_TRUE(anyMessageContains(Ds, "requires enumerated keys"));
}

TEST(DirectiveLint, SelectKindMismatch) {
  auto Ds = lint("fn @main() -> u64 {\n"
                 "  #pragma ade select(Array)\n"
                 "  %s = new Set<u64>\n"
                 "  %a = const 3 : u64\n"
                 "  insert %s, %a\n"
                 "  %sz = size %s\n"
                 "  ret %sz\n"
                 "}\n",
                 "directive-lint");
  ASSERT_FALSE(Ds.empty());
  EXPECT_TRUE(anyMessageContains(Ds, "'select(Array)' is not applicable"));
}

TEST(DirectiveLint, NoShareNamesUnknownAllocation) {
  auto Ds = lint("fn @main() -> u64 {\n"
                 "  #pragma ade noshare(%nope)\n"
                 "  %s = new Set<u64>\n"
                 "  %a = const 3 : u64\n"
                 "  insert %s, %a\n"
                 "  %sz = size %s\n"
                 "  ret %sz\n"
                 "}\n",
                 "directive-lint");
  ASSERT_FALSE(Ds.empty());
  EXPECT_EQ(Ds[0].Sev, analysis::Severity::Warning);
  EXPECT_TRUE(anyMessageContains(Ds, "names no allocation"));
}

TEST(DirectiveLint, ShareGroupKeyTypeMismatch) {
  auto Ds = lint("fn @main() -> u64 {\n"
                 "  #pragma ade share group(\"g\")\n"
                 "  %a = new Set<u64>\n"
                 "  #pragma ade share group(\"g\")\n"
                 "  %b = new Set<ptr>\n"
                 "  %k = const 3 : u64\n"
                 "  insert %a, %k\n"
                 "  %sa = size %a\n"
                 "  %sb = size %b\n"
                 "  %sum = add %sa, %sb\n"
                 "  ret %sum\n"
                 "}\n",
                 "directive-lint");
  ASSERT_FALSE(Ds.empty());
  EXPECT_TRUE(anyMessageContains(Ds, "is unsatisfiable"));
  EXPECT_TRUE(anyMessageContains(Ds, "one enumeration cannot span both"));
}

//===----------------------------------------------------------------------===//
// Escape soundness
//===----------------------------------------------------------------------===//

TEST(EscapeSoundness, ForcedEnumerationOnEscapingAlloc) {
  auto Ds = lint("extern fn @sink(Set<u64>)\n"
                 "fn @main() -> u64 {\n"
                 "  #pragma ade enumerate\n"
                 "  %v = new Set<u64>\n"
                 "  %k = const 3 : u64\n"
                 "  insert %v, %k\n"
                 "  call @sink(%v)\n"
                 "  %sz = size %v\n"
                 "  ret %sz\n"
                 "}\n",
                 "escape-soundness");
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Check, "escape-soundness");
  EXPECT_TRUE(anyMessageContains(Ds, "cannot be honored"));
}

//===----------------------------------------------------------------------===//
// Enumeration consistency and the post-transform self-audit
//===----------------------------------------------------------------------===//

const char *const MixedEnumSource =
    "global @ea : Enum<u64>\n"
    "global @eb : Enum<u64>\n"
    "fn @main() -> u64 {\n"
    "  %set = new Set<idx>\n"
    "  %k = const 5 : u64\n"
    "  %e1 = gget @ea\n"
    "  %e2 = gget @eb\n"
    "  %i = enum.add %e1, %k\n"
    "  insert %set, %i\n"
    "  %j = enum.add %e2, %k\n"
    "  %c = has %set, %j\n"
    "  %r = if %c {\n"
    "    %one = const 1 : u64\n"
    "    yield %one\n"
    "  } else {\n"
    "    %zero = const 0 : u64\n"
    "    yield %zero\n"
    "  }\n"
    "  ret %r\n"
    "}\n";

TEST(EnumConsistency, MixedEnumerationsAreAConflict) {
  auto Ds = lint(MixedEnumSource, "enum-consistency");
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Sev, analysis::Severity::Error);
  EXPECT_TRUE(anyMessageContains(Ds, "@ea"));
  EXPECT_TRUE(anyMessageContains(Ds, "@eb"));
}

const char *const HistogramSource =
    "fn @count(%input: Seq<u64>) -> u64 {\n"
    "  %hist = new Map<u64, u32>\n"
    "  foreach %input -> [%i, %val] {\n"
    "    %cond = has %hist, %val\n"
    "    %freq0 = if %cond {\n"
    "      %f = read %hist, %val\n"
    "      yield %f\n"
    "    } else {\n"
    "      insert %hist, %val\n"
    "      %z = const 0 : u32\n"
    "      yield %z\n"
    "    }\n"
    "    %one = const 1 : u32\n"
    "    %freq1 = add %freq0, %one\n"
    "    write %hist, %val, %freq1\n"
    "    yield\n"
    "  }\n"
    "  %sz = size %hist\n"
    "  ret %sz\n"
    "}\n"
    "fn @main() -> u64 {\n"
    "  %input = new Seq<u64>\n"
    "  %lo = const 0 : u64\n"
    "  %hi = const 100 : u64\n"
    "  %mod = const 10 : u64\n"
    "  forrange %lo, %hi -> [%i] {\n"
    "    %r = rem %i, %mod\n"
    "    append %input, %r\n"
    "    yield\n"
    "  }\n"
    "  %distinct = call @count(%input)\n"
    "  ret %distinct\n"
    "}\n";

TEST(SelfAudit, TransformedModuleIsConsistent) {
  std::unique_ptr<ir::Module> M = parser::parseModuleOrDie(HistogramSource);
  core::runADE(*M); // Verify defaults to on: the audit already ran inside.
  analysis::DiagnosticEngine DE;
  EXPECT_TRUE(analysis::auditEnumeration(*M, DE));
  EXPECT_TRUE(DE.empty());
}

/// Corrupts a transformed histogram: appends one index minted from a
/// foreign enumeration into the sequence whose elements are identifiers
/// of the planned enumeration. Returns the module.
std::unique_ptr<ir::Module> corruptedHistogram() {
  std::unique_ptr<ir::Module> M = parser::parseModuleOrDie(HistogramSource);
  core::runADE(*M);

  ir::Function *Main = M->getFunction("main");
  ir::Instruction *Call = findInst(Main->body(), ir::Opcode::Call);
  EXPECT_NE(Call, nullptr);
  ir::Value *Input = Call->operand(0); // the enumerated Seq<idx>

  ir::Type *U64 = M->types().intTy(64, false);
  ir::GlobalVariable *Fake =
      M->createGlobal("__rogue_enum", M->types().enumTy(U64));

  ir::IRBuilder B(*M);
  B.setInsertionPointBefore(Call);
  ir::Value *Rogue = B.enumAdd(B.globalGet(Fake), B.constU64(7));
  B.append(Input, Rogue);
  return M;
}

TEST(SelfAudit, CorruptedPlanIsDetected) {
  std::unique_ptr<ir::Module> M = corruptedHistogram();
  analysis::DiagnosticEngine DE;
  EXPECT_FALSE(analysis::auditEnumeration(*M, DE));
  ASSERT_GE(DE.errorCount(), 1u);
  EXPECT_EQ(DE.diagnostics().front().Check, "enum-consistency");
  EXPECT_TRUE(anyMessageContains(DE.diagnostics(), "@__rogue_enum"));
}

TEST(SelfAuditDeathTest, RunSelfAuditFailsLoudly) {
  std::unique_ptr<ir::Module> M = corruptedHistogram();
  EXPECT_DEATH(core::runSelfAudit(*M),
               "ADE self-audit failed.*enumeration-consistent");
}

} // namespace
