//===- TelemetryTest.cpp --------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The runtime telemetry sink: sampling contract, the event journal
/// (ring capacity, always-on lifecycle events, guard rails), site-keyed
/// attribution, occupancy-crossing detection, snapshot JSON
/// well-formedness, and the opt-in guarantee that attaching telemetry
/// does not change benchmark checksums or statistics.
///
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "interp/InterpError.h"
#include "interp/Interpreter.h"
#include "parser/Parser.h"
#include "runtime/Telemetry.h"
#include "support/Casting.h"
#include "support/Json.h"
#include "support/RawOstream.h"

#include <gtest/gtest.h>

using namespace ade;
using namespace ade::interp;
using namespace ade::runtime;

namespace {

/// Runs @main with \p Tel attached and returns its result.
uint64_t runWithTelemetry(const char *Src, Telemetry &Tel,
                          InterpOptions Opts = {}) {
  auto M = parser::parseModuleOrDie(Src);
  Opts.Tel = &Tel;
  Interpreter I(*M, Opts);
  return I.callByName("main", {});
}

/// Grows a hash set through several rehashes; the allocation site sits
/// on line 2.
const char *kRehashHeavy = R"(fn @main() -> u64 {
  %s = new Set<u64>
  %lo = const 0 : u64
  %hi = const 500 : u64
  forrange %lo, %hi -> [%i] {
    insert %s, %i
    yield
  }
  %sz = size %s
  ret %sz
})";

TEST(Telemetry, SampleEveryOpFillsChannels) {
  Telemetry::Options Opts;
  Opts.SampleShift = 0; // sample every collection op
  Telemetry Tel(Opts);
  EXPECT_EQ(Tel.sampleRate(), 1u);
  EXPECT_EQ(runWithTelemetry(kRehashHeavy, Tel), 500u);

  EXPECT_EQ(Tel.sampledOps(), 500u); // one per insert
  auto Chans = Tel.channels();
  ASSERT_EQ(Chans.size(), 1u); // one (set, HashSet) class
  const Telemetry::Channel &Ch = Chans.begin()->second;
  EXPECT_EQ(Chans.begin()->first.first, RtKind::Set);
  EXPECT_EQ(Chans.begin()->first.second, ir::Selection::HashSet);
  EXPECT_EQ(Ch.SampledOps, Tel.sampledOps());
  EXPECT_EQ(Ch.LatencyNs.count(), Ch.SampledOps);
  EXPECT_GT(Ch.ProbeLen.count(), 0u);
}

TEST(Telemetry, DefaultRateSamplesOneInN) {
  Telemetry Tel;
  EXPECT_EQ(Tel.sampleRate(), 256u);
  EXPECT_EQ(Tel.sampleMask(), 255u);
  runWithTelemetry(kRehashHeavy, Tel);
  // ~502 collection ops at 1-in-256: at least one sample lands, and far
  // fewer than every op is charged.
  EXPECT_GT(Tel.sampledOps(), 0u);
  EXPECT_LT(Tel.sampledOps(), 100u);
}

TEST(Telemetry, RehashEventsCarryCumulativeAndDelta) {
  Telemetry::Options Opts;
  Opts.SampleShift = 0;
  Telemetry Tel(Opts);
  runWithTelemetry(kRehashHeavy, Tel);

  EXPECT_GT(Tel.eventCount(EventKind::Rehash), 0u);
  uint64_t LastCumulative = 0;
  for (const Telemetry::Event &E : Tel.journalEvents()) {
    if (E.Kind != EventKind::Rehash)
      continue;
    EXPECT_GT(E.A, LastCumulative); // cumulative counter grows
    EXPECT_GT(E.B, 0u);             // delta since the previous sample
    EXPECT_LE(E.B, E.A);
    LastCumulative = E.A;
    EXPECT_NE(E.Site, Telemetry::NoSite);
  }
  // Sampling every op observes each reorganization individually, so the
  // event deltas reconstruct the collection's cumulative counter.
  EXPECT_GT(LastCumulative, 2u);
}

TEST(Telemetry, ClearAndReserveAlwaysRecorded) {
  // SampleShift 20: sampling will never fire in this short program, yet
  // lifecycle events must still reach the journal.
  Telemetry::Options Opts;
  Opts.SampleShift = 20;
  Telemetry Tel(Opts);
  runWithTelemetry(R"(fn @main() -> u64 {
  %s = new Set<u64>
  %cap = const 64 : u64
  reserve %s, %cap
  %k = const 7 : u64
  insert %s, %k
  clear %s
  %sz = size %s
  ret %sz
})",
                   Tel);
  EXPECT_EQ(Tel.eventCount(EventKind::Reserve), 1u);
  EXPECT_EQ(Tel.eventCount(EventKind::Clear), 1u);
  bool SawReserve = false, SawClear = false;
  for (const Telemetry::Event &E : Tel.journalEvents()) {
    if (E.Kind == EventKind::Reserve) {
      SawReserve = true;
      EXPECT_EQ(E.A, 64u); // requested capacity
    } else if (E.Kind == EventKind::Clear) {
      SawClear = true;
      EXPECT_EQ(E.A, 1u); // size before the clear
    }
  }
  EXPECT_TRUE(SawReserve);
  EXPECT_TRUE(SawClear);
}

TEST(Telemetry, JournalRingKeepsNewestAndCountsDropped) {
  Telemetry::Options Opts;
  Opts.SampleShift = 0;
  Opts.JournalCapacity = 4;
  Telemetry Tel(Opts);
  runWithTelemetry(kRehashHeavy, Tel);

  uint64_t Total = 0;
  for (size_t K = 0; K != size_t(EventKind::NumKinds); ++K)
    Total += Tel.eventCount(EventKind(K));
  ASSERT_GT(Total, 4u); // the run must overflow the tiny ring

  auto Events = Tel.journalEvents();
  ASSERT_EQ(Events.size(), 4u);
  EXPECT_EQ(Tel.droppedEvents(), Total - 4u);
  // Oldest-first, contiguous, and ending at the newest emission.
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_EQ(Events[I].Seq, Events[I - 1].Seq + 1);
  EXPECT_EQ(Events.back().Seq, Total - 1);
}

TEST(Telemetry, GuardRailEventRecordsRailAndLimit) {
  Telemetry Tel;
  InterpOptions Opts;
  Opts.MaxSteps = 1000;
  Opts.Tel = &Tel;
  auto M = parser::parseModuleOrDie(R"(fn @main() -> u64 {
  %lo = const 0 : u64
  %hi = const 1000000 : u64
  %zero = const 0 : u64
  %r = forrange %lo, %hi -> [%i] iter(%acc = %zero) {
    %n = add %acc, %i
    yield %n
  }
  ret %r
})");
  Interpreter I(*M, Opts);
  EXPECT_THROW(I.callByName("main", {}), InterpError);
  EXPECT_EQ(Tel.eventCount(EventKind::GuardRail), 1u);
  auto Events = Tel.journalEvents();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Kind, EventKind::GuardRail);
  EXPECT_EQ(Events[0].Site, Telemetry::NoSite);
  EXPECT_EQ(Events[0].A, uint64_t(GuardRailKind::Steps));
  EXPECT_EQ(Events[0].B, 1000u);
}

TEST(Telemetry, SiteAttributionAggregatesInstances) {
  // Five maps churn through one allocation site; telemetry keeps one
  // record for the site, counting creations, not five records.
  Telemetry::Options Opts;
  Opts.SampleShift = 0;
  Telemetry Tel(Opts);
  runWithTelemetry(R"(fn @mk(%n : u64) -> u64 {
  %m = new Map<u64, u64>
  %k = const 3 : u64
  write %m, %k, %n
  %r = read %m, %k
  ret %r
}
fn @main() -> u64 {
  %lo = const 0 : u64
  %hi = const 5 : u64
  %zero = const 0 : u64
  %r = forrange %lo, %hi -> [%i] iter(%acc = %zero) {
    %v = call @mk(%i)
    %n = add %acc, %v
    yield %n
  }
  ret %r
})",
                   Tel);
  const Telemetry::SiteInfo *MapSite = nullptr;
  for (const Telemetry::SiteInfo *S : Tel.sites())
    if (S->Kind == RtKind::Map)
      MapSite = S;
  ASSERT_NE(MapSite, nullptr);
  EXPECT_EQ(MapSite->Created, 5u);
  EXPECT_EQ(MapSite->SampledOps, 10u); // write + read per instance
  EXPECT_EQ(MapSite->Function, "mk");
  EXPECT_EQ(MapSite->Loc.Line, 2u);
  EXPECT_TRUE(MapSite->Label.empty());
}

TEST(Telemetry, SurvivesModuleChurnWithRecycledSites) {
  // One sink outliving many short-lived modules: the allocator recycles
  // Instruction addresses across parses, so two unrelated allocation
  // sites can collide on their pointer key. The record snapshots the
  // site's identity; a mismatch must start a fresh record, never merge a
  // Map site into a Set record — and every journal entry's site id must
  // stay a valid index after the churn.
  Telemetry::Options Opts;
  Opts.SampleShift = 0;
  Telemetry Tel(Opts);
  // Both variants allocate at the same line/column in a @main of the
  // same shape, differing only in collection kind: a recycled address
  // with a stale record is detected by the kind mismatch alone.
  const char *SetVariant = R"(fn @main() -> u64 {
  %c = new Set<u64>
  %k = const 7 : u64
  insert %c, %k
  %sz = size %c
  ret %sz
})";
  const char *MapVariant = R"(fn @main() -> u64 {
  %c = new Map<u64, u64>
  %k = const 7 : u64
  write %c, %k, %k
  %sz = size %c
  ret %sz
})";
  for (int Round = 0; Round != 20; ++Round)
    EXPECT_EQ(runWithTelemetry(Round % 2 ? MapVariant : SetVariant, Tel), 1u);

  uint64_t SetCreated = 0, MapCreated = 0;
  for (const Telemetry::SiteInfo *S : Tel.sites()) {
    if (S->Kind == RtKind::Set)
      SetCreated += S->Created;
    else if (S->Kind == RtKind::Map)
      MapCreated += S->Created;
  }
  EXPECT_EQ(SetCreated, 10u);
  EXPECT_EQ(MapCreated, 10u);
  for (const Telemetry::Event &E : Tel.journalEvents()) {
    if (E.Site != Telemetry::NoSite) {
      EXPECT_LT(E.Site, Tel.sites().size());
    }
  }

  // reset() hands out a fresh owner token, invalidating any outstanding
  // per-collection binding; attribution after it starts from zero.
  Tel.reset();
  EXPECT_TRUE(Tel.sites().empty());
  EXPECT_EQ(runWithTelemetry(SetVariant, Tel), 1u);
  uint64_t After = 0;
  for (const Telemetry::SiteInfo *S : Tel.sites())
    After += S->Created;
  EXPECT_EQ(After, 1u);
}

TEST(Telemetry, GlobalCollectionsGetLabels) {
  Telemetry::Options Opts;
  Opts.SampleShift = 0;
  Telemetry Tel(Opts);
  runWithTelemetry(R"(global @cache : Map<u64, u64>
fn @main() -> u64 {
  %c = gget @cache
  %k = const 1 : u64
  write %c, %k, %k
  %r = read %c, %k
  ret %r
})",
                   Tel);
  const Telemetry::SiteInfo *Cache = nullptr;
  for (const Telemetry::SiteInfo *S : Tel.sites())
    if (S->Kind == RtKind::Map)
      Cache = S;
  ASSERT_NE(Cache, nullptr);
  EXPECT_EQ(Cache->Label, "@cache");
  EXPECT_EQ(Cache->Created, 1u);
  EXPECT_EQ(Cache->SampledOps, 2u);
}

TEST(Telemetry, OccupancyCrossingsUseHysteresis) {
  // Drive the detection directly on a dense (universe-indexed)
  // implementation: a BitSet whose universe is pinned by a high key.
  ir::Module M;
  RuntimeDefaults Defaults;
  auto C = createCollection(
      M.types().setTy(M.types().indexTy(), ir::Selection::BitSet), Defaults);
  auto *Set = cast<RtSet>(C.get());
  Telemetry::Options Opts;
  Opts.SampleShift = 0;
  Telemetry Tel(Opts);
  Tel.registerCollection(C.get(), nullptr, "<test>");

  Set->insert(4095); // universe >= 4096, size 1: sparse
  Tel.recordSampledOp(C.get(), OpCategory::Insert, 10, 1);
  EXPECT_EQ(Tel.eventCount(EventKind::OccupancyDense), 0u);

  for (uint64_t K = 0; K != 1000; ++K)
    Set->insert(K); // size 1001, 1001*8 >= universe: dense
  Tel.recordSampledOp(C.get(), OpCategory::Insert, 10, 1);
  EXPECT_EQ(Tel.eventCount(EventKind::OccupancyDense), 1u);

  // Hovering just below the dense edge must not flap back to sparse.
  for (uint64_t K = 0; K != 600; ++K)
    Set->remove(K); // size 401: neither dense nor sparse (hysteresis)
  Tel.recordSampledOp(C.get(), OpCategory::Remove, 10, 1);
  EXPECT_EQ(Tel.eventCount(EventKind::OccupancySparse), 0u);

  for (uint64_t K = 600; K != 1000; ++K)
    Set->remove(K); // size 1, 16 < universe: sparse
  Tel.recordSampledOp(C.get(), OpCategory::Remove, 10, 1);
  EXPECT_EQ(Tel.eventCount(EventKind::OccupancySparse), 1u);

  bool SawDense = false, SawSparse = false;
  for (const Telemetry::Event &E : Tel.journalEvents()) {
    if (E.Kind == EventKind::OccupancyDense) {
      SawDense = true;
      EXPECT_EQ(E.A, 1001u);
      EXPECT_GE(E.B, 4096u);
    } else if (E.Kind == EventKind::OccupancySparse) {
      SawSparse = true;
      EXPECT_EQ(E.A, 1u);
    }
  }
  EXPECT_TRUE(SawDense);
  EXPECT_TRUE(SawSparse);
}

TEST(Telemetry, SnapshotJsonParsesBack) {
  Telemetry::Options Opts;
  Opts.SampleShift = 0;
  Telemetry Tel(Opts);
  runWithTelemetry(kRehashHeavy, Tel);

  std::string Text;
  {
    RawStringOstream OS(Text);
    json::Writer W(OS);
    Tel.writeSnapshotJson(W);
  }
  std::string Error;
  auto Doc = json::parse(Text, &Error);
  ASSERT_NE(Doc, nullptr) << Error;
  ASSERT_TRUE(Doc->isObject());
  EXPECT_EQ(Doc->find("schemaVersion")->asUint(), MetricsSchemaVersion);
  EXPECT_EQ(Doc->find("sampleRate")->asUint(), 1u);
  EXPECT_EQ(Doc->find("sampledOps")->asUint(), Tel.sampledOps());

  const json::Value *Chans = Doc->find("channels");
  ASSERT_NE(Chans, nullptr);
  ASSERT_TRUE(Chans->isArray());
  ASSERT_EQ(Chans->size(), 1u);
  const json::Value &Ch = (*Chans)[0];
  EXPECT_EQ(Ch.find("kind")->asString(), "set");
  EXPECT_EQ(Ch.find("impl")->asString(), "HashSet");
  EXPECT_GT(Ch.find("latencyP99Ns")->asUint(), 0u);
  ASSERT_NE(Ch.find("latencyNs"), nullptr); // embedded histogram
  EXPECT_NE(Ch.find("latencyNs")->find("buckets"), nullptr);

  const json::Value *Sites = Doc->find("sites");
  ASSERT_NE(Sites, nullptr);
  ASSERT_EQ(Sites->size(), 1u);
  EXPECT_EQ((*Sites)[0].find("created")->asUint(), 1u);
  EXPECT_EQ((*Sites)[0].find("function")->asString(), "main");

  const json::Value *Journal = Doc->find("journal");
  ASSERT_NE(Journal, nullptr);
  EXPECT_NE(Journal->find("events"), nullptr);
  EXPECT_NE(Journal->find("totals"), nullptr);
}

TEST(Telemetry, ResetClearsEverything) {
  Telemetry::Options Opts;
  Opts.SampleShift = 0;
  Telemetry Tel(Opts);
  runWithTelemetry(kRehashHeavy, Tel);
  ASSERT_GT(Tel.sampledOps(), 0u);
  Tel.reset();
  EXPECT_EQ(Tel.sampledOps(), 0u);
  EXPECT_TRUE(Tel.sites().empty());
  EXPECT_TRUE(Tel.channels().empty());
  EXPECT_TRUE(Tel.journalEvents().empty());
  EXPECT_EQ(Tel.droppedEvents(), 0u);
  for (size_t K = 0; K != size_t(EventKind::NumKinds); ++K)
    EXPECT_EQ(Tel.eventCount(EventKind(K)), 0u);
}

TEST(Telemetry, EventKindNamesRoundTrip) {
  for (size_t K = 0; K != size_t(EventKind::NumKinds); ++K) {
    EventKind Out;
    ASSERT_TRUE(eventKindFromName(eventKindName(EventKind(K)), Out));
    EXPECT_EQ(Out, EventKind(K));
  }
  EventKind Out;
  EXPECT_FALSE(eventKindFromName("not-an-event", Out));
}

TEST(Telemetry, BenchChecksumsUnchangedBySampling) {
  // The opt-in guarantee behind the bench integration: a run with
  // telemetry attached (default 1-in-256 rate) computes the same
  // checksum and executes the same instructions as one without.
  const bench::BenchmarkSpec *B = bench::findBenchmark("PP");
  ASSERT_NE(B, nullptr);
  for (bench::Config C : {bench::Config::Memoir, bench::Config::Ade}) {
    bench::RunOptions Plain;
    Plain.ScalePercent = 5;
    bench::RunResult Off = bench::runBenchmark(*B, C, Plain);

    Telemetry Tel;
    bench::RunOptions Sampled;
    Sampled.ScalePercent = 5;
    Sampled.Telemetry = &Tel;
    bench::RunResult On = bench::runBenchmark(*B, C, Sampled);

    EXPECT_EQ(Off.Checksum, On.Checksum);
    EXPECT_EQ(Off.Stats.InstructionsExecuted, On.Stats.InstructionsExecuted);
    EXPECT_EQ(Off.Stats.Sparse, On.Stats.Sparse);
    EXPECT_EQ(Off.Stats.Dense, On.Stats.Dense);
  }
}

TEST(Telemetry, BenchRunResultCarriesEventDeltas) {
  const bench::BenchmarkSpec *B = bench::findBenchmark("PP");
  ASSERT_NE(B, nullptr);
  Telemetry::Options Opts;
  Opts.SampleShift = 0;
  Telemetry Tel(Opts);
  bench::RunOptions Run;
  Run.ScalePercent = 5;
  Run.Telemetry = &Tel;
  bench::RunResult First = bench::runBenchmark(*B, bench::Config::Memoir, Run);
  bench::RunResult Second = bench::runBenchmark(*B, bench::Config::Memoir, Run);

  // Each result holds its own run's delta, and the deltas sum to the
  // sink's cumulative totals.
  for (size_t K = 0; K != size_t(EventKind::NumKinds); ++K)
    EXPECT_EQ(First.Events[K] + Second.Events[K],
              Tel.eventCount(EventKind(K)))
        << eventKindName(EventKind(K));
}

} // namespace
