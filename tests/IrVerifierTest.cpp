//===- IrVerifierTest.cpp -------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests of verifyModule's error paths. The parser can't produce most of
/// this malformed IR (it rejects the syntax first), so the modules are
/// built programmatically.
///
//===----------------------------------------------------------------------===//

#include "ir/IR.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace ade;
using namespace ade::ir;

namespace {

/// Runs the verifier expecting failure; returns the collected errors.
std::vector<std::string> verifyErrors(const Module &M) {
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
  EXPECT_FALSE(Errors.empty());
  return Errors;
}

bool hasError(const std::vector<std::string> &Errors,
              const std::string &Substr) {
  for (const std::string &E : Errors)
    if (E.find(Substr) != std::string::npos)
      return true;
  return false;
}

std::unique_ptr<Instruction> makeInst(Opcode Op,
                                      std::vector<Type *> ResultTys = {},
                                      std::vector<Value *> Operands = {},
                                      unsigned NumRegions = 0) {
  return std::make_unique<Instruction>(Op, ResultTys, Operands, NumRegions);
}

TEST(IrVerifier, ExternalFunctionWithBody) {
  Module M;
  Function *F = M.createFunction("ext", M.types().voidTy(),
                                 /*External=*/true);
  F->body().push(makeInst(Opcode::Ret));
  EXPECT_TRUE(hasError(verifyErrors(M), "external function has a body"));
}

TEST(IrVerifier, BodyMustEndWithRet) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  B.constU64(1);
  EXPECT_TRUE(hasError(verifyErrors(M), "function body must end with ret"));
}

TEST(IrVerifier, TerminatorInTheMiddle) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  F->body().push(makeInst(Opcode::Ret));
  F->body().push(makeInst(Opcode::Ret));
  EXPECT_TRUE(
      hasError(verifyErrors(M), "terminator in the middle of a region"));
}

TEST(IrVerifier, RegionMustEndWithYield) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Value *Cond = B.constBool(true);
  Instruction *If = B.create(Opcode::If, {}, {Cond}, /*NumRegions=*/2);
  // Then-region holds a non-terminator only; else-region is well-formed.
  IRBuilder Then(M, If->region(0));
  Then.constU64(0);
  If->region(1)->push(makeInst(Opcode::Yield));
  B.create(Opcode::Ret, {}, {});
  EXPECT_TRUE(
      hasError(verifyErrors(M), "region must end with yield or ret"));
}

TEST(IrVerifier, IfConditionTypeMismatch) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Value *NotBool = B.constU64(3);
  Instruction *If = B.create(Opcode::If, {}, {NotBool}, /*NumRegions=*/2);
  If->region(0)->push(makeInst(Opcode::Yield));
  If->region(1)->push(makeInst(Opcode::Yield));
  B.create(Opcode::Ret, {}, {});
  EXPECT_TRUE(hasError(verifyErrors(M), "if condition must be bool"));
}

TEST(IrVerifier, ArithmeticOnCollections) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Type *SetTy = M.types().setTy(M.types().intTy(64, false));
  Value *A = B.newColl(SetTy, "a");
  Value *C = B.newColl(SetTy, "b");
  B.add(A, C);
  B.create(Opcode::Ret, {}, {});
  EXPECT_TRUE(
      hasError(verifyErrors(M), "arithmetic requires scalar operands"));
}

TEST(IrVerifier, ReserveRequiresCollectionOperand) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Value *N = B.constU64(8);
  B.create(Opcode::Reserve, {}, {N, N});
  B.create(Opcode::Ret, {}, {});
  EXPECT_TRUE(hasError(verifyErrors(M), "reserve requires a collection"));
}

TEST(IrVerifier, ReserveCountMustBeU64) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Type *SetTy = M.types().setTy(M.types().intTy(64, false));
  Value *S = B.newColl(SetTy, "s");
  Value *Count = B.constBool(true);
  B.create(Opcode::Reserve, {}, {S, Count});
  B.create(Opcode::Ret, {}, {});
  EXPECT_TRUE(hasError(verifyErrors(M), "has type bool, expected u64"));
}

TEST(IrVerifier, ReserveOperandAndResultArity) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Type *SetTy = M.types().setTy(M.types().intTy(64, false));
  Value *S = B.newColl(SetTy, "s");
  B.create(Opcode::Reserve, {}, {S});
  B.create(Opcode::Ret, {}, {});
  EXPECT_TRUE(
      hasError(verifyErrors(M), "expected 2 operands, found 1"));
}

TEST(IrVerifier, WriteKeyTypeMismatch) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Type *U64 = M.types().intTy(64, false);
  Value *Map = B.newColl(M.types().mapTy(U64, U64), "m");
  Value *BoolKey = B.constBool(true);
  Value *V = B.constU64(1);
  B.write(Map, BoolKey, V);
  B.create(Opcode::Ret, {}, {});
  std::vector<std::string> Errors = verifyErrors(M);
  EXPECT_TRUE(hasError(Errors, "has type bool, expected u64"));
}

TEST(IrVerifier, ReturnValueTypeMismatch) {
  Module M;
  Function *F = M.createFunction("f", M.types().intTy(64, false));
  IRBuilder B(M, &F->body());
  Value *Wrong = B.constBool(false);
  B.create(Opcode::Ret, {}, {Wrong});
  EXPECT_TRUE(hasError(verifyErrors(M),
                       "return value has type bool, expected u64"));
}

TEST(IrVerifier, ForEachRegionArgArityMismatch) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Type *U64 = M.types().intTy(64, false);
  Value *Map = B.newColl(M.types().mapTy(U64, U64), "m");
  // A map for-each needs key and value block arguments; give it one.
  Instruction *Loop =
      B.create(Opcode::ForEach, {}, {Map}, /*NumRegions=*/1);
  Loop->region(0)->addArg(U64, "k");
  Loop->region(0)->push(makeInst(Opcode::Yield));
  B.create(Opcode::Ret, {}, {});
  EXPECT_TRUE(hasError(verifyErrors(M),
                       "foreach region argument count mismatch"));
}

TEST(IrVerifier, DoWhileCarriedArityMismatch) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Value *Init = B.constU64(0);
  // One carried operand but no matching block argument or result.
  Instruction *Loop =
      B.create(Opcode::DoWhile, {}, {Init}, /*NumRegions=*/1);
  Loop->region(0)->push(makeInst(Opcode::Yield));
  B.create(Opcode::Ret, {}, {});
  EXPECT_TRUE(hasError(verifyErrors(M), "dowhile arity mismatch"));
}

TEST(IrVerifier, CarriedValueTypeMismatch) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Type *U64 = M.types().intTy(64, false);
  Value *Lo = B.constU64(0);
  Value *Hi = B.constU64(10);
  Value *Init = B.constU64(0);
  Instruction *Loop =
      B.create(Opcode::ForRange, {}, {Lo, Hi, Init}, /*NumRegions=*/1);
  Loop->region(0)->addArg(U64, "i");
  // The carried block argument's type disagrees with the init operand.
  Loop->region(0)->addArg(M.types().boolTy(), "acc");
  Loop->addResult(U64);
  IRBuilder Body(M, Loop->region(0));
  Instruction *Y = Body.create(Opcode::Yield, {}, {Loop->region(0)->arg(1)});
  (void)Y;
  B.create(Opcode::Ret, {}, {});
  EXPECT_TRUE(
      hasError(verifyErrors(M), "carried value has type bool, expected u64"));
}

TEST(IrVerifier, YieldCountMismatch) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Value *Cond = B.constBool(true);
  Instruction *If = B.create(Opcode::If, {}, {Cond}, /*NumRegions=*/2);
  If->addResult(M.types().intTy(64, false));
  // Both yields are empty although the if has one result.
  If->region(0)->push(makeInst(Opcode::Yield));
  If->region(1)->push(makeInst(Opcode::Yield));
  B.create(Opcode::Ret, {}, {});
  EXPECT_TRUE(
      hasError(verifyErrors(M), "yield carries 0 values, expected 1"));
}

TEST(IrVerifier, UnknownCalleeAndGlobal) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Instruction *Call = B.create(Opcode::Call, {}, {});
  Call->setSymbol("missing");
  Instruction *Get =
      B.create(Opcode::GlobalGet, {M.types().intTy(64, false)}, {});
  Get->setSymbol("gone");
  B.create(Opcode::Ret, {}, {});
  std::vector<std::string> Errors = verifyErrors(M);
  EXPECT_TRUE(hasError(Errors, "unknown callee @missing"));
  EXPECT_TRUE(hasError(Errors, "unknown global @gone"));
}

TEST(IrVerifier, OperandDoesNotDominate) {
  Module M;
  Function *F = M.createFunction("f", M.types().voidTy());
  IRBuilder B(M, &F->body());
  Value *Cond = B.constBool(true);
  Instruction *If = B.create(Opcode::If, {}, {Cond}, /*NumRegions=*/2);
  IRBuilder Then(M, If->region(0));
  Value *Inner = Then.constU64(1);
  Then.create(Opcode::Yield, {}, {});
  If->region(1)->push(makeInst(Opcode::Yield));
  // Uses a value defined inside the then-region after the if.
  B.add(Inner, Inner);
  B.create(Opcode::Ret, {}, {});
  EXPECT_TRUE(hasError(verifyErrors(M), "does not dominate its use"));
}

} // namespace
