//===- InterpErrorsTest.cpp -----------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Error paths of the interpreter: undefined-behavior conditions and
/// guard-rail budgets throw recoverable InterpError diagnostics carrying
/// the offending site, rather than corrupting state or killing the host.
///
//===----------------------------------------------------------------------===//

#include "interp/InterpError.h"
#include "interp/Interpreter.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace ade;
using namespace ade::interp;

namespace {

/// Runs @main and returns the InterpError it must throw.
InterpError runExpectingError(const char *Src, InterpOptions Opts = {}) {
  auto M = parser::parseModuleOrDie(Src);
  Interpreter I(*M, Opts);
  try {
    I.callByName("main", {});
  } catch (const InterpError &E) {
    return E;
  }
  ADD_FAILURE() << "program ran to completion without an InterpError";
  return InterpError(InterpErrorKind::Undefined, "", ir::SrcLoc{}, "");
}

TEST(InterpErrors, ReadOfMissingMapKeyThrows) {
  InterpError E = runExpectingError(R"(fn @main() -> u64 {
  %m = new Map<u64, u64>
  %k = const 7 : u64
  %v = read %m, %k
  ret %v
})");
  EXPECT_EQ(E.kind(), InterpErrorKind::Undefined);
  EXPECT_NE(std::string(E.what()).find("missing key"), std::string::npos);
  EXPECT_EQ(E.function(), "main");
  // The read is on source line 4.
  EXPECT_EQ(E.loc().Line, 4u);
}

TEST(InterpErrors, SequenceReadOutOfBoundsThrows) {
  InterpError E = runExpectingError(R"(fn @main() -> u64 {
  %q = new Seq<u64>
  %i = const 0 : u64
  %v = read %q, %i
  ret %v
})");
  EXPECT_EQ(E.kind(), InterpErrorKind::Undefined);
  EXPECT_NE(std::string(E.what()).find("out of bounds"), std::string::npos);
}

TEST(InterpErrors, PopOfEmptySequenceThrows) {
  InterpError E = runExpectingError(R"(fn @main() -> u64 {
  %q = new Seq<u64>
  %v = pop %q
  ret %v
})");
  EXPECT_EQ(E.kind(), InterpErrorKind::Undefined);
  EXPECT_NE(std::string(E.what()).find("empty sequence"), std::string::npos);
}

TEST(InterpErrors, DivisionByZeroThrows) {
  InterpError E = runExpectingError(R"(fn @main() -> u64 {
  %a = const 1 : u64
  %z = const 0 : u64
  %r = div %a, %z
  ret %r
})");
  EXPECT_EQ(E.kind(), InterpErrorKind::Undefined);
  EXPECT_NE(std::string(E.what()).find("division by zero"), std::string::npos);
  EXPECT_EQ(E.loc().Line, 4u);
}

TEST(InterpErrors, SignedRemainderByZeroThrows) {
  InterpError E = runExpectingError(R"(fn @main() -> i64 {
  %a = const 1 : i64
  %z = const 0 : i64
  %r = rem %a, %z
  ret %r
})");
  EXPECT_EQ(E.kind(), InterpErrorKind::Undefined);
  EXPECT_NE(std::string(E.what()).find("remainder by zero"),
            std::string::npos);
}

TEST(InterpErrors, DecOutOfRangeThrows) {
  InterpError E = runExpectingError(R"(global @e : Enum<u64>
fn @main() -> u64 {
  %e = gget @e
  %i = const 5 : idx
  %v = dec %e, %i
  ret %v
})");
  EXPECT_EQ(E.kind(), InterpErrorKind::Undefined);
  EXPECT_NE(std::string(E.what()).find("out-of-range identifier"),
            std::string::npos);
}

TEST(InterpErrors, InterpreterRemainsUsableAfterError) {
  auto M = parser::parseModuleOrDie(R"(fn @boom() -> u64 {
  %m = new Map<u64, u64>
  %k = const 7 : u64
  %v = read %m, %k
  ret %v
}
fn @ok() -> u64 {
  %a = const 21 : u64
  %b = const 2 : u64
  %r = mul %a, %b
  ret %r
})");
  Interpreter I(*M);
  EXPECT_THROW(I.callByName("boom", {}), InterpError);
  EXPECT_EQ(I.callByName("ok", {}), 42u);
}

//===----------------------------------------------------------------------===//
// Guard rails: --max-steps / --max-bytes / --max-depth
//===----------------------------------------------------------------------===//

TEST(InterpGuardRails, StepBudgetTripsOnRunawayLoop) {
  InterpOptions Opts;
  Opts.MaxSteps = 10000;
  InterpError E = runExpectingError(R"(fn @main() -> u64 {
  %zero = const 0 : u64
  %one = const 1 : u64
  %t = gt %one, %zero
  %r = dowhile iter(%a = %zero) {
    %n = add %a, %one
    yield %t, %n
  }
  ret %r
})",
                                    Opts);
  EXPECT_EQ(E.kind(), InterpErrorKind::StepBudget);
  EXPECT_NE(std::string(E.what()).find("--max-steps"), std::string::npos);
  EXPECT_EQ(E.function(), "main");
  // The budget trips inside the loop body (lines 5-8).
  EXPECT_GE(E.loc().Line, 5u);
  EXPECT_LE(E.loc().Line, 8u);
}

TEST(InterpGuardRails, MemoryBudgetTripsOnUnboundedGrowth) {
  InterpOptions Opts;
  Opts.MaxBytes = 1 << 20; // 1 MiB.
  Opts.MaxSteps = 100000000;
  InterpError E = runExpectingError(R"(fn @main() -> u64 {
  %q = new Seq<u64>
  %zero = const 0 : u64
  %one = const 1 : u64
  %t = gt %one, %zero
  %r = dowhile iter(%i = %zero) {
    append %q, %i
    %n = add %i, %one
    yield %t, %n
  }
  ret %r
})",
                                    Opts);
  EXPECT_EQ(E.kind(), InterpErrorKind::MemoryBudget);
  EXPECT_NE(std::string(E.what()).find("--max-bytes"), std::string::npos);
  // The append on line 7 is the growth site.
  EXPECT_EQ(E.loc().Line, 7u);
}

TEST(InterpGuardRails, DepthBudgetTripsOnRunawayRecursion) {
  InterpOptions Opts;
  Opts.MaxDepth = 100;
  InterpError E = runExpectingError(R"(fn @spin(%n: u64) -> u64 {
  %one = const 1 : u64
  %m = add %n, %one
  %r = call @spin(%m)
  ret %r
}
fn @main() -> u64 {
  %z = const 0 : u64
  %r = call @spin(%z)
  ret %r
})",
                                    Opts);
  EXPECT_EQ(E.kind(), InterpErrorKind::DepthBudget);
  EXPECT_NE(std::string(E.what()).find("--max-depth"), std::string::npos);
  EXPECT_EQ(E.function(), "spin");
}

TEST(InterpGuardRails, BudgetsDoNotFireUnderTheLimit) {
  auto M = parser::parseModuleOrDie(R"(fn @main() -> u64 {
  %q = new Seq<u64>
  %a = const 5 : u64
  append %q, %a
  %v = pop %q
  ret %v
})");
  InterpOptions Opts;
  Opts.MaxSteps = 1000;
  Opts.MaxBytes = 1 << 20;
  Opts.MaxDepth = 16;
  Interpreter I(*M, Opts);
  EXPECT_EQ(I.callByName("main", {}), 5u);
}

TEST(InterpNonDeath, EncOfUnknownValueYieldsFreshId) {
  // Not UB in our runtime (DESIGN.md note 2): membership tests against
  // the fresh id fail, matching Listing 2's probe pattern.
  auto M = parser::parseModuleOrDie(R"(global @e : Enum<u64>
fn @main() -> u64 {
  %e = gget @e
  %a = const 10 : u64
  %id0 = enum.add %e, %a
  %b = const 99 : u64
  %idb = enc %e, %b
  %s = new Set{BitSet}<idx>
  insert %s, %id0
  %h = has %s, %idb
  %one = const 1 : u64
  %zero = const 0 : u64
  %r = select %h, %one, %zero
  ret %r
})");
  Interpreter I(*M);
  EXPECT_EQ(I.callByName("main", {}), 0u);
}

} // namespace
