//===- InterpErrorsTest.cpp -----------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Error paths of the interpreter: undefined-behavior conditions trap
/// with a diagnostic (death tests) rather than corrupting state.
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace ade;
using namespace ade::interp;

namespace {

void runProgram(const char *Src) {
  auto M = parser::parseModuleOrDie(Src);
  Interpreter I(*M);
  I.callByName("main", {});
}

using InterpDeath = ::testing::Test;

TEST(InterpDeath, ReadOfMissingMapKeyTraps) {
  EXPECT_DEATH(runProgram(R"(fn @main() -> u64 {
  %m = new Map<u64, u64>
  %k = const 7 : u64
  %v = read %m, %k
  ret %v
})"),
               "missing key");
}

TEST(InterpDeath, SequenceReadOutOfBoundsTraps) {
  EXPECT_DEATH(runProgram(R"(fn @main() -> u64 {
  %q = new Seq<u64>
  %i = const 0 : u64
  %v = read %q, %i
  ret %v
})"),
               "out of bounds");
}

TEST(InterpDeath, PopOfEmptySequenceTraps) {
  EXPECT_DEATH(runProgram(R"(fn @main() -> u64 {
  %q = new Seq<u64>
  %v = pop %q
  ret %v
})"),
               "empty sequence");
}

TEST(InterpDeath, DivisionByZeroTraps) {
  EXPECT_DEATH(runProgram(R"(fn @main() -> u64 {
  %a = const 1 : u64
  %z = const 0 : u64
  %r = div %a, %z
  ret %r
})"),
               "division by zero");
}

TEST(InterpDeath, DecOutOfRangeTraps) {
  EXPECT_DEATH(runProgram(R"(global @e : Enum<u64>
fn @main() -> u64 {
  %e = gget @e
  %i = const 5 : idx
  %v = dec %e, %i
  ret %v
})"),
               "out-of-range identifier");
}

TEST(InterpNonDeath, EncOfUnknownValueYieldsFreshId) {
  // Not UB in our runtime (DESIGN.md note 2): membership tests against
  // the fresh id fail, matching Listing 2's probe pattern.
  auto M = parser::parseModuleOrDie(R"(global @e : Enum<u64>
fn @main() -> u64 {
  %e = gget @e
  %a = const 10 : u64
  %id0 = enum.add %e, %a
  %b = const 99 : u64
  %idb = enc %e, %b
  %s = new Set{BitSet}<idx>
  insert %s, %id0
  %h = has %s, %idb
  %one = const 1 : u64
  %zero = const 0 : u64
  %r = select %h, %one, %zero
  ret %r
})");
  Interpreter I(*M);
  EXPECT_EQ(I.callByName("main", {}), 0u);
}

} // namespace
