//===- SupportRemarkTest.cpp ----------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The optimization-remarks support layer: typed arguments, provenance
/// integrity (verify, chainDepth), the pass filter, and the JSON
/// round-trip that `adec --remarks=FILE` and `ade-remarks` meet over.
///
//===----------------------------------------------------------------------===//

#include "support/RawOstream.h"
#include "support/Remark.h"

#include <gtest/gtest.h>

using namespace ade;
using namespace ade::remarks;

namespace {

/// A small stream exercising all kinds, arg types, locations and a
/// two-level provenance chain.
RemarkStream makeStream() {
  RemarkStream S;
  size_t I = S.add(Kind::Passed, "plan", "enum-created");
  S.at(I).Function = "count";
  S.at(I).Line = 10;
  S.at(I).Col = 12;
  S.at(I).Args.push_back(Arg::str("keyType", "u64"));
  S.at(I).Args.push_back(Arg::uint("benefit", 12));
  S.at(I).Args.push_back(Arg::boolean("forced", false));

  I = S.add(Kind::Passed, "share", "merged");
  S.at(I).Function = "count";
  S.at(I).Line = 11;
  S.at(I).Col = 12;
  S.at(I).Parents.push_back(1);
  S.at(I).Args.push_back(Arg::uint("benefitTogether", 12));
  S.at(I).Args.push_back(Arg::uint("benefitApart", 4));

  I = S.add(Kind::Missed, "share", "rejected");
  S.at(I).Parents.push_back(1);
  S.at(I).Args.push_back(Arg::sint("delta", -3));
  S.at(I).Args.push_back(
      Arg::str("reason", "benefit together must exceed the sum"));

  I = S.add(Kind::Analysis, "selection", "select");
  S.at(I).Function = "count";
  S.at(I).Parents.push_back(2);
  return S;
}

std::string toJson(const RemarkStream &S,
                   const std::string *Filter = nullptr) {
  std::string Out;
  RawStringOstream OS(Out);
  S.writeJson(OS, "fixture.memoir", Filter);
  return Out;
}

TEST(Remark, ArgValueTextCoversEveryType) {
  EXPECT_EQ(Arg::str("k", "v").valueText(), "v");
  EXPECT_EQ(Arg::uint("k", 42).valueText(), "42");
  EXPECT_EQ(Arg::sint("k", -7).valueText(), "-7");
  EXPECT_EQ(Arg::boolean("k", true).valueText(), "true");
  EXPECT_EQ(Arg::boolean("k", false).valueText(), "false");
}

TEST(Remark, MessageAndLookup) {
  RemarkStream S = makeStream();
  const Remark &R = S.remarks()[0];
  EXPECT_EQ(R.message(),
            "plan:enum-created keyType='u64' benefit=12 forced=false");
  ASSERT_NE(R.arg("benefit"), nullptr);
  EXPECT_EQ(R.arg("benefit")->UInt, 12u);
  EXPECT_EQ(R.arg("missing"), nullptr);
}

TEST(Remark, CountsAndChainDepth) {
  RemarkStream S = makeStream();
  EXPECT_EQ(S.count(Kind::Passed), 2u);
  EXPECT_EQ(S.count(Kind::Missed), 1u);
  EXPECT_EQ(S.count(Kind::Analysis), 1u);
  // selection:select <- share:merged <- plan:enum-created.
  EXPECT_EQ(S.chainDepth(S.remarks()[3]), 3u);
  EXPECT_EQ(S.chainDepth(S.remarks()[0]), 1u);
}

TEST(Remark, VerifyAcceptsWellFormedStream) {
  std::string Error;
  EXPECT_TRUE(makeStream().verify(&Error)) << Error;
}

TEST(Remark, VerifyRejectsForwardParent) {
  RemarkStream S;
  size_t I = S.add(Kind::Passed, "plan", "enum-created");
  S.at(I).Parents.push_back(2); // Not yet emitted: a forward edge.
  S.add(Kind::Passed, "share", "merged");
  std::string Error;
  EXPECT_FALSE(S.verify(&Error));
  EXPECT_NE(Error.find("parent"), std::string::npos);
}

TEST(Remark, VerifyRejectsSelfParent) {
  RemarkStream S;
  size_t I = S.add(Kind::Passed, "plan", "enum-created");
  S.at(I).Parents.push_back(1);
  EXPECT_FALSE(S.verify());
}

TEST(Remark, JsonRoundTripPreservesEverything) {
  RemarkStream S = makeStream();
  std::string Json = toJson(S);

  RemarkStream T;
  std::string Error, File;
  ASSERT_TRUE(T.readJson(Json, &Error, &File)) << Error;
  EXPECT_EQ(File, "fixture.memoir");
  ASSERT_EQ(T.size(), S.size());
  for (size_t I = 0; I != S.size(); ++I) {
    const Remark &A = S.remarks()[I], &B = T.remarks()[I];
    EXPECT_EQ(A.Id, B.Id);
    EXPECT_EQ(A.K, B.K);
    EXPECT_EQ(A.Pass, B.Pass);
    EXPECT_EQ(A.Name, B.Name);
    EXPECT_EQ(A.Function, B.Function);
    EXPECT_EQ(A.Line, B.Line);
    EXPECT_EQ(A.Col, B.Col);
    EXPECT_EQ(A.Args, B.Args);
    EXPECT_EQ(A.Parents, B.Parents);
  }
  // The reader re-verifies, so the parsed stream answers chain queries.
  EXPECT_EQ(T.chainDepth(T.remarks()[3]), 3u);
  // And appending after a read continues the id sequence.
  size_t I = T.add(Kind::Passed, "rte", "eliminated");
  EXPECT_EQ(T.at(I).Id, 5u);
}

TEST(Remark, ReadJsonRejectsMalformedInput) {
  RemarkStream S;
  std::string Error;
  EXPECT_FALSE(S.readJson("not json", &Error));
  EXPECT_FALSE(S.readJson("{\"remarks\": []}", &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(Remark, ReadJsonRejectsSchemaVersionMismatch) {
  RemarkStream S;
  std::string Json = toJson(makeStream());
  size_t Pos = Json.find("\"schemaVersion\": 1");
  ASSERT_NE(Pos, std::string::npos);
  Json.replace(Pos, 18, "\"schemaVersion\": 99");
  std::string Error;
  EXPECT_FALSE(S.readJson(Json, &Error));
  EXPECT_NE(Error.find("schema"), std::string::npos);
}

TEST(Remark, ReadJsonRejectsBrokenProvenance) {
  std::string Json = toJson(makeStream());
  // Rewrite share:merged's parent list to point at an unseen id.
  size_t Pos = Json.find("\"parents\": [1]");
  ASSERT_NE(Pos, std::string::npos);
  Json.replace(Pos, 14, "\"parents\": [9]");
  RemarkStream S;
  std::string Error;
  EXPECT_FALSE(S.readJson(Json, &Error));
}

TEST(Remark, WriteJsonAppliesPassFilter) {
  std::string Filter = "share";
  std::string Json = toJson(makeStream(), &Filter);
  EXPECT_NE(Json.find("\"pass\": \"share\""), std::string::npos);
  EXPECT_EQ(Json.find("\"pass\": \"plan\""), std::string::npos);
  EXPECT_EQ(Json.find("\"pass\": \"selection\""), std::string::npos);
}

TEST(Remark, FilterIsAnchoredRegex) {
  EXPECT_TRUE(RemarkStream::matchesFilter("share", "share"));
  EXPECT_TRUE(RemarkStream::matchesFilter("selection", "sel.*"));
  EXPECT_TRUE(RemarkStream::matchesFilter("plan", "plan|share"));
  // Anchored: a substring match is not enough.
  EXPECT_FALSE(RemarkStream::matchesFilter("selection", "sel"));
  EXPECT_FALSE(RemarkStream::matchesFilter("share", "hare"));
}

TEST(Remark, ValidateFilterRejectsBadRegex) {
  std::string Error;
  EXPECT_TRUE(RemarkStream::validateFilter("plan|share", &Error));
  EXPECT_FALSE(RemarkStream::validateFilter("[", &Error));
  EXPECT_FALSE(Error.empty());
}

} // namespace
