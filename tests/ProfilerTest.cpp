//===- ProfilerTest.cpp ---------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The source-attributed interpreter profiler: category coverage, exact
/// hot-site locations, per-collection lifetime records (including the
/// hash tables' probe/rehash counters), JSON well-formedness via the
/// json reader, and the opt-in guarantee that attaching a profiler does
/// not change execution results or statistics.
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "interp/Profiler.h"
#include "parser/Parser.h"
#include "support/Json.h"
#include "support/RawOstream.h"

#include <gtest/gtest.h>

using namespace ade;
using namespace ade::interp;
using namespace ade::runtime;

namespace {

/// Runs @main with an attached profiler and returns its result.
uint64_t runProfiled(const char *Src, Profiler &Prof,
                     std::vector<uint64_t> Args = {}) {
  auto M = parser::parseModuleOrDie(Src);
  InterpOptions Opts;
  Opts.Prof = &Prof;
  Interpreter I(*M, Opts);
  return I.callByName("main", Args);
}

/// One operation of every category, each on its own source line.
const char *kAllCategories = R"(global @e : Enum<u64>
fn @main() -> u64 {
  %m = new Map<u64, u64>
  %s = new Set<u64>
  %s2 = new Set<u64>
  %k = const 7 : u64
  %v = const 42 : u64
  write %m, %k, %v
  %r = read %m, %k
  insert %s, %k
  %h = has %s, %k
  %sz = size %s
  insert %s2, %v
  union %s, %s2
  %zero = const 0 : u64
  %it = foreach %s -> [%x] iter(%acc = %zero) {
    %n = add %acc, %x
    yield %n
  }
  remove %s, %v
  clear %s
  %e = gget @e
  %id = enum.add %e, %k
  %enc = enc %e, %k
  %back = dec %e, %id
  ret %r
})";

uint64_t categoryTotal(const Profiler &Prof, OpCategory Cat) {
  uint64_t Total = 0;
  for (const Profiler::SiteRecord *S : Prof.hotSites())
    Total += S->ByCategory[static_cast<unsigned>(Cat)];
  return Total;
}

TEST(Profiler, EveryOpCategoryCounted) {
  Profiler Prof;
  EXPECT_EQ(runProfiled(kAllCategories, Prof), 42u);
  EXPECT_EQ(categoryTotal(Prof, OpCategory::Read), 1u);
  EXPECT_EQ(categoryTotal(Prof, OpCategory::Write), 1u);
  EXPECT_EQ(categoryTotal(Prof, OpCategory::Insert), 2u);
  EXPECT_EQ(categoryTotal(Prof, OpCategory::Remove), 1u);
  EXPECT_EQ(categoryTotal(Prof, OpCategory::Has), 1u);
  EXPECT_EQ(categoryTotal(Prof, OpCategory::Size), 1u);
  EXPECT_EQ(categoryTotal(Prof, OpCategory::Clear), 1u);
  // %s holds {7, 42} when iterated.
  EXPECT_EQ(categoryTotal(Prof, OpCategory::Iterate), 2u);
  // One source element merged by the union.
  EXPECT_EQ(categoryTotal(Prof, OpCategory::Union), 1u);
  EXPECT_EQ(categoryTotal(Prof, OpCategory::Enc), 1u);
  EXPECT_EQ(categoryTotal(Prof, OpCategory::Dec), 1u);
  EXPECT_EQ(categoryTotal(Prof, OpCategory::EnumAdd), 1u);
}

TEST(Profiler, SitesCarryExactSourceLocations) {
  Profiler Prof;
  runProfiled(kAllCategories, Prof);
  // kAllCategories starts with the global on line 1, so `write %m` sits
  // on line 8 and `read %m` on line 9 (columns point at the mnemonic).
  bool SawWrite = false, SawRead = false;
  for (const Profiler::SiteRecord *S : Prof.hotSites()) {
    if (S->Op == ir::Opcode::Write) {
      SawWrite = true;
      EXPECT_EQ(S->Loc.Line, 8u);
      EXPECT_EQ(S->Function, "main");
    }
    if (S->Op == ir::Opcode::Read) {
      SawRead = true;
      EXPECT_EQ(S->Loc.Line, 9u);
    }
    EXPECT_TRUE(S->Loc.isValid());
  }
  EXPECT_TRUE(SawWrite);
  EXPECT_TRUE(SawRead);
}

TEST(Profiler, HottestSiteSortsFirst) {
  Profiler Prof;
  runProfiled(R"(fn @main() -> u64 {
  %m = new Map<u64, u64>
  %lo = const 0 : u64
  %hi = const 100 : u64
  forrange %lo, %hi -> [%i] {
    write %m, %i, %i
    yield
  }
  %k = const 5 : u64
  %r = read %m, %k
  ret %r
})",
              Prof);
  auto Sites = Prof.hotSites();
  ASSERT_FALSE(Sites.empty());
  EXPECT_EQ(Sites[0]->Op, ir::Opcode::Write);
  EXPECT_EQ(Sites[0]->Total, 100u);
  EXPECT_EQ(Sites[0]->Loc.Line, 6u);
}

TEST(Profiler, CollectionRecordsAcrossKinds) {
  Profiler Prof;
  runProfiled(kAllCategories, Prof);
  auto Colls = Prof.collections();
  // %m, %s, %s2 and the enumeration-backing global are not all runtime
  // collections; at least the map and both sets must be registered.
  ASSERT_GE(Colls.size(), 3u);
  const Profiler::CollectionRecord *Map = nullptr, *SetA = nullptr;
  for (const Profiler::CollectionRecord *R : Colls) {
    if (R->Kind == RtKind::Map)
      Map = R;
    else if (R->Kind == RtKind::Set && !SetA)
      SetA = R;
  }
  ASSERT_NE(Map, nullptr);
  ASSERT_NE(SetA, nullptr);
  EXPECT_EQ(Map->Impl, ir::Selection::HashMap);
  EXPECT_EQ(Map->Ops, 2u); // write + read
  EXPECT_EQ(Map->PeakElements, 1u);
  EXPECT_GT(Map->PeakBytes, 0u);
  EXPECT_EQ(Map->Loc.Line, 3u); // %m = new Map on line 3
  EXPECT_EQ(SetA->Impl, ir::Selection::HashSet);
  EXPECT_EQ(SetA->PeakElements, 2u); // {7, 42} after the union
}

TEST(Profiler, HashTableProbeAndRehashCounters) {
  Profiler Prof;
  runProfiled(R"(fn @main() -> u64 {
  %s = new Set<u64>
  %lo = const 0 : u64
  %hi = const 100 : u64
  forrange %lo, %hi -> [%i] {
    insert %s, %i
    yield
  }
  %sz = size %s
  ret %sz
})",
              Prof);
  const Profiler::CollectionRecord *Set = nullptr;
  for (const Profiler::CollectionRecord *R : Prof.collections())
    if (R->Kind == RtKind::Set)
      Set = R;
  ASSERT_NE(Set, nullptr);
  EXPECT_EQ(Set->PeakElements, 100u);
  // 100 inserts into a chained hash set must probe and grow the table.
  EXPECT_GT(Set->Probes, 0u);
  EXPECT_GT(Set->Rehashes, 0u);
}

TEST(Profiler, GlobalCollectionsGetLabels) {
  Profiler Prof;
  runProfiled(R"(global @cache : Map<u64, u64>
fn @main() -> u64 {
  %c = gget @cache
  %k = const 1 : u64
  write %c, %k, %k
  %r = read %c, %k
  ret %r
})",
              Prof);
  const Profiler::CollectionRecord *Cache = nullptr;
  for (const Profiler::CollectionRecord *R : Prof.collections())
    if (R->Kind == RtKind::Map)
      Cache = R;
  ASSERT_NE(Cache, nullptr);
  EXPECT_EQ(Cache->AllocSite, nullptr);
  EXPECT_EQ(Cache->Label, "@cache");
  EXPECT_EQ(Cache->Ops, 2u);
}

TEST(Profiler, ReportsSurviveModuleDestruction) {
  // The bench harness reports after its module and interpreter are gone;
  // records must not dereference IR pointers.
  Profiler Prof;
  runProfiled(kAllCategories, Prof);
  std::string Text;
  RawStringOstream OS(Text);
  Prof.printReport(OS, "test.memoir");
  EXPECT_NE(Text.find("hot sites"), std::string::npos);
  EXPECT_NE(Text.find("test.memoir:8:3"), std::string::npos); // write %m
}

TEST(Profiler, JsonReportsParseBack) {
  Profiler Prof;
  runProfiled(kAllCategories, Prof);

  std::string HotText;
  {
    RawStringOstream OS(HotText);
    json::Writer W(OS);
    Prof.writeHotSitesJson(W, "prog.memoir");
  }
  std::string Error;
  auto Hot = json::parse(HotText, &Error);
  ASSERT_NE(Hot, nullptr) << Error;
  ASSERT_TRUE(Hot->isArray());
  ASSERT_GT(Hot->size(), 0u);
  const json::Value &First = (*Hot)[0];
  ASSERT_TRUE(First.isObject());
  EXPECT_EQ(First.find("file")->asString(), "prog.memoir");
  EXPECT_GT(First.find("line")->asUint(), 0u);
  EXPECT_GT(First.find("col")->asUint(), 0u);
  EXPECT_GT(First.find("count")->asUint(), 0u);
  EXPECT_TRUE(First.find("byCategory")->isObject());

  std::string CollText;
  {
    RawStringOstream OS(CollText);
    json::Writer W(OS);
    Prof.writeCollectionsJson(W);
  }
  auto Colls = json::parse(CollText, &Error);
  ASSERT_NE(Colls, nullptr) << Error;
  ASSERT_TRUE(Colls->isArray());
  ASSERT_GT(Colls->size(), 0u);
  const json::Value &C0 = (*Colls)[0];
  ASSERT_TRUE(C0.isObject());
  EXPECT_NE(C0.find("kind"), nullptr);
  EXPECT_NE(C0.find("impl"), nullptr);
  EXPECT_NE(C0.find("peakBytes"), nullptr);
}

TEST(Profiler, OptInDoesNotChangeExecution) {
  auto M = parser::parseModuleOrDie(kAllCategories);
  Interpreter Plain(*M);
  uint64_t PlainResult = Plain.callByName("main", {});

  auto M2 = parser::parseModuleOrDie(kAllCategories);
  Profiler Prof;
  InterpOptions Opts;
  Opts.Prof = &Prof;
  Interpreter Profiled(*M2, Opts);
  uint64_t ProfiledResult = Profiled.callByName("main", {});

  EXPECT_EQ(PlainResult, ProfiledResult);
  EXPECT_EQ(Plain.stats().Sparse, Profiled.stats().Sparse);
  EXPECT_EQ(Plain.stats().Dense, Profiled.stats().Dense);
  EXPECT_EQ(Plain.stats().InstructionsExecuted,
            Profiled.stats().InstructionsExecuted);
  for (unsigned I = 0; I != InterpStats::NumCats; ++I)
    EXPECT_EQ(Plain.stats().ByCategory[I], Profiled.stats().ByCategory[I]);
  // The profiler's totals agree with the aggregate statistics.
  uint64_t SiteTotal = 0;
  for (const Profiler::SiteRecord *S : Prof.hotSites())
    SiteTotal += S->Total;
  EXPECT_EQ(SiteTotal, Profiled.stats().totalAccesses());
}

TEST(Profiler, ResetClearsEverything) {
  Profiler Prof;
  runProfiled(kAllCategories, Prof);
  EXPECT_GT(Prof.siteCount(), 0u);
  Prof.reset();
  EXPECT_EQ(Prof.siteCount(), 0u);
  EXPECT_TRUE(Prof.hotSites().empty());
  EXPECT_TRUE(Prof.collections().empty());
}

//===----------------------------------------------------------------------===//
// ProfileData: the reader side of `adec --profile-use`.
//===----------------------------------------------------------------------===//

const char *kProfileJson = R"({
  "schemaVersion": 1,
  "collections": [
    {"function": "main", "line": 3, "col": 8, "kind": "Map",
     "ops": 150, "sparse": 150, "dense": 0, "peakElements": 1000,
     "peakBytes": 65536, "probes": 900, "rehashes": 8,
     "byCategory": {"read": 100, "write": 50}},
    {"function": "main", "line": 3, "col": 8, "ops": 50,
     "peakElements": 400, "probes": 60, "rehashes": 1},
    {"origin": "@cache", "ops": 7, "peakElements": 3},
    {"ops": 2}
  ],
  "hotSites": [
    {"function": "main", "line": 6, "col": 5, "count": 100},
    {"function": "main", "line": 9, "col": 5, "count": 1}
  ]
})";

TEST(ProfileData, ParsesAndAggregatesCollectionRecords) {
  ProfileData Data;
  std::string Error;
  ASSERT_TRUE(Data.parse(kProfileJson, &Error)) << Error;
  EXPECT_FALSE(Data.empty());
  // One located site (two records merge) plus two labeled records
  // (@cache and the implicit <external>).
  EXPECT_EQ(Data.numAllocSites(), 3u);

  const ProfileData::SiteProfile *S =
      Data.allocSite("main", ir::SrcLoc{3, 8});
  ASSERT_NE(S, nullptr);
  // Two records at the same site aggregate: counters sum, peaks take the
  // max (they are lifetime peaks of distinct instances).
  EXPECT_EQ(S->Collections, 2u);
  EXPECT_EQ(S->Ops, 200u);
  EXPECT_EQ(S->PeakElements, 1000u);
  EXPECT_EQ(S->Probes, 960u);
  EXPECT_EQ(S->Rehashes, 9u);
  EXPECT_EQ(S->ByCategory[unsigned(OpCategory::Read)], 100u);
  EXPECT_EQ(S->ByCategory[unsigned(OpCategory::Write)], 50u);

  // Unknown sites stay unknown.
  EXPECT_EQ(Data.allocSite("main", ir::SrcLoc{99, 1}), nullptr);
}

TEST(ProfileData, LabeledRecordsForGlobalsAndExternals) {
  ProfileData Data;
  std::string Error;
  ASSERT_TRUE(Data.parse(kProfileJson, &Error)) << Error;
  const ProfileData::SiteProfile *Cache = Data.labeledSite("@cache");
  ASSERT_NE(Cache, nullptr);
  EXPECT_EQ(Cache->Ops, 7u);
  EXPECT_EQ(Cache->PeakElements, 3u);
  // A record with neither origin nor location lands on <external>.
  const ProfileData::SiteProfile *Ext = Data.labeledSite("<external>");
  ASSERT_NE(Ext, nullptr);
  EXPECT_EQ(Ext->Ops, 2u);
  EXPECT_EQ(Data.labeledSite("@missing"), nullptr);
}

TEST(ProfileData, AllocSiteFallsBackToLocationForClonedFunctions) {
  // ADE clones @main into specialized variants; their allocation sites
  // keep the original source location but not the function name, so the
  // reader falls back to a location-only match.
  ProfileData Data;
  std::string Error;
  ASSERT_TRUE(Data.parse(kProfileJson, &Error)) << Error;
  const ProfileData::SiteProfile *S =
      Data.allocSite("main__ade_1", ir::SrcLoc{3, 8});
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Ops, 200u);
}

TEST(ProfileData, OpsAtUsesHotSitesWithLocationFallback) {
  ProfileData Data;
  std::string Error;
  ASSERT_TRUE(Data.parse(kProfileJson, &Error)) << Error;
  EXPECT_EQ(Data.opsAt("main", ir::SrcLoc{6, 5}), 100u);
  EXPECT_EQ(Data.opsAt("main__ade_1", ir::SrcLoc{6, 5}), 100u);
  EXPECT_EQ(Data.opsAt("main", ir::SrcLoc{42, 1}), 0u);
}

TEST(ProfileData, RejectsMissingOrMismatchedSchemaVersion) {
  ProfileData Data;
  std::string Error;
  EXPECT_FALSE(Data.parse(R"({"collections": []})", &Error));
  EXPECT_NE(Error.find("schemaVersion"), std::string::npos) << Error;
  Error.clear();
  EXPECT_FALSE(
      Data.parse(R"({"schemaVersion": 99, "collections": []})", &Error));
  EXPECT_NE(Error.find("unsupported profile schemaVersion 99"),
            std::string::npos)
      << Error;
  Error.clear();
  EXPECT_FALSE(Data.parse("[1, 2]", &Error));
  EXPECT_NE(Error.find("not an object"), std::string::npos) << Error;
  Error.clear();
  EXPECT_FALSE(Data.parse("{nope", &Error));
  EXPECT_NE(Error.find("invalid profile JSON"), std::string::npos) << Error;
}

TEST(ProfileData, AddFromProfilerMatchesJsonRoundTrip) {
  // The in-process path (bench --pgo) and the JSON path (adec
  // --profile-use) must agree on what a training run measured.
  Profiler Prof;
  runProfiled(kAllCategories, Prof);
  ProfileData Direct;
  Direct.addFromProfiler(Prof);
  EXPECT_FALSE(Direct.empty());
  ASSERT_GT(Direct.numAllocSites(), 0u);

  std::string JsonText;
  {
    RawStringOstream OS(JsonText);
    json::Writer W(OS);
    W.beginObject();
    W.member("schemaVersion", ProfileSchemaVersion);
    W.key("collections");
    Prof.writeCollectionsJson(W);
    W.key("hotSites");
    Prof.writeHotSitesJson(W, "prog.memoir");
    W.endObject();
  }
  ProfileData ViaJson;
  std::string Error;
  ASSERT_TRUE(ViaJson.parse(JsonText, &Error)) << Error;
  EXPECT_EQ(ViaJson.numAllocSites(), Direct.numAllocSites());
}

TEST(ProfileData, LoadFromFileReportsMissingPath) {
  ProfileData Data;
  std::string Error;
  EXPECT_FALSE(Data.loadFromFile("/nonexistent/profile.json", &Error));
  EXPECT_NE(Error.find("cannot open"), std::string::npos) << Error;
}

} // namespace
