//===- SupportJsonTest.cpp ------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The shared JSON writer (pretty and inline container modes, escaping,
/// number formatting) and the recursive-descent reader, including
/// round-trips between the two.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/RawOstream.h"

#include <gtest/gtest.h>

#include <functional>

using namespace ade;

namespace {

std::string writeWith(const std::function<void(json::Writer &)> &Fn) {
  std::string Out;
  RawStringOstream OS(Out);
  json::Writer W(OS);
  Fn(W);
  return Out;
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  std::string Out;
  RawStringOstream OS(Out);
  json::escape(OS, "quote \" and\nnewline\ttab\\slash");
  EXPECT_EQ(Out, "quote \\\" and\\nnewline\\ttab\\\\slash");
}

TEST(JsonWriter, InlineObjectMatchesDiagnosticStyle) {
  std::string Out = writeWith([](json::Writer &W) {
    W.beginObject(/*Inline=*/true);
    W.member("severity", "warning").member("line", uint64_t(9));
    W.endObject();
  });
  EXPECT_EQ(Out, "{\"severity\": \"warning\", \"line\": 9}");
}

TEST(JsonWriter, PrettyObjectIndentsMembers) {
  std::string Out = writeWith([](json::Writer &W) {
    W.beginObject();
    W.member("a", uint64_t(1));
    W.key("b").beginArray(/*Inline=*/true);
    W.value(uint64_t(2)).value(uint64_t(3));
    W.endArray();
    W.endObject();
  });
  EXPECT_EQ(Out, "{\n  \"a\": 1,\n  \"b\": [2, 3]\n}");
}

TEST(JsonWriter, EmptyContainers) {
  EXPECT_EQ(writeWith([](json::Writer &W) {
              W.beginArray();
              W.endArray();
            }),
            "[]");
  EXPECT_EQ(writeWith([](json::Writer &W) {
              W.beginObject();
              W.endObject();
            }),
            "{}");
}

TEST(JsonWriter, ScalarVariants) {
  std::string Out = writeWith([](json::Writer &W) {
    W.beginArray(/*Inline=*/true);
    W.value(true).value(false).null();
    W.value(int64_t(-5)).value(uint64_t(5)).value(1.5);
    W.endArray();
  });
  EXPECT_EQ(Out, "[true, false, null, -5, 5, 1.5]");
}

TEST(JsonReader, ParsesNestedDocument) {
  std::string Error;
  auto V = json::parse(
      R"({"name": "ade", "counts": [1, 2, 3], "nested": {"ok": true},
          "pi": 3.25, "none": null})",
      &Error);
  ASSERT_NE(V, nullptr) << Error;
  ASSERT_TRUE(V->isObject());
  EXPECT_EQ(V->find("name")->asString(), "ade");
  const json::Value *Counts = V->find("counts");
  ASSERT_NE(Counts, nullptr);
  ASSERT_TRUE(Counts->isArray());
  ASSERT_EQ(Counts->size(), 3u);
  EXPECT_EQ((*Counts)[2].asUint(), 3u);
  EXPECT_TRUE(V->find("nested")->find("ok")->asBool());
  EXPECT_DOUBLE_EQ(V->find("pi")->asNumber(), 3.25);
  EXPECT_TRUE(V->find("none")->isNull());
  EXPECT_EQ(V->find("missing"), nullptr);
}

TEST(JsonReader, DecodesEscapesAndUnicode) {
  std::string Error;
  auto V = json::parse(R"("tab\tquote\"uA")", &Error);
  ASSERT_NE(V, nullptr) << Error;
  EXPECT_EQ(V->asString(), "tab\tquote\"uA");
}

TEST(JsonReader, RejectsMalformedInput) {
  std::string Error;
  EXPECT_EQ(json::parse("{\"a\": }", &Error), nullptr);
  EXPECT_FALSE(Error.empty());
  EXPECT_EQ(json::parse("[1, 2", &Error), nullptr);
  EXPECT_EQ(json::parse("", &Error), nullptr);
  EXPECT_EQ(json::parse("{\"a\": 1} trailing", &Error), nullptr);
}

TEST(JsonReader, ParsesNegativeAndExponentNumbers) {
  std::string Error;
  auto V = json::parse("[-17, 2.5e2]", &Error);
  ASSERT_NE(V, nullptr) << Error;
  EXPECT_EQ((*V)[0].asInt(), -17);
  EXPECT_DOUBLE_EQ((*V)[1].asNumber(), 250.0);
}

TEST(JsonReader, IntegersAboveDoublePrecisionStayExact) {
  // 2^53 + 1 is the first integer a double cannot represent; profiler
  // counters (and UINT64_MAX sentinels) must survive a JSON round-trip.
  std::string Error;
  auto V = json::parse("[9007199254740993, 18446744073709551615]", &Error);
  ASSERT_NE(V, nullptr) << Error;
  ASSERT_TRUE((*V)[0].isExactUint());
  EXPECT_EQ((*V)[0].asUint(), 9007199254740993u);
  ASSERT_TRUE((*V)[1].isExactUint());
  EXPECT_EQ((*V)[1].asUint(), UINT64_MAX);
}

TEST(JsonReader, IntegerAboveUint64FailsLoudly) {
  // One above UINT64_MAX: must be a parse error, not a silent saturation.
  std::string Error;
  EXPECT_EQ(json::parse("18446744073709551616", &Error), nullptr);
  EXPECT_NE(Error.find("integer overflows uint64"), std::string::npos)
      << Error;
}

TEST(JsonReader, NegativeAndFractionalNumbersUseDoubles) {
  std::string Error;
  auto V = json::parse("[-3, 2.5, 1e3]", &Error);
  ASSERT_NE(V, nullptr) << Error;
  EXPECT_FALSE((*V)[0].isExactUint());
  EXPECT_EQ((*V)[0].asInt(), -3);
  EXPECT_FALSE((*V)[1].isExactUint());
  EXPECT_DOUBLE_EQ((*V)[1].asNumber(), 2.5);
  EXPECT_FALSE((*V)[2].isExactUint());
  EXPECT_DOUBLE_EQ((*V)[2].asNumber(), 1000.0);
}

TEST(JsonRoundTrip, Uint64BoundaryValuesRoundTrip) {
  std::string Out = writeWith([](json::Writer &W) {
    W.beginArray(/*Inline=*/true);
    W.value(uint64_t(9007199254740993u)).value(UINT64_MAX);
    W.endArray();
  });
  std::string Error;
  auto V = json::parse(Out, &Error);
  ASSERT_NE(V, nullptr) << Error;
  EXPECT_EQ((*V)[0].asUint(), 9007199254740993u);
  EXPECT_EQ((*V)[1].asUint(), UINT64_MAX);
}

TEST(JsonRoundTrip, WriterOutputParsesBack) {
  std::string Out = writeWith([](json::Writer &W) {
    W.beginObject();
    W.member("text", "line\nbreak \"quoted\"");
    W.key("values").beginArray(/*Inline=*/true);
    for (uint64_t I = 0; I != 4; ++I)
      W.value(I * 1000);
    W.endArray();
    W.key("inner").beginObject(/*Inline=*/true);
    W.member("flag", true);
    W.endObject();
    W.endObject();
  });
  std::string Error;
  auto V = json::parse(Out, &Error);
  ASSERT_NE(V, nullptr) << Error;
  EXPECT_EQ(V->find("text")->asString(), "line\nbreak \"quoted\"");
  EXPECT_EQ((*V->find("values"))[3].asUint(), 3000u);
  EXPECT_TRUE(V->find("inner")->find("flag")->asBool());
}

} // namespace
