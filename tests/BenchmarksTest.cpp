//===- BenchmarksTest.cpp -------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end validation of the 16 evaluation programs: every benchmark
/// parses, verifies, transforms under every configuration, and produces
/// the same checksum under all of them (the differential-correctness
/// property that underwrites the paper reproduction). Runs at a small
/// input scale to stay fast.
///
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "ir/IR.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace ade;
using namespace ade::bench;

namespace {

class BenchmarkSuiteTest
    : public ::testing::TestWithParam<const BenchmarkSpec *> {};

TEST_P(BenchmarkSuiteTest, ParsesAndVerifies) {
  const BenchmarkSpec &B = *GetParam();
  auto M = parser::parseModuleOrDie(B.Source);
  EXPECT_NE(M->getFunction("build"), nullptr);
  EXPECT_NE(M->getFunction("kernel"), nullptr);
}

TEST_P(BenchmarkSuiteTest, ChecksumInvariantAcrossConfigs) {
  const BenchmarkSpec &B = *GetParam();
  RunOptions Options;
  Options.ScalePercent = 4;
  RunResult Baseline = runBenchmark(B, Config::Memoir, Options);
  // A trivial checksum would make the differential test vacuous.
  EXPECT_NE(Baseline.Checksum, 0u) << B.Abbrev;
  for (Config C : {Config::Ade, Config::AdeNoRTE, Config::AdeNoProp,
                   Config::AdeNoShare, Config::MemoirSwiss,
                   Config::AdeSwiss, Config::AdeSparse}) {
    RunResult R = runBenchmark(B, C, Options);
    EXPECT_EQ(R.Checksum, Baseline.Checksum)
        << B.Abbrev << " under " << configName(C);
  }
}

TEST_P(BenchmarkSuiteTest, BaselineAccessesAreSparse) {
  const BenchmarkSpec &B = *GetParam();
  RunOptions Options;
  Options.ScalePercent = 3;
  RunResult R = runBenchmark(B, Config::Memoir, Options);
  // The MEMOIR baseline uses hash implementations throughout: no dense
  // accesses anywhere (Table II's MEMOIR columns).
  EXPECT_EQ(R.Stats.Dense, 0u) << B.Abbrev;
  EXPECT_GT(R.Stats.Sparse, 0u) << B.Abbrev;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, BenchmarkSuiteTest,
    ::testing::ValuesIn([] {
      std::vector<const BenchmarkSpec *> Ptrs;
      for (const BenchmarkSpec &B : allBenchmarks())
        Ptrs.push_back(&B);
      return Ptrs;
    }()),
    [](const ::testing::TestParamInfo<const BenchmarkSpec *> &Info) {
      return Info.param->Abbrev;
    });

TEST(Benchmarks, RegistryHasSixteenPrograms) {
  EXPECT_EQ(allBenchmarks().size(), 16u);
  EXPECT_NE(findBenchmark("BFS"), nullptr);
  EXPECT_NE(findBenchmark("PTA"), nullptr);
  EXPECT_EQ(findBenchmark("nope"), nullptr);
}

TEST(Benchmarks, AdeEliminatesSparseAccessesOnBfs) {
  // The headline Table II row: BFS goes from 100% sparse to ~3% sparse.
  RunOptions Options;
  Options.ScalePercent = 4;
  const BenchmarkSpec *B = findBenchmark("BFS");
  ASSERT_NE(B, nullptr);
  RunResult Base = runBenchmark(*B, Config::Memoir, Options);
  RunResult Ade = runBenchmark(*B, Config::Ade, Options);
  EXPECT_LT(Ade.Stats.Sparse, Base.Stats.Sparse / 2) << "sparse accesses";
  EXPECT_GT(Ade.Stats.Dense, 0u);
}

TEST(Benchmarks, PtaInnerNoShareSplitsEnumerations) {
  // RQ4: the noshare directive detaches the inner points-to sets.
  RunOptions Options;
  Options.ScalePercent = 60;
  const BenchmarkSpec *B = findBenchmark("PTA");
  ASSERT_NE(B, nullptr);
  RunResult Default = runBenchmark(*B, Config::Ade, Options);
  RunOptions Tuned = Options;
  Tuned.PtaInnerPragma = "#pragma ade enumerate noshare";
  RunResult NoShare = runBenchmark(*B, Config::Ade, Tuned);
  EXPECT_EQ(Default.Checksum, NoShare.Checksum);
  // The tuned version allocates far smaller inner bitsets.
  EXPECT_LT(NoShare.PeakBytes, Default.PeakBytes);
}

TEST(Benchmarks, WorkloadsAreDeterministic) {
  for (const BenchmarkSpec &B : allBenchmarks()) {
    Workload W1 = B.MakeInput(5);
    Workload W2 = B.MakeInput(5);
    EXPECT_EQ(W1.A, W2.A) << B.Abbrev;
    EXPECT_EQ(W1.B, W2.B) << B.Abbrev;
    EXPECT_EQ(W1.C, W2.C) << B.Abbrev;
  }
}

TEST(Benchmarks, ScaleChangesInputSize) {
  const BenchmarkSpec *B = findBenchmark("CC");
  ASSERT_NE(B, nullptr);
  EXPECT_LT(B->MakeInput(5).A.size(), B->MakeInput(50).A.size());
}

} // namespace
