//===- SupportHistogramTest.cpp -------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"
#include "support/Json.h"
#include "support/Random.h"
#include "support/RawOstream.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

using ade::Histogram;
using ade::Rng;

namespace {

TEST(Histogram, EmptyIsZeroEverywhere) {
  Histogram H;
  EXPECT_TRUE(H.empty());
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.quantile(0.5), 0u);
  EXPECT_EQ(H.p999(), 0u);
}

TEST(Histogram, SmallValuesAreExact) {
  // Values below 2^b land in unit buckets, so every quantile is exact.
  Histogram H(5);
  for (uint64_t V = 0; V != 32; ++V)
    H.record(V);
  EXPECT_EQ(H.count(), 32u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 31u);
  EXPECT_EQ(H.quantile(0.5), 15u);
  EXPECT_EQ(H.quantile(1.0), 31u);
  EXPECT_EQ(H.quantile(0.0), 0u);
}

TEST(Histogram, BucketIndexRoundTrips) {
  Histogram H(5);
  Rng R(11);
  for (int I = 0; I != 20000; ++I) {
    uint64_t V = R.next() >> R.nextBelow(64);
    size_t Index = H.bucketIndex(V);
    EXPECT_LE(H.bucketLo(Index), V);
    EXPECT_GE(H.bucketHi(Index), V);
    uint64_t Mid = H.bucketMid(Index);
    EXPECT_LE(H.bucketLo(Index), Mid);
    EXPECT_GE(H.bucketHi(Index), Mid);
  }
  // Extremes.
  EXPECT_EQ(H.bucketIndex(0), 0u);
  size_t Top = H.bucketIndex(UINT64_MAX);
  EXPECT_LE(H.bucketLo(Top), UINT64_MAX);
  EXPECT_GE(H.bucketHi(Top), UINT64_MAX - H.bucketLo(Top));
}

/// Property: every queried percentile is within the configured relative
/// error of the exact order statistic computed from the raw samples.
void checkQuantileErrorBound(unsigned Bits, uint64_t Seed, int N) {
  Histogram H(Bits);
  Rng R(Seed);
  std::vector<uint64_t> Samples;
  Samples.reserve(N);
  for (int I = 0; I != N; ++I) {
    // Mix magnitudes: shifting by a random amount spreads samples over
    // many power-of-two ranges instead of clustering near 2^64.
    uint64_t V = R.next() >> R.nextBelow(60);
    Samples.push_back(V);
    H.record(V);
  }
  std::sort(Samples.begin(), Samples.end());
  for (double Q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    uint64_t Rank = uint64_t(std::ceil(Q * double(N)));
    if (Rank == 0)
      Rank = 1;
    uint64_t Exact = Samples[Rank - 1];
    uint64_t Got = H.quantile(Q);
    double Tolerance = double(Exact) * H.relativeError() + 1;
    EXPECT_LE(std::abs(double(Got) - double(Exact)), Tolerance)
        << "bits=" << Bits << " q=" << Q << " exact=" << Exact
        << " got=" << Got;
  }
}

TEST(Histogram, QuantileDegenerateArguments) {
  // Out-of-range and unordered quantile arguments must degrade, never
  // hit UB: NaN and negatives clamp to the minimum, Q > 1 to the
  // maximum.
  Histogram H(5);
  for (uint64_t V : {10u, 20u, 30u, 40u})
    H.record(V);
  EXPECT_EQ(H.quantile(std::nan("")), H.quantile(0.0));
  EXPECT_EQ(H.quantile(-0.5), H.quantile(0.0));
  EXPECT_EQ(H.quantile(2.0), H.quantile(1.0));
  EXPECT_EQ(H.quantile(0.0), 10u);
  EXPECT_EQ(H.quantile(1.0), 40u);
}

TEST(Histogram, QuantileSingleSample) {
  // With one sample every quantile is that sample, exactly — the bucket
  // midpoint must clamp to the recorded extrema.
  Histogram H(3);
  H.record(123456789);
  for (double Q : {0.0, 0.001, 0.5, 0.999, 1.0})
    EXPECT_EQ(H.quantile(Q), 123456789u) << Q;
}

TEST(Histogram, QuantileIdenticalSamplesAreExact) {
  // Many copies of one large value: the coarse bucket's midpoint lies
  // off the value, but clamping to [min, max] recovers it exactly.
  Histogram H(2);
  for (int I = 0; I != 1000; ++I)
    H.record(1u << 30);
  for (double Q : {0.0, 0.25, 0.5, 0.99, 1.0})
    EXPECT_EQ(H.quantile(Q), 1u << 30) << Q;
}

TEST(Histogram, QuantileErrorBoundProperty) {
  for (unsigned Bits : {3u, 5u, 8u})
    for (uint64_t Seed : {1u, 42u, 1234u})
      checkQuantileErrorBound(Bits, Seed, 5000);
}

TEST(Histogram, QuantileErrorBoundSkewedSamples) {
  // Latency-shaped data: a tight cluster plus a long tail.
  Histogram H(5);
  Rng R(99);
  std::vector<uint64_t> Samples;
  for (int I = 0; I != 10000; ++I) {
    uint64_t V = 100 + R.nextBelow(50);
    if (R.nextBelow(100) == 0)
      V = 100000 + R.nextBelow(900000);
    Samples.push_back(V);
    H.record(V);
  }
  std::sort(Samples.begin(), Samples.end());
  for (double Q : {0.5, 0.9, 0.99, 0.999}) {
    uint64_t Rank = uint64_t(std::ceil(Q * double(Samples.size())));
    uint64_t Exact = Samples[Rank - 1];
    uint64_t Got = H.quantile(Q);
    EXPECT_LE(std::abs(double(Got) - double(Exact)),
              double(Exact) * H.relativeError() + 1);
  }
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  Rng R(7);
  Histogram A(5), B(5), Combined(5);
  for (int I = 0; I != 3000; ++I) {
    uint64_t V = R.next() >> R.nextBelow(50);
    (I % 2 ? A : B).record(V);
    Combined.record(V);
  }
  Histogram Merged(5);
  Merged.merge(A);
  Merged.merge(B);
  EXPECT_TRUE(Merged == Combined);
  EXPECT_EQ(Merged.count(), Combined.count());
  EXPECT_EQ(Merged.sum(), Combined.sum());
  EXPECT_EQ(Merged.p99(), Combined.p99());
}

TEST(Histogram, MergeAssociativity) {
  Rng R(21);
  Histogram Parts[3] = {Histogram(5), Histogram(5), Histogram(5)};
  for (int I = 0; I != 4000; ++I)
    Parts[R.nextBelow(3)].record(R.next() >> R.nextBelow(48));

  // (a ⊎ b) ⊎ c
  Histogram Left(5);
  Left.merge(Parts[0]);
  Left.merge(Parts[1]);
  Left.merge(Parts[2]);
  // a ⊎ (b ⊎ c)
  Histogram BC(5);
  BC.merge(Parts[1]);
  BC.merge(Parts[2]);
  Histogram Right(5);
  Right.merge(Parts[0]);
  Right.merge(BC);

  EXPECT_TRUE(Left == Right);
  for (double Q : {0.5, 0.9, 0.99, 0.999})
    EXPECT_EQ(Left.quantile(Q), Right.quantile(Q));
}

TEST(Histogram, MergeEmptyIsIdentity) {
  Histogram A(5), Empty(5);
  A.record(17);
  A.record(9000);
  Histogram Before = A;
  A.merge(Empty);
  EXPECT_TRUE(A == Before);
  Empty.merge(A);
  EXPECT_TRUE(Empty == Before);
}

TEST(Histogram, JsonRoundTrip) {
  Rng R(31);
  Histogram H(5);
  for (int I = 0; I != 2000; ++I)
    H.record(R.next() >> R.nextBelow(55));
  H.record(0);
  H.record(UINT64_MAX);

  std::string Text;
  {
    ade::RawStringOstream OS(Text);
    ade::json::Writer W(OS);
    H.writeJson(W);
  }
  std::string Error;
  auto Doc = ade::json::parse(Text, &Error);
  ASSERT_TRUE(Doc) << Error;

  Histogram Back;
  ASSERT_TRUE(Histogram::fromJson(*Doc, Back, &Error)) << Error;
  EXPECT_TRUE(Back == H);
  EXPECT_EQ(Back.count(), H.count());
  EXPECT_EQ(Back.sum(), H.sum());
  EXPECT_EQ(Back.min(), H.min());
  EXPECT_EQ(Back.max(), H.max());
  for (double Q : {0.5, 0.9, 0.99, 0.999})
    EXPECT_EQ(Back.quantile(Q), H.quantile(Q));
}

TEST(Histogram, FromJsonRejectsMalformed) {
  std::string Error;
  auto Check = [&](const char *Text) {
    auto Doc = ade::json::parse(Text, &Error);
    ASSERT_TRUE(Doc) << Error;
    Histogram H;
    EXPECT_FALSE(Histogram::fromJson(*Doc, H, &Error));
    EXPECT_FALSE(Error.empty());
  };
  Check("[]");
  Check("{}");
  Check("{\"b\": 5}");
  Check("{\"b\": 5, \"buckets\": [[1]]}");
  Check("{\"b\": 5, \"count\": 99, \"buckets\": [[1, 2]]}");
}

TEST(Histogram, RecordWithWeight) {
  Histogram A(5), B(5);
  for (int I = 0; I != 10; ++I)
    A.record(42);
  B.record(42, 10);
  EXPECT_TRUE(A == B);
}

} // namespace
