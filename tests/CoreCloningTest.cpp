//===- CoreCloningTest.cpp ------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// SIII-F function cloning: the deep-copy utility, and the pre-pass that
/// clones callees whose call sites disagree on transformability so that
/// the clean call sites can still be enumerated.
///
//===----------------------------------------------------------------------===//

#include "core/Cloning.h"
#include "core/Pipeline.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace ade;
using namespace ade::core;
using namespace ade::interp;
using namespace ade::ir;

namespace {

TEST(Cloning, CloneFunctionIsFaithful) {
  auto M = parser::parseModuleOrDie(R"(fn @work(%s: Set<u64>, %n: u64) -> u64 {
  %zero = const 0 : u64
  forrange %zero, %n -> [%i] {
    insert %s, %i
    yield
  }
  %total = foreach %s -> [%k] iter(%acc = %zero) {
    %h = has %s, %k
    %one = const 1 : u64
    %inc = select %h, %one, %zero
    %next = add %acc, %inc
    yield %next
  }
  ret %total
})");
  Function *Orig = M->getFunction("work");
  Function *Clone = cloneFunction(*M, *Orig, "work.copy");
  std::vector<std::string> Errors;
  ASSERT_TRUE(verifyModule(*M, Errors)) << Errors[0];
  // Structurally identical modulo the name.
  std::string OrigText = toString(*Orig);
  std::string CloneText = toString(*Clone);
  size_t NamePos = CloneText.find("work.copy");
  ASSERT_NE(NamePos, std::string::npos);
  CloneText.replace(NamePos, 9, "work");
  EXPECT_EQ(OrigText, CloneText);
  // Behaviorally identical.
  Interpreter I(*M);
  auto *SetA = I.newCollection(M->types().setTy(M->types().intTy(64, false)));
  auto *SetB = I.newCollection(M->types().setTy(M->types().intTy(64, false)));
  EXPECT_EQ(I.callByName("work", {Interpreter::collToBits(SetA), 20}),
            I.callByName("work.copy", {Interpreter::collToBits(SetB), 20}));
}

TEST(Cloning, CloneCopiesDirectives) {
  auto M = parser::parseModuleOrDie(R"(fn @f() -> u64 {
  #pragma ade enumerate select(FlatSet)
  %s = new Set<u64>
  %k = const 1 : u64
  insert %s, %k
  %n = size %s
  ret %n
})");
  Function *Clone = cloneFunction(*M, *M->getFunction("f"), "f.copy");
  const Directive *D = Clone->body().inst(0)->directive();
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Select, Selection::FlatSet);
  EXPECT_EQ(D->EnumerateMode, Directive::Enumerate::Force);
}

/// A callee used from one enumerable call site and one escaping call site.
const char *MixedSrc = R"(extern fn @leak(Set<u64>)
fn @fill(%s: Set<u64>, %n: u64) {
  %zero = const 0 : u64
  forrange %zero, %n -> [%i] {
    insert %s, %i
    yield
  }
  ret
}
fn @main() -> u64 {
  %clean = new Set<u64>
  %dirty = new Set<u64>
  %n = const 200 : u64
  call @fill(%clean, %n)
  call @fill(%dirty, %n)
  call @leak(%dirty)
  %zero = const 0 : u64
  %one = const 1 : u64
  %total = foreach %clean -> [%k] iter(%acc = %zero) {
    %h = has %clean, %k
    %inc = select %h, %one, %zero
    %next = add %acc, %inc
    yield %next
  }
  %d = size %dirty
  %r = add %total, %d
  ret %r
})";

TEST(Cloning, MixedCallersGetSplit) {
  auto M = parser::parseModuleOrDie(MixedSrc);
  EXPECT_EQ(cloneForMixedCallers(*M), 1u);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors)) << Errors[0];
  // One of the two @fill call sites was retargeted to a clone.
  std::string Text = toString(*M);
  EXPECT_NE(Text.find("fill.ade_clone"), std::string::npos) << Text;
}

TEST(Cloning, EnablesEnumerationDespiteEscapingSibling) {
  // Without cloning, @fill's parameter merges %clean with the escaping
  // %dirty and nothing is enumerated.
  auto MNoClone = parser::parseModuleOrDie(MixedSrc);
  PipelineConfig NoClone;
  NoClone.EnableCloning = false;
  PipelineResult RNoClone = runADE(*MNoClone, NoClone);
  EXPECT_EQ(RNoClone.Transform.EnumerationsCreated, 0u);
  // With cloning, the clean call path gets its own copy and enumerates.
  auto M = parser::parseModuleOrDie(MixedSrc);
  PipelineResult R = runADE(*M);
  EXPECT_EQ(R.FunctionsCloned, 1u);
  EXPECT_EQ(R.Transform.EnumerationsCreated, 1u);
  std::string Text = toString(*M);
  EXPECT_NE(Text.find("Set{BitSet}<idx>"), std::string::npos) << Text;
  // The escaping set keeps its original type everywhere.
  EXPECT_NE(Text.find("call @leak"), std::string::npos);
}

TEST(Cloning, SemanticsPreserved) {
  auto Run = [&](bool WithAde, bool WithCloning) {
    auto M = parser::parseModuleOrDie(MixedSrc);
    if (WithAde) {
      PipelineConfig Config;
      Config.EnableCloning = WithCloning;
      runADE(*M, Config);
    }
    Interpreter I(*M);
    return I.callByName("main", {});
  };
  uint64_t Baseline = Run(false, false);
  EXPECT_EQ(Baseline, 400u);
  EXPECT_EQ(Run(true, true), Baseline);
  EXPECT_EQ(Run(true, false), Baseline);
}

TEST(Cloning, AgreeingCallersAreNotSplit) {
  // Two call sites passing the same (enumerable) collection: no clone.
  auto M = parser::parseModuleOrDie(R"(fn @touch(%s: Set<u64>) {
  %k = const 3 : u64
  insert %s, %k
  ret
}
fn @main() -> u64 {
  %s = new Set<u64>
  call @touch(%s)
  call @touch(%s)
  %n = size %s
  ret %n
})");
  EXPECT_EQ(cloneForMixedCallers(*M), 0u);
}

TEST(Cloning, RecursiveCalleesAreLeftAlone) {
  auto M = parser::parseModuleOrDie(R"(extern fn @leak(Set<u64>)
fn @rec(%s: Set<u64>, %n: u64) {
  %zero = const 0 : u64
  %done = eq %n, %zero
  if %done {
    yield
  } else {
    insert %s, %n
    %one = const 1 : u64
    %m = sub %n, %one
    call @rec(%s, %m)
    yield
  }
  ret
}
fn @main() -> u64 {
  %a = new Set<u64>
  %b = new Set<u64>
  %n = const 5 : u64
  call @rec(%a, %n)
  call @rec(%b, %n)
  call @leak(%b)
  %r = size %a
  ret %r
})");
  EXPECT_EQ(cloneForMixedCallers(*M), 0u);
  // Still runs correctly through the full pipeline.
  runADE(*M);
  Interpreter I(*M);
  EXPECT_EQ(I.callByName("main", {}), 5u);
}

} // namespace
