//===- CollectionsSetTest.cpp ---------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Differential tests of every set implementation of Table I against
/// std::set, plus implementation-specific behaviors. The typed suite runs
/// identical workloads over all five set kinds; the parameterized suite
/// sweeps workload shapes (size, key range, operation mix).
///
//===----------------------------------------------------------------------===//

#include "collections/BitSet.h"
#include "collections/FlatSet.h"
#include "collections/HashSet.h"
#include "collections/RoaringBitSet.h"
#include "collections/SwissSet.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

using namespace ade;

namespace {

template <typename SetT> class SetApiTest : public ::testing::Test {};

using SetTypes = ::testing::Types<HashSet<uint64_t>, SwissSet<uint64_t>,
                                  FlatSet<uint64_t>, BitSet, RoaringBitSet>;
TYPED_TEST_SUITE(SetApiTest, SetTypes);

TYPED_TEST(SetApiTest, StartsEmpty) {
  TypeParam Set;
  EXPECT_TRUE(Set.empty());
  EXPECT_EQ(Set.size(), 0u);
  EXPECT_FALSE(Set.contains(0));
  EXPECT_FALSE(Set.contains(12345));
}

TYPED_TEST(SetApiTest, InsertIsIdempotent) {
  TypeParam Set;
  EXPECT_TRUE(Set.insert(42));
  EXPECT_FALSE(Set.insert(42));
  EXPECT_EQ(Set.size(), 1u);
  EXPECT_TRUE(Set.contains(42));
}

TYPED_TEST(SetApiTest, RemoveReportsPresence) {
  TypeParam Set;
  Set.insert(7);
  EXPECT_FALSE(Set.remove(8));
  EXPECT_TRUE(Set.remove(7));
  EXPECT_FALSE(Set.remove(7));
  EXPECT_TRUE(Set.empty());
}

TYPED_TEST(SetApiTest, ClearEmptiesAndAllowsReuse) {
  TypeParam Set;
  for (uint64_t I = 0; I != 100; ++I)
    Set.insert(I * 3);
  Set.clear();
  EXPECT_TRUE(Set.empty());
  EXPECT_FALSE(Set.contains(3));
  EXPECT_TRUE(Set.insert(3));
  EXPECT_EQ(Set.size(), 1u);
}

TYPED_TEST(SetApiTest, ForEachVisitsExactlyMembers) {
  TypeParam Set;
  std::set<uint64_t> Expected;
  Rng R(11);
  for (int I = 0; I != 300; ++I) {
    uint64_t Key = R.nextBelow(1000);
    Set.insert(Key);
    Expected.insert(Key);
  }
  std::multiset<uint64_t> Visited;
  Set.forEach([&](uint64_t Key) { Visited.insert(Key); });
  EXPECT_EQ(Visited.size(), Expected.size()); // No duplicates.
  EXPECT_TRUE(std::equal(Expected.begin(), Expected.end(), Visited.begin(),
                         Visited.end()));
}

TYPED_TEST(SetApiTest, UnionWithMatchesSetUnion) {
  TypeParam A, B;
  std::set<uint64_t> RefA, RefB;
  Rng R(13);
  for (int I = 0; I != 200; ++I) {
    uint64_t KA = R.nextBelow(500), KB = R.nextBelow(500);
    A.insert(KA);
    RefA.insert(KA);
    B.insert(KB);
    RefB.insert(KB);
  }
  A.unionWith(B);
  RefA.insert(RefB.begin(), RefB.end());
  EXPECT_EQ(A.size(), RefA.size());
  for (uint64_t Key : RefA)
    EXPECT_TRUE(A.contains(Key)) << Key;
}

TYPED_TEST(SetApiTest, UnionWithEmptyIsNoop) {
  TypeParam A, B;
  A.insert(1);
  A.insert(2);
  A.unionWith(B);
  EXPECT_EQ(A.size(), 2u);
  B.unionWith(A);
  EXPECT_EQ(B.size(), 2u);
  EXPECT_TRUE(B.contains(1));
  EXPECT_TRUE(B.contains(2));
}

TYPED_TEST(SetApiTest, SelfUnionIsIdentity) {
  // Regression (found by ade-fuzz): hash-based implementations used to
  // traverse Other while inserting, so s.unionWith(s) could rehash the
  // table out from under its own iteration.
  TypeParam A;
  for (uint64_t Key = 0; Key != 100; ++Key)
    A.insert(Key * 3);
  A.unionWith(A);
  EXPECT_EQ(A.size(), 100u);
  for (uint64_t Key = 0; Key != 100; ++Key)
    EXPECT_TRUE(A.contains(Key * 3)) << Key;
}

TYPED_TEST(SetApiTest, MemoryBytesGrowsWithContent) {
  TypeParam Set;
  size_t Empty = Set.memoryBytes();
  for (uint64_t I = 0; I != 4096; ++I)
    Set.insert(I);
  EXPECT_GT(Set.memoryBytes(), Empty);
}

/// Workload shape for the randomized differential sweep.
struct Workload {
  const char *Name;
  size_t Ops;
  uint64_t KeyRange;
  double InsertP; // Remainder splits evenly between remove and query.
};

class SetDifferentialTest : public ::testing::TestWithParam<Workload> {};

template <typename SetT>
void runDifferential(const Workload &W, uint64_t Seed) {
  SetT Set;
  std::set<uint64_t> Ref;
  Rng R(Seed);
  for (size_t I = 0; I != W.Ops; ++I) {
    uint64_t Key = R.nextBelow(W.KeyRange);
    double Dice = R.nextDouble();
    if (Dice < W.InsertP) {
      EXPECT_EQ(Set.insert(Key), Ref.insert(Key).second);
    } else if (Dice < W.InsertP + (1 - W.InsertP) / 2) {
      EXPECT_EQ(Set.remove(Key), Ref.erase(Key) != 0);
    } else {
      EXPECT_EQ(Set.contains(Key), Ref.count(Key) != 0);
    }
    ASSERT_EQ(Set.size(), Ref.size()) << "op " << I;
  }
  // Final full-content check, in sorted order where supported.
  std::vector<uint64_t> Contents;
  Set.forEach([&](uint64_t Key) { Contents.push_back(Key); });
  std::sort(Contents.begin(), Contents.end());
  EXPECT_TRUE(std::equal(Contents.begin(), Contents.end(), Ref.begin(),
                         Ref.end()));
}

TEST_P(SetDifferentialTest, HashSet) {
  runDifferential<HashSet<uint64_t>>(GetParam(), 101);
}
TEST_P(SetDifferentialTest, SwissSet) {
  runDifferential<SwissSet<uint64_t>>(GetParam(), 102);
}
TEST_P(SetDifferentialTest, FlatSet) {
  runDifferential<FlatSet<uint64_t>>(GetParam(), 103);
}
TEST_P(SetDifferentialTest, BitSet) {
  runDifferential<BitSet>(GetParam(), 104);
}
TEST_P(SetDifferentialTest, RoaringBitSet) {
  runDifferential<RoaringBitSet>(GetParam(), 105);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SetDifferentialTest,
    ::testing::Values(
        Workload{"tiny_dense", 500, 16, 0.6},
        Workload{"small_churn", 2000, 128, 0.4},
        Workload{"medium_sparse", 5000, 1u << 20, 0.7},
        Workload{"grow_only", 3000, 1u << 16, 1.0},
        Workload{"query_heavy", 4000, 4096, 0.2},
        Workload{"remove_heavy", 4000, 256, 0.34}),
    [](const ::testing::TestParamInfo<Workload> &Info) {
      return Info.param.Name;
    });

// BitSet-specific behavior.

TEST(BitSetImpl, UniverseGrowsToLargestKey) {
  BitSet Set;
  Set.insert(1000);
  EXPECT_GE(Set.universeSize(), 1001u);
  EXPECT_LT(Set.universeSize(), 1000u + 64u);
  // Storage is k bits (Table I), independent of cardinality.
  EXPECT_EQ(Set.size(), 1u);
}

TEST(BitSetImpl, IterationIsOrdered) {
  BitSet Set;
  for (uint64_t Key : {900u, 3u, 64u, 65u, 1u})
    Set.insert(Key);
  std::vector<uint64_t> Order;
  Set.forEach([&](uint64_t Key) { Order.push_back(Key); });
  EXPECT_TRUE(std::is_sorted(Order.begin(), Order.end()));
  EXPECT_EQ(Order.size(), 5u);
}

TEST(BitSetImpl, IntersectWith) {
  BitSet A, B;
  for (uint64_t I = 0; I != 100; ++I)
    A.insert(I * 2); // Evens below 200.
  for (uint64_t I = 0; I != 100; ++I)
    B.insert(I * 3); // Multiples of 3 below 300.
  A.intersectWith(B);
  EXPECT_EQ(A.size(), 34u); // Multiples of 6 in [0, 200): 0, 6, ..., 198.
  EXPECT_TRUE(A.contains(6));
  EXPECT_FALSE(A.contains(2));
}

TEST(BitSetImpl, EqualityIgnoresUniverseTail) {
  BitSet A, B;
  A.insert(5);
  B.insert(5);
  B.insert(1000);
  B.remove(1000); // B has a larger universe but identical contents.
  EXPECT_TRUE(A == B);
}

TEST(BitSetImpl, EqualityIsSymmetricAcrossWordSizes) {
  BitSet A, B;
  A.insert(5);
  B.insert(5);
  B.insert(1000);
  B.remove(1000); // Same contents, different Words.size().
  EXPECT_TRUE(B == A); // Longer side on the left must also verify tails.
  EXPECT_TRUE(A == B);
  B.insert(999); // A member in a word A does not even have.
  EXPECT_FALSE(A == B);
  EXPECT_FALSE(B == A);
}

TEST(BitSetImpl, SelfUnionIsIdentity) {
  BitSet A;
  for (uint64_t Key : {1u, 64u, 999u})
    A.insert(Key);
  A.unionWith(A);
  EXPECT_EQ(A.size(), 3u);
  EXPECT_TRUE(A.contains(1));
  EXPECT_TRUE(A.contains(64));
  EXPECT_TRUE(A.contains(999));
}

TEST(BitSetImpl, SelfIntersectIsIdentity) {
  BitSet A;
  for (uint64_t Key : {1u, 64u, 999u})
    A.insert(Key);
  A.intersectWith(A);
  EXPECT_EQ(A.size(), 3u);
  EXPECT_TRUE(A.contains(1));
  EXPECT_TRUE(A.contains(64));
  EXPECT_TRUE(A.contains(999));
}

TEST(BitSetImpl, IntersectShrinkKeepsMemoryAccountingConsistent) {
  BitSet A, B;
  for (uint64_t Key = 0; Key != 10000; Key += 2)
    A.insert(Key);
  B.insert(10);
  uint64_t TrackedBefore = MemoryTracker::instance().currentBytes();
  size_t BytesBefore = A.memoryBytes();
  A.intersectWith(B);
  EXPECT_EQ(A.size(), 1u);
  // The word vector logically shrinks to B's length but retains its
  // capacity, so the collection's reported bytes and the global tracker
  // must both be unchanged (no hidden free the tracker never saw).
  EXPECT_EQ(A.memoryBytes(), BytesBefore);
  EXPECT_EQ(MemoryTracker::instance().currentBytes(), TrackedBefore);
}

TEST(BitSetImpl, ReserveGrowsUniverseWithoutMembers) {
  BitSet A;
  A.reserve(1000);
  EXPECT_GE(A.universeSize(), 1000u);
  EXPECT_EQ(A.size(), 0u);
  size_t Bytes = A.memoryBytes();
  for (uint64_t Key = 0; Key != 1000; ++Key)
    A.insert(Key);
  EXPECT_EQ(A.memoryBytes(), Bytes); // No growth past the reservation.
}

// FlatSet-specific behavior.

TEST(FlatSetImpl, IterationIsSortedAndContiguous) {
  FlatSet<uint64_t> Set;
  for (uint64_t Key : {9u, 1u, 5u, 3u})
    Set.insert(Key);
  std::vector<uint64_t> Order(Set.begin(), Set.end());
  EXPECT_EQ(Order, (std::vector<uint64_t>{1, 3, 5, 9}));
}

TEST(FlatSetImpl, IntersectWith) {
  FlatSet<uint64_t> A, B;
  for (uint64_t I = 0; I != 10; ++I)
    A.insert(I);
  for (uint64_t I = 5; I != 15; ++I)
    B.insert(I);
  A.intersectWith(B);
  EXPECT_EQ(A.size(), 5u);
  EXPECT_TRUE(A.contains(5));
  EXPECT_FALSE(A.contains(4));
}

// SwissSet-specific behavior: tombstone reuse must not lose keys or leak
// growth.

TEST(SwissSetImpl, HeavyChurnKeepsTableConsistent) {
  SwissSet<uint64_t> Set;
  std::set<uint64_t> Ref;
  Rng R(77);
  for (int Round = 0; Round != 50; ++Round) {
    for (uint64_t I = 0; I != 64; ++I) {
      uint64_t Key = R.nextBelow(128);
      Set.insert(Key);
      Ref.insert(Key);
    }
    for (uint64_t I = 0; I != 64; ++I) {
      uint64_t Key = R.nextBelow(128);
      EXPECT_EQ(Set.remove(Key), Ref.erase(Key) != 0);
    }
    ASSERT_EQ(Set.size(), Ref.size());
    for (uint64_t Key = 0; Key != 128; ++Key)
      ASSERT_EQ(Set.contains(Key), Ref.count(Key) != 0) << Key;
  }
}

// Regression test: clear() used to shrink the table to its initial
// capacity, so a cleared-and-refilled table replayed its entire
// growth-rehash chain on every cycle. A cleared table must accept the
// same working set again without a single further rehash.
TEST(SwissSetImpl, ClearRetainsCapacityAcrossRefillCycles) {
  SwissSet<uint64_t> Set;
  auto Fill = [&Set] {
    for (uint64_t I = 0; I != 2000; ++I)
      Set.insert(I * 2654435761u);
  };
  Fill();
  uint64_t RehashesAfterFirstFill = Set.rehashCount();
  for (int Cycle = 0; Cycle != 5; ++Cycle) {
    Set.clear();
    EXPECT_TRUE(Set.empty());
    EXPECT_FALSE(Set.contains(2654435761u));
    Fill();
    ASSERT_EQ(Set.size(), 2000u);
  }
  EXPECT_EQ(Set.rehashCount(), RehashesAfterFirstFill);
}

TEST(SwissSetImpl, ReservePresizesWithoutFurtherRehashes) {
  SwissSet<uint64_t> Set;
  Set.reserve(5000);
  uint64_t RehashesAfterReserve = Set.rehashCount();
  for (uint64_t I = 0; I != 5000; ++I)
    Set.insert(I * 2654435761u);
  EXPECT_EQ(Set.size(), 5000u);
  EXPECT_EQ(Set.rehashCount(), RehashesAfterReserve);
}

TEST(HashSetImpl, ReservePresizesWithoutFurtherRehashes) {
  HashSet<uint64_t> Set;
  Set.reserve(5000);
  uint64_t RehashesAfterReserve = Set.rehashCount();
  for (uint64_t I = 0; I != 5000; ++I)
    Set.insert(I);
  EXPECT_EQ(Set.size(), 5000u);
  EXPECT_EQ(Set.rehashCount(), RehashesAfterReserve);
}

TEST(SwissSetImpl, LargeInsertionRehashes) {
  SwissSet<uint64_t> Set;
  for (uint64_t I = 0; I != 100000; ++I)
    Set.insert(I * 2654435761u);
  EXPECT_EQ(Set.size(), 100000u);
  for (uint64_t I = 0; I != 100000; ++I)
    ASSERT_TRUE(Set.contains(I * 2654435761u)) << I;
}

// HashSet copy/move semantics used by the runtime wrappers.

TEST(HashSetImpl, CopyIsDeep) {
  HashSet<uint64_t> A;
  A.insert(1);
  HashSet<uint64_t> B = A;
  B.insert(2);
  EXPECT_EQ(A.size(), 1u);
  EXPECT_EQ(B.size(), 2u);
}

TEST(HashSetImpl, MoveTransfersContents) {
  HashSet<uint64_t> A;
  for (uint64_t I = 0; I != 50; ++I)
    A.insert(I);
  HashSet<uint64_t> B = std::move(A);
  EXPECT_EQ(B.size(), 50u);
  EXPECT_EQ(A.size(), 0u);
}

TEST(HashSetImpl, StringKeys) {
  HashSet<std::string> Set;
  EXPECT_TRUE(Set.insert("foo"));
  EXPECT_TRUE(Set.insert("bar"));
  EXPECT_FALSE(Set.insert("foo"));
  EXPECT_TRUE(Set.contains("bar"));
  EXPECT_TRUE(Set.remove("foo"));
  EXPECT_EQ(Set.size(), 1u);
}

} // namespace
