//===- AbsIntTest.cpp -----------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the interprocedural abstract-interpretation engine:
/// interval arithmetic, widening convergence on loops, occupancy and
/// cover facts, the call graph, the fusion-legality oracle, and the
/// statically proven selection decisions it feeds.
///
//===----------------------------------------------------------------------===//

#include "analysis/AbsInt.h"
#include "bench/Benchmarks.h"
#include "core/Pipeline.h"
#include "core/RemarkEmitter.h"
#include "ir/CallGraph.h"
#include "ir/IR.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace ade;
using analysis::AbsIntEngine;
using analysis::Interval;

namespace {

/// Recursively finds the first instruction with opcode \p Op in \p R.
ir::Instruction *findInst(ir::Region &R, ir::Opcode Op) {
  for (size_t Idx = 0; Idx < R.size(); ++Idx) {
    ir::Instruction *I = R.inst(Idx);
    if (I->op() == Op)
      return I;
    for (unsigned RI = 0; RI < I->numRegions(); ++RI)
      if (ir::Instruction *Found = findInst(*I->region(RI), Op))
        return Found;
  }
  return nullptr;
}

ir::Instruction *findInst(ir::Function &F, ir::Opcode Op) {
  return findInst(F.body(), Op);
}

//===----------------------------------------------------------------------===//
// Interval domain
//===----------------------------------------------------------------------===//

TEST(Interval, JoinAndWiden) {
  Interval A = Interval::range(2, 5), B = Interval::range(4, 9);
  EXPECT_EQ(Interval::join(A, B), Interval::range(2, 9));
  // Stable bounds survive widening, moving bounds jump to the extreme.
  EXPECT_EQ(Interval::widen(A, Interval::range(2, 6)),
            Interval::range(2, Interval::Inf));
  EXPECT_EQ(Interval::widen(A, Interval::range(1, 5)),
            Interval::range(0, 5));
  EXPECT_EQ(Interval::widen(A, A), A);
}

TEST(Interval, WrapAwareArithmetic) {
  Interval Big = Interval::range(0, ~0ull - 1);
  EXPECT_TRUE(Interval::addValue(Big, Interval::exact(2)).isTop());
  EXPECT_EQ(Interval::addValue(Interval::exact(3), Interval::exact(4)),
            Interval::exact(7));
  // Subtraction that could underflow degrades to TOP, never wraps.
  EXPECT_TRUE(
      Interval::subValue(Interval::range(0, 5), Interval::exact(1)).isTop());
  EXPECT_EQ(Interval::subValue(Interval::range(8, 10), Interval::exact(3)),
            Interval::range(5, 7));
  EXPECT_TRUE(
      Interval::mulValue(Big, Interval::range(0, 4)).isTop());
}

TEST(Interval, SaturatingCounts) {
  EXPECT_EQ(Interval::satAdd(Interval::Inf, 1), Interval::Inf);
  EXPECT_EQ(Interval::satMul(Interval::Inf, 0), 0u);
  Interval PerTrip = Interval::exact(2);
  EXPECT_EQ(PerTrip.scale(Interval::range(0, Interval::Inf)),
            Interval::range(0, Interval::Inf));
  EXPECT_EQ(PerTrip.scale(Interval::exact(10)), Interval::exact(20));
}

//===----------------------------------------------------------------------===//
// Range analysis and widening convergence
//===----------------------------------------------------------------------===//

TEST(AbsIntRanges, LoopInsertingScaledKeysConverges) {
  // The satellite regression: a loop inserting i*2 keys must converge to
  // [0, 2N-2] in a handful of passes, far below the dataflow framework's
  // 64-iteration safety bound.
  auto M = parser::parseModuleOrDie(R"(fn @main() -> u64 {
  %m = new Map<u64, u64>
  %zero = const 0 : u64
  %n = const 100 : u64
  %two = const 2 : u64
  forrange %zero, %n -> [%i] {
    %k = mul %i, %two
    write %m, %k, %i
    yield
  }
  %sz = size %m
  ret %sz
})");
  core::ModuleAnalysis MA(*M);
  AbsIntEngine AI(MA);

  ir::Function *Main = M->getFunction("main");
  ASSERT_NE(Main, nullptr);
  ir::Instruction *Mul = findInst(*Main, ir::Opcode::Mul);
  ASSERT_NE(Mul, nullptr);
  EXPECT_EQ(AI.rangeOf(Mul->result(0)), Interval::range(0, 198));

  ir::Instruction *Loop = findInst(*Main, ir::Opcode::ForRange);
  ASSERT_NE(Loop, nullptr);
  EXPECT_LE(AI.loopPasses(Loop), 4u);

  // Occupancy: at most one map write per trip, 100 trips.
  core::RootInfo *Root = MA.rootOf(findInst(*Main, ir::Opcode::New)->result(0));
  ASSERT_NE(Root, nullptr);
  const analysis::Occupancy &Occ = AI.occupancyOf(MA.aliasClassOf(Root));
  EXPECT_EQ(Occ.Ever.Hi, 100u);
  EXPECT_FALSE(Occ.MayRemove);
  EXPECT_FALSE(Occ.MayClear);
}

TEST(AbsIntRanges, DoWhileCounterWidensQuickly) {
  auto M = parser::parseModuleOrDie(R"(extern fn @more() -> u64
fn @main() -> u64 {
  %zero = const 0 : u64
  %one = const 1 : u64
  %n = dowhile iter(%i = %zero) {
    %i1 = add %i, %one
    %m = call @more()
    %go = ne %m, %zero
    yield %go, %i1
  }
  ret %n
})");
  core::ModuleAnalysis MA(*M);
  AbsIntEngine AI(MA);
  ir::Function *Main = M->getFunction("main");
  ir::Instruction *Loop = findInst(*Main, ir::Opcode::DoWhile);
  ASSERT_NE(Loop, nullptr);
  // The counter ascends without bound; widening must cut the chain off
  // after the short delay instead of running to the safety bound.
  EXPECT_LE(AI.loopPasses(Loop), 4u);
  EXPECT_TRUE(AI.rangeOf(Loop->result(0)).Hi == Interval::Inf);
}

TEST(AbsIntRanges, InterproceduralReturnSummaries) {
  auto M = parser::parseModuleOrDie(R"(fn @limit() -> u64 {
  %n = const 42 : u64
  ret %n
}
fn @main() -> u64 {
  %l = call @limit()
  ret %l
})");
  core::ModuleAnalysis MA(*M);
  AbsIntEngine AI(MA);
  ir::Function *Main = M->getFunction("main");
  ir::Instruction *Call = findInst(*Main, ir::Opcode::Call);
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(AI.rangeOf(Call->result(0)), Interval::exact(42));
}

//===----------------------------------------------------------------------===//
// Call graph
//===----------------------------------------------------------------------===//

TEST(CallGraph, SccsAndEntries) {
  auto M = parser::parseModuleOrDie(R"(fn @leaf() -> u64 {
  %n = const 1 : u64
  ret %n
}
fn @mid() -> u64 {
  %a = call @leaf()
  ret %a
}
fn @main() -> u64 {
  %b = call @mid()
  ret %b
})");
  ir::CallGraph CG(*M);
  ASSERT_EQ(CG.sccs().size(), 3u);
  // Bottom-up: callees before callers.
  EXPECT_EQ(CG.sccs()[0][0]->name(), "leaf");
  EXPECT_EQ(CG.sccs()[2][0]->name(), "main");
  ASSERT_EQ(CG.entryFunctions().size(), 1u);
  EXPECT_EQ(CG.entryFunctions()[0]->name(), "main");
  EXPECT_FALSE(CG.isRecursive(M->getFunction("leaf")));
  EXPECT_TRUE(CG.reaches(M->getFunction("main"), M->getFunction("leaf")));
  EXPECT_FALSE(CG.reaches(M->getFunction("leaf"), M->getFunction("main")));
}

TEST(CallGraph, RecursionDetected) {
  auto M = parser::parseModuleOrDie(R"(fn @spin(%n: u64) -> u64 {
  %z = const 0 : u64
  %stop = eq %n, %z
  %r = if %stop {
    yield %z
  } else {
    %one = const 1 : u64
    %m = sub %n, %one
    %rec = call @spin(%m)
    yield %rec
  }
  ret %r
})");
  ir::CallGraph CG(*M);
  EXPECT_TRUE(CG.isRecursive(M->getFunction("spin")));
}

//===----------------------------------------------------------------------===//
// Cover facts and enumeration universes
//===----------------------------------------------------------------------===//

TEST(AbsIntOccupancy, CoverFactFromUnconditionalWrite) {
  auto M = parser::parseModuleOrDie(R"(fn @main() -> u64 {
  %src = new Seq<u64>
  %dst = new Map<u64, u64>
  %zero = const 0 : u64
  %n = const 10 : u64
  forrange %zero, %n -> [%i] {
    append %src, %i
    yield
  }
  foreach %src -> [%i2, %v] {
    write %dst, %v, %v
    yield
  }
  %sz = size %dst
  ret %sz
})");
  core::ModuleAnalysis MA(*M);
  AbsIntEngine AI(MA);
  ir::Function *Main = M->getFunction("main");
  ir::Instruction *NewSrc = findInst(*Main, ir::Opcode::New);
  core::RootInfo *SrcRoot = MA.rootOf(NewSrc->result(0));
  ASSERT_NE(SrcRoot, nullptr);
  size_t SrcClass = MA.aliasClassOf(SrcRoot);
  // Exactly one cover fact: dst ⊇ src.
  ASSERT_EQ(AI.covers().size(), 1u);
  EXPECT_EQ(AI.covers()[0].Src, SrcClass);
  std::vector<size_t> Covered = AI.coveredBy(AI.covers()[0].Dst);
  ASSERT_EQ(Covered.size(), 1u);
  EXPECT_EQ(Covered[0], SrcClass);
}

TEST(AbsIntOccupancy, RemoveInvalidatesCoverProof) {
  auto M = parser::parseModuleOrDie(R"(fn @main() -> u64 {
  %src = new Seq<u64>
  %dst = new Map<u64, u64>
  %zero = const 0 : u64
  %n = const 10 : u64
  forrange %zero, %n -> [%i] {
    append %src, %i
    yield
  }
  foreach %src -> [%i2, %v] {
    write %dst, %v, %v
    yield
  }
  remove %dst, %zero
  %sz = size %dst
  ret %sz
})");
  core::ModuleAnalysis MA(*M);
  AbsIntEngine AI(MA);
  // The raw fact is still discovered, but the density proof is void.
  ASSERT_EQ(AI.covers().size(), 1u);
  EXPECT_TRUE(AI.coveredBy(AI.covers()[0].Dst).empty());
}

TEST(AbsIntOccupancy, EnumUniverseBoundsMintedIds) {
  auto M = parser::parseModuleOrDie(R"(global @e : Enum<u64>
fn @main() -> u64 {
  %e1 = gget @e
  %zero = const 0 : u64
  %ten = const 10 : u64
  forrange %zero, %ten -> [%i] {
    %id = enum.add %e1, %i
    yield
  }
  %k = const 3 : idx
  %v = dec %e1, %k
  ret %v
})");
  core::ModuleAnalysis MA(*M);
  AbsIntEngine AI(MA);
  Interval U = AI.enumUniverse("e");
  EXPECT_EQ(U.Hi, 10u);
  EXPECT_TRUE(AI.enumUniverse("nosuch").isTop());
}

//===----------------------------------------------------------------------===//
// Fusion legality
//===----------------------------------------------------------------------===//

const char *const FusablePair = R"(fn @main() -> u64 {
  %dst = new Set<u64>
  %zero = const 0 : u64
  %n = const 10 : u64
  forrange %zero, %n -> [%i] {
    insert %dst, %i
    yield
  }
  %sum = foreach %dst -> [%v] iter(%acc = %zero) {
    %a2 = add %acc, %v
    yield %a2
  }
  ret %sum
})";

TEST(FusionLegality, ProducerConsumerPairIsFusable) {
  auto M = parser::parseModuleOrDie(FusablePair);
  core::ModuleAnalysis MA(*M);
  analysis::FusionLegality FL(MA);
  ir::Function *Main = M->getFunction("main");
  ir::Instruction *Producer = findInst(*Main, ir::Opcode::ForRange);
  ir::Instruction *Consumer = findInst(*Main, ir::Opcode::ForEach);
  ASSERT_NE(Producer, nullptr);
  ASSERT_NE(Consumer, nullptr);
  std::string Why;
  EXPECT_TRUE(FL.fusable(Producer, Consumer, &Why)) << Why;
  // Never the other way around.
  EXPECT_FALSE(FL.fusable(Consumer, Producer));
}

TEST(FusionLegality, InterveningClearBlocksFusion) {
  auto M = parser::parseModuleOrDie(R"(fn @main() -> u64 {
  %dst = new Set<u64>
  %zero = const 0 : u64
  %n = const 10 : u64
  forrange %zero, %n -> [%i] {
    insert %dst, %i
    yield
  }
  clear %dst
  %sum = foreach %dst -> [%v] iter(%acc = %zero) {
    %a2 = add %acc, %v
    yield %a2
  }
  ret %sum
})");
  core::ModuleAnalysis MA(*M);
  analysis::FusionLegality FL(MA);
  ir::Function *Main = M->getFunction("main");
  std::string Why;
  EXPECT_FALSE(FL.fusable(findInst(*Main, ir::Opcode::ForRange),
                          findInst(*Main, ir::Opcode::ForEach), &Why));
  EXPECT_FALSE(Why.empty());
}

TEST(FusionLegality, CallInBodyBlocksFusion) {
  auto M = parser::parseModuleOrDie(R"(extern fn @log(u64)
fn @main() -> u64 {
  %dst = new Set<u64>
  %zero = const 0 : u64
  %n = const 10 : u64
  forrange %zero, %n -> [%i] {
    insert %dst, %i
    call @log(%i)
    yield
  }
  %sum = foreach %dst -> [%v] iter(%acc = %zero) {
    %a2 = add %acc, %v
    yield %a2
  }
  ret %sum
})");
  core::ModuleAnalysis MA(*M);
  analysis::FusionLegality FL(MA);
  ir::Function *Main = M->getFunction("main");
  EXPECT_FALSE(FL.fusable(findInst(*Main, ir::Opcode::ForRange),
                          findInst(*Main, ir::Opcode::ForEach)));
}

TEST(FusionLegality, ShareGroupForcesSameEnumeration) {
  auto M = parser::parseModuleOrDie(R"(fn @main() -> u64 {
  #pragma ade share group("g")
  %a = new Set<u64>
  #pragma ade share group("g")
  %b = new Set<u64>
  %c = new Set<u64>
  %k = const 5 : u64
  insert %a, %k
  insert %b, %k
  insert %c, %k
  %sz = size %a
  ret %sz
})");
  core::ModuleAnalysis MA(*M);
  analysis::FusionLegality FL(MA);
  ir::Function *Main = M->getFunction("main");
  ir::Instruction *NewA = findInst(*Main, ir::Opcode::New);
  ir::Instruction *NewB = findInst(*Main, ir::Opcode::New);
  // Find all three allocations in order.
  std::vector<ir::Value *> News;
  for (size_t Idx = 0; Idx < Main->body().size(); ++Idx)
    if (Main->body().inst(Idx)->op() == ir::Opcode::New)
      News.push_back(Main->body().inst(Idx)->result(0));
  (void)NewA;
  (void)NewB;
  ASSERT_EQ(News.size(), 3u);
  EXPECT_TRUE(FL.mustShareEnumeration(News[0], News[1]));
  EXPECT_FALSE(FL.mustShareEnumeration(News[0], News[2]));
}

//===----------------------------------------------------------------------===//
// Statically proven selection decisions
//===----------------------------------------------------------------------===//

TEST(AbsIntSelection, CcBenchProvenDenseStatically) {
  // The acceptance check of the static-analysis tentpole: with no
  // profile at all, the CC benchmark's label map is proven dense (its
  // init loop writes every enumerated node key), visible as a
  // selection:select remark whose provenance chains to absint evidence.
  const bench::BenchmarkSpec *B = bench::findBenchmark("CC");
  ASSERT_NE(B, nullptr);
  auto M = parser::parseModuleOrDie(B->Source);
  core::RemarkEmitter RE;
  core::PipelineConfig PC;
  PC.Remarks = &RE;
  core::runADE(*M, PC);

  std::map<uint64_t, const remarks::Remark *> ById;
  for (const remarks::Remark &R : RE.stream().remarks())
    ById[R.Id] = &R;

  bool FoundProvenDense = false;
  for (const remarks::Remark &R : RE.stream().remarks()) {
    if (R.Pass != "selection" || R.Name != "select" ||
        !R.arg("provenDense"))
      continue;
    // At least one provenance parent is absint evidence.
    for (uint64_t P : R.Parents) {
      auto It = ById.find(P);
      if (It != ById.end() && It->second->Pass == "absint")
        FoundProvenDense = true;
    }
  }
  EXPECT_TRUE(FoundProvenDense);
}

TEST(AbsIntSelection, StaticReserveFromProvenBound) {
  // A finite proven occupancy bound pre-sizes the allocation with no
  // profile: the reserve-hinted remark carries static=true and chains
  // to the absint:occupancy evidence.
  auto M = parser::parseModuleOrDie(R"(fn @main() -> u64 {
  %m = new Map<u64, u64>
  %zero = const 0 : u64
  %n = const 100 : u64
  forrange %zero, %n -> [%i] {
    write %m, %i, %i
    yield
  }
  %sz = size %m
  ret %sz
})");
  core::RemarkEmitter RE;
  core::PipelineConfig PC;
  PC.Remarks = &RE;
  core::runADE(*M, PC);

  const remarks::Remark *Hint = nullptr;
  for (const remarks::Remark &R : RE.stream().remarks())
    if (R.Pass == "selection" && R.Name == "reserve-hinted")
      Hint = &R;
  ASSERT_NE(Hint, nullptr);
  EXPECT_NE(Hint->arg("static"), nullptr);
  ASSERT_NE(Hint->arg("peak"), nullptr);
  EXPECT_EQ(Hint->arg("peak")->UInt, 100u);
  // And the instruction is really there.
  EXPECT_NE(findInst(*M->getFunction("main"), ir::Opcode::Reserve), nullptr);
}

} // namespace
